"""Quickstart: index a tiny corpus on (simulated) cloud storage and search it.

Run with::

    python examples/quickstart.py

The example mirrors the user-facing workflow of the paper's Figure 1: create
an index over documents, then search for keywords — all through the
:class:`~repro.service.AirphantService` facade, the same API the ``airphant``
CLI and the HTTP server use.  Everything — documents, superposts, and the
index header — lives in the object store; the service only keeps the small
Multilayer Hash Table in memory.
"""

from __future__ import annotations

from repro import (
    AirphantService,
    SearchRequest,
    SimulatedCloudStore,
    SketchConfig,
)

CORPUS = "\n".join(
    [
        "hello world",
        "hello airphant",
        "airphant searches documents on cloud storage",
        "separation of compute and storage enables elasticity",
        "iou sketch avoids sequential round trips",
        "postings lists are fetched in parallel",
        "hello cloud the elephant is lightweight",
    ]
)


def main() -> None:
    # 1. Put the corpus on "cloud storage" (a simulated object store here; any
    #    ObjectStore implementation works, e.g. LocalObjectStore for real files).
    store = SimulatedCloudStore()
    store.put("corpus/hello.txt", CORPUS.encode("utf-8"))

    # 2. Build the index through the service.  The Builder profiles the corpus,
    #    picks the number of layers with Algorithm 1, and persists superposts +
    #    header blobs.
    service = AirphantService(store)
    info = service.build_index(
        "hello-index",
        ["corpus/hello.txt"],
        sketch_config=SketchConfig(num_bins=256, target_false_positives=1.0),
    )
    print(f"indexed {info.num_documents} documents, "
          f"{info.num_terms} terms, L = {info.num_layers} layers")
    print(f"index storage: {info.storage_bytes} bytes\n")

    # 3. Search through the same facade (the index is opened lazily on the
    #    first query, downloading only the header blob).
    for query in ["hello", "airphant", "storage", "hello airphant"]:
        response = service.search(SearchRequest(query=query, index="hello-index", top_k=10))
        print(f"query {query!r}: {response.num_results} results "
              f"({response.latency.total_ms:.1f} ms simulated)")
        for hit in response.documents:
            print(f"   - {hit.text}")
        print()


if __name__ == "__main__":
    main()
