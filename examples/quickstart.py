"""Quickstart: index a tiny corpus on (simulated) cloud storage and search it.

Run with::

    python examples/quickstart.py

The example mirrors the user-facing workflow of the paper's Figure 1: create
an index over documents, then search for keywords.  Everything — documents,
superposts, and the index header — lives in the object store; the Searcher
only keeps the small Multilayer Hash Table in memory.
"""

from __future__ import annotations

from repro import (
    AirphantBuilder,
    AirphantSearcher,
    SimulatedCloudStore,
    SketchConfig,
)

CORPUS = "\n".join(
    [
        "hello world",
        "hello airphant",
        "airphant searches documents on cloud storage",
        "separation of compute and storage enables elasticity",
        "iou sketch avoids sequential round trips",
        "postings lists are fetched in parallel",
        "hello cloud the elephant is lightweight",
    ]
)


def main() -> None:
    # 1. Put the corpus on "cloud storage" (a simulated object store here; any
    #    ObjectStore implementation works, e.g. LocalObjectStore for real files).
    store = SimulatedCloudStore()
    store.put("corpus/hello.txt", CORPUS.encode("utf-8"))

    # 2. Build the index.  The Builder profiles the corpus, picks the number of
    #    layers with Algorithm 1, and persists superposts + header blobs.
    config = SketchConfig(num_bins=256, target_false_positives=1.0)
    builder = AirphantBuilder(store, config)
    built = builder.build_from_blobs(["corpus/hello.txt"], index_name="hello-index")
    print(f"indexed {built.metadata.num_documents} documents, "
          f"{built.metadata.num_terms} terms, L = {built.metadata.num_layers} layers")
    print(f"index storage: {built.storage_bytes(store)} bytes\n")

    # 3. Open a Searcher (downloads only the header blob) and run queries.
    searcher = AirphantSearcher.open(store, index_name="hello-index")
    for query in ["hello", "airphant", "storage", "hello airphant"]:
        result = searcher.search(query, top_k=10)
        print(f"query {query!r}: {result.num_results} results "
              f"({result.latency_ms:.1f} ms simulated)")
        for document in result.documents:
            print(f"   - {document.text}")
        print()


if __name__ == "__main__":
    main()
