"""Searching system logs stored on cloud storage.

This is the workload the paper's evaluation centres on: large corpora of
HDFS/Windows/Spark log lines, indexed once, searched with exact keywords,
Boolean queries, regular expressions, and top-K pagination — all dispatched
through one :class:`~repro.service.AirphantService` facade, the same entry
point the ``airphant`` CLI and HTTP server use.

Run with::

    python examples/log_search.py
"""

from __future__ import annotations

from repro import (
    AirphantService,
    SearchRequest,
    ServiceConfig,
    SimulatedCloudStore,
    SketchConfig,
)
from repro.profiling import profile_documents
from repro.workloads import generate_log_corpus


def main() -> None:
    store = SimulatedCloudStore()

    # Generate a scaled-down HDFS-like log corpus directly on the store
    # (Loghub's real HDFS corpus has ~11M lines; we use 20k for the example).
    corpus = generate_log_corpus(store, "hdfs", num_documents=20_000, seed=7)
    profile = profile_documents(corpus.documents)
    print(f"corpus: {profile.num_documents} log lines, {profile.num_terms} distinct terms")

    # One service instance owns the whole query side: a catalog of indexes, a
    # shared tokenizer/hedging/cache configuration, and all query modes.
    service = AirphantService(store, ServiceConfig(query_cache_size=64))

    # Build the index with the paper's default accuracy target (F0 = 1 false
    # positive per query in expectation).
    info = service.build_index(
        "hdfs-index",
        corpus.blob_names,
        sketch_config=SketchConfig(num_bins=4096, target_false_positives=1.0),
    )
    print(f"built IoU Sketch: L = {info.num_layers} layers, "
          f"{info.num_common_words} common words handled exactly, "
          f"expected false positives = {info.expected_false_positives:.3f}\n")

    # Exact keyword search with top-K pagination.
    response = service.search(SearchRequest(query="ERROR", index="hdfs-index", top_k=5))
    print(f"top-5 'ERROR' lines ({response.latency.total_ms:.0f} ms simulated, "
          f"{response.num_candidates} candidates fetched, "
          f"{response.false_positive_count} filtered as false positives):")
    for hit in response.documents:
        print(f"   {hit.text}")
    print()

    # Boolean query: lines about write-block failures on DataNodes.  All
    # referenced terms' superposts are fetched in a single parallel wave.
    response = service.search(SearchRequest(
        query="ERROR AND (WRITE_BLOCK OR DataXceiver)",
        index="hdfs-index",
        mode="boolean",
        top_k=5,
    ))
    print(f"boolean query -> {response.num_results} results "
          f"({response.latency.total_ms:.0f} ms simulated, "
          f"{response.latency.round_trips} round-trip waves)")
    for hit in response.documents[:3]:
        print(f"   {hit.text}")
    print()

    # Regex query accelerated by the sketch: the literal words filter the
    # candidates, the regex removes the rest.
    response = service.search(SearchRequest(
        query=r"Slow BlockReceiver .*mirror",
        index="hdfs-index",
        mode="regex",
        top_k=5,
    ))
    print(f"regex query -> {response.num_results} results "
          f"({response.latency.total_ms:.0f} ms simulated)")
    for hit in response.documents[:3]:
        print(f"   {hit.text}")
    print()

    # Term-index lookup latency (what Figure 14 measures).
    _, lookup_latency = service.lookup_postings("hdfs-index", "terminating")
    print(f"term-index lookup for 'terminating': {lookup_latency.lookup_ms:.1f} ms, "
          f"{lookup_latency.round_trips} round-trip batch(es)")


if __name__ == "__main__":
    main()
