"""Searching system logs stored on cloud storage.

This is the workload the paper's evaluation centres on: large corpora of
HDFS/Windows/Spark log lines, indexed once, searched with exact keywords,
Boolean queries, regular expressions, and top-K pagination.

Run with::

    python examples/log_search.py
"""

from __future__ import annotations

from repro import (
    AirphantBuilder,
    AirphantSearcher,
    RegexSearcher,
    SimulatedCloudStore,
    SketchConfig,
)
from repro.profiling import profile_documents
from repro.workloads import generate_log_corpus


def main() -> None:
    store = SimulatedCloudStore()

    # Generate a scaled-down HDFS-like log corpus directly on the store
    # (Loghub's real HDFS corpus has ~11M lines; we use 20k for the example).
    corpus = generate_log_corpus(store, "hdfs", num_documents=20_000, seed=7)
    profile = profile_documents(corpus.documents)
    print(f"corpus: {profile.num_documents} log lines, {profile.num_terms} distinct terms")

    # Build the index with the paper's default accuracy target (F0 = 1 false
    # positive per query in expectation).
    config = SketchConfig(num_bins=4096, target_false_positives=1.0)
    built = AirphantBuilder(store, config).build_from_documents(
        corpus.documents, index_name="hdfs-index", corpus_name="hdfs"
    )
    print(f"built IoU Sketch: L = {built.metadata.num_layers} layers, "
          f"{built.metadata.num_common_words} common words handled exactly, "
          f"expected false positives = {built.metadata.expected_false_positives:.3f}\n")

    searcher = AirphantSearcher.open(store, index_name="hdfs-index")

    # Exact keyword search with top-K pagination.
    result = searcher.search("ERROR", top_k=5)
    print(f"top-5 'ERROR' lines ({result.latency_ms:.0f} ms simulated, "
          f"{result.num_candidates} candidates fetched, "
          f"{result.false_positive_count} filtered as false positives):")
    for document in result.documents:
        print(f"   {document.text}")
    print()

    # Boolean query: lines about write-block failures on DataNodes.
    boolean_result = searcher.search_boolean("ERROR AND (WRITE_BLOCK OR DataXceiver)", top_k=5)
    print(f"boolean query -> {boolean_result.num_results} results "
          f"({boolean_result.latency_ms:.0f} ms simulated)")
    for document in boolean_result.documents[:3]:
        print(f"   {document.text}")
    print()

    # Regex query accelerated by the sketch: the literal words filter the
    # candidates, the regex removes the rest.
    regex = RegexSearcher(searcher)
    regex_result = regex.search(r"Slow BlockReceiver .*mirror", top_k=5)
    print(f"regex query -> {regex_result.num_results} results "
          f"({regex_result.latency_ms:.0f} ms simulated)")
    for document in regex_result.documents[:3]:
        print(f"   {document.text}")
    print()

    # Term-index lookup latency (what Figure 14 measures).
    _, lookup_latency = searcher.lookup_postings("terminating")
    print(f"term-index lookup for 'terminating': {lookup_latency.lookup_ms:.1f} ms, "
          f"{lookup_latency.round_trips} round-trip batch(es)")


if __name__ == "__main__":
    main()
