"""Compare Airphant against the paper's baselines on one corpus.

Builds Lucene-like, Elasticsearch-like, SQLite-like, HashTable and Airphant
engines over the same Spark-like log corpus, replays an identical query
workload against each, and prints the Figure 6-style latency table plus the
Figure 8-style wait/download breakdown.

Run with::

    python examples/engine_comparison.py
"""

from __future__ import annotations

from repro import SimulatedCloudStore, SketchConfig
from repro.bench import (
    build_standard_engines,
    format_table,
    run_comparison,
    summarize_breakdown,
)
from repro.profiling import profile_documents
from repro.storage import AffineLatencyModel
from repro.workloads import QueryWorkload, generate_log_corpus


def main() -> None:
    store = SimulatedCloudStore(latency_model=AffineLatencyModel(seed=3))
    corpus = generate_log_corpus(store, "spark", num_documents=15_000, seed=5)
    profile = profile_documents(corpus.documents)
    print(f"corpus: {profile.num_documents} documents, {profile.num_terms} terms")

    config = SketchConfig(num_bins=1024, target_false_positives=1.0)
    engines = build_standard_engines(store, corpus.documents, config=config, corpus_name="spark")
    workload = QueryWorkload.from_profile(profile, num_queries=40, top_k=10, seed=11)
    runs = run_comparison(engines, workload)

    rows = []
    for name, run in runs.items():
        stats = run.stats
        breakdown = summarize_breakdown(run)
        rows.append(
            [
                name,
                stats.mean_ms,
                stats.p99_ms,
                run.lookup_stats.mean_ms,
                run.mean_false_positives,
                breakdown.mean_wait_ms,
                breakdown.mean_download_ms,
            ]
        )
    print()
    print(
        format_table(
            ["engine", "mean ms", "p99 ms", "lookup ms", "false pos", "wait ms", "download ms"],
            rows,
        )
    )

    airphant = runs["Airphant"].stats.mean_ms
    print()
    for name, run in runs.items():
        if name != "Airphant":
            print(f"Airphant is {run.stats.mean_ms / airphant:.2f}x faster than {name} on average")


if __name__ == "__main__":
    main()
