"""Append-only index updates (the paper's "frequent corpus updates" future work).

New log lines keep arriving after the base index was built.  Instead of
rebuilding everything, the `AppendOnlyIndexManager` indexes each new batch as
a small *delta* index; queries fan out over the base plus all deltas; and a
periodic `compact()` folds the deltas back into a single base index.

Run with::

    python examples/incremental_updates.py
"""

from __future__ import annotations

from repro import AppendOnlyIndexManager, SimulatedCloudStore, SketchConfig
from repro.parsing import LineDelimitedCorpusParser
from repro.workloads import generate_log_corpus


def main() -> None:
    store = SimulatedCloudStore()
    parser = LineDelimitedCorpusParser()

    # Day 0: build the base index over the existing corpus.
    base_corpus = generate_log_corpus(store, "hdfs", num_documents=10_000, seed=1)
    manager = AppendOnlyIndexManager(
        store,
        base_index="hdfs-logs",
        config=SketchConfig(num_bins=2048, target_false_positives=1.0),
        delta_config=SketchConfig(num_bins=256, target_false_positives=1.0),
    )
    base = manager.build_base(base_corpus.documents, corpus_name="hdfs-day0")
    print(f"base index: {base.metadata.num_documents} documents, L = {base.metadata.num_layers}")

    # Days 1-2: new log batches arrive and are appended as delta indexes.
    for day, seed in enumerate((101, 102), start=1):
        blob = f"incoming/day{day}.txt"
        lines = [
            f"ERROR dfs.DataNode DataXceiver day{day} incident {i} on nodeX" for i in range(200)
        ]
        store.put(blob, "\n".join(lines).encode("utf-8"))
        new_documents = list(parser.parse(store, [blob]))
        delta = manager.append(new_documents, corpus_name=f"hdfs-day{day}")
        print(f"appended day {day}: {delta.metadata.num_documents} documents "
              f"-> {delta.index_name}")

    # Queries see old and new documents alike.
    searcher = manager.open_searcher()
    result = searcher.search("incident", top_k=5)
    print(f"\nsearch 'incident' across base + {len(manager.manifest().delta_indexes)} deltas: "
          f"{result.num_results} of {result.num_candidates} candidates "
          f"({result.latency_ms:.0f} ms simulated)")
    for document in result.documents[:3]:
        print(f"   {document.text}")

    # Compaction folds everything back into one index.
    compacted = manager.compact(corpus_name="hdfs-compacted")
    print(f"\nafter compaction: {compacted.metadata.num_documents} documents in a single index, "
          f"deltas removed: {manager.manifest().delta_indexes == ()}")
    result = manager.open_searcher().search("incident", top_k=5)
    print(f"search 'incident' after compaction still returns {result.num_results} results")


if __name__ == "__main__":
    main()
