"""Cross-region deployment: how latency degrades as compute moves away.

The separation of compute and storage lets the Searcher run anywhere with
access to the bucket — another region or even another continent.  The paper
(Figure 7) shows Airphant degrades more gracefully than hierarchical-index
baselines because it pays the larger round-trip time once per query instead
of once per index level.

Run with::

    python examples/cross_region_deployment.py
"""

from __future__ import annotations

from repro import AirphantService, SearchRequest, SimulatedCloudStore, SketchConfig
from repro.baselines import LuceneLikeEngine, SQLiteLikeEngine
from repro.bench import format_table
from repro.index import AirphantBuilder
from repro.profiling import profile_documents
from repro.storage import AffineLatencyModel, REGION_PROFILES
from repro.workloads import generate_log_corpus, sample_query_words


def main() -> None:
    # The bucket lives in the US; the corpus and all indexes are stored once.
    us_model = AffineLatencyModel(seed=2)
    store = SimulatedCloudStore(latency_model=us_model)
    corpus = generate_log_corpus(store, "windows", num_documents=12_000, seed=9)
    profile = profile_documents(corpus.documents)
    queries = sample_query_words(profile, 25, seed=4)

    config = SketchConfig(num_bins=2048, target_false_positives=1.0)
    AirphantBuilder(store, config).build_from_documents(corpus.documents, index_name="win-index")

    lucene = LuceneLikeEngine(store, index_name="win/lucene", cache_bytes=16 * 1024)
    lucene.build(corpus.documents)
    sqlite = SQLiteLikeEngine(store, index_name="win/sqlite", cache_bytes=8 * 1024)
    sqlite.build(corpus.documents)

    rows = []
    for region in REGION_PROFILES:
        regional_store = store.with_latency_model(us_model.with_region(region))

        # A stateless query node in this region: same bucket, its own service.
        service = AirphantService(regional_store)
        airphant_ms = sum(
            service.search(SearchRequest(query=q, index="win-index", top_k=10)).latency.total_ms
            for q in queries
        ) / len(queries)

        regional_lucene = LuceneLikeEngine(
            regional_store, index_name="win/lucene", cache_bytes=16 * 1024
        )
        regional_lucene.initialize()
        lucene_ms = sum(
            regional_lucene.search(q, top_k=10).latency_ms for q in queries
        ) / len(queries)

        regional_sqlite = SQLiteLikeEngine(
            regional_store, index_name="win/sqlite", cache_bytes=8 * 1024
        )
        regional_sqlite.initialize()
        sqlite_ms = sum(
            regional_sqlite.search(q, top_k=10).latency_ms for q in queries
        ) / len(queries)

        rows.append([region, airphant_ms, sqlite_ms, lucene_ms])

    print("Mean end-to-end latency (ms) by compute region, storage fixed in the US")
    print(format_table(["region", "Airphant", "SQLite", "Lucene"], rows))

    base = rows[0]
    far = rows[-1]
    print()
    print(f"slowdown moving to {far[0]}: "
          f"Airphant {far[1] / base[1]:.1f}x, SQLite {far[2] / base[2]:.1f}x, "
          f"Lucene {far[3] / base[3]:.1f}x")


if __name__ == "__main__":
    main()
