"""Capacity and cost planning for a decoupled deployment.

Two planning questions the paper's Sections III and V-C answer:

1. How much Searcher memory does an index need?  (The MHT footprint is
   configurable via the bin budget; ``SketchConfig.from_memory_budget`` sizes
   it for a target device, e.g. a small FaaS instance.)
2. When is the decoupled (Airphant on cloud storage) deployment cheaper than
   a coupled Elasticsearch cluster?  (Figure 9's relative-cost curves.)

Run with::

    python examples/serverless_cost_planning.py
"""

from __future__ import annotations

from repro import CostModel, PeakTroughWorkload, SimulatedCloudStore, SketchConfig
from repro import AirphantBuilder
from repro.bench import format_table
from repro.workloads import generate_log_corpus


def memory_sizing(store: SimulatedCloudStore) -> None:
    """Size the sketch for a 2 MB Searcher memory budget (FaaS-friendly)."""
    corpus = generate_log_corpus(store, "windows", num_documents=10_000, seed=1)
    config = SketchConfig.from_memory_budget(2 * 1024 * 1024, target_false_positives=1.0)
    built = AirphantBuilder(store, config).build_from_documents(
        corpus.documents, index_name="windows-index", corpus_name="windows"
    )
    print("Searcher memory sizing")
    print(f"  memory budget          : 2 MiB")
    print(f"  bin budget (B)         : {config.num_bins}")
    print(f"  layers chosen (L*)     : {built.metadata.num_layers}")
    print(f"  MHT footprint estimate : {built.mht.memory_bytes() / 1024:.0f} KiB")
    print(f"  index on cloud storage : {built.storage_bytes(store) / 1024:.0f} KiB")
    print()


def cost_planning() -> None:
    """Reproduce the shape of Figure 9 for a few corpus sizes."""
    model = CostModel()
    peak = 154.08          # one Elasticsearch server's throughput (ops/s)
    trough = peak / 20
    sizes_tb = [1, 4, 16]
    fractions = [0.05, 0.2, 0.4, 0.6, 0.8, 1.0]

    rows = []
    for size_tb in sizes_tb:
        row = [f"{size_tb} TB"]
        for tau in fractions:
            workload = PeakTroughWorkload(peak, trough, tau)
            row.append(model.relative_cost(workload, data_gb=size_tb * 1024))
        rows.append(row)
    print("Relative cost C_Elasticsearch / C_Airphant (greater than 1 means Airphant is cheaper)")
    print(format_table(["data size"] + [f"tau={tau}" for tau in fractions], rows))
    print()
    print(f"asymptotic ratio for huge corpora: {model.asymptotic_relative_cost():.2f}x")


def main() -> None:
    store = SimulatedCloudStore()
    memory_sizing(store)
    cost_planning()


if __name__ == "__main__":
    main()
