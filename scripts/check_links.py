#!/usr/bin/env python3
"""Markdown link checker for the repo's docs (stdlib only, no network).

Scans the given markdown files (default: README.md and docs/*.md) for
inline links and validates every *relative* target:

* the referenced file or directory must exist (relative to the linking
  file), and
* a ``#fragment`` pointing into a markdown file must match a heading's
  GitHub-style anchor in that file.

External ``http(s)://`` / ``mailto:`` links are syntax-checked only (no
network in CI).  Exit code 1 lists every broken link.

Usage: ``python scripts/check_links.py [file.md ...]``
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target) — images share the same syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Markdown headings, for anchor validation.
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Fenced code blocks are stripped before link extraction.
_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)


def github_anchor(heading: str) -> str:
    """The anchor GitHub generates for a heading (lowercase, dashed)."""
    heading = re.sub(r"[`*_]", "", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_anchor(match.group(1)) for match in _HEADING.finditer(text)}


def check_file(path: Path) -> list[str]:
    """Return a list of human-readable problems found in ``path``."""
    problems: list[str] = []
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if github_anchor(target[1:]) not in anchors_of(path):
                problems.append(f"{path}: broken in-page anchor {target!r}")
            continue
        raw, _, fragment = target.partition("#")
        resolved = (path.parent / raw).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link {target!r} (no such file)")
            continue
        if fragment and resolved.suffix.lower() in (".md", ".markdown"):
            if fragment.lower() not in anchors_of(resolved):
                problems.append(
                    f"{path}: broken anchor {target!r} "
                    f"(no heading {fragment!r} in {resolved.name})"
                )
    return problems


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    missing = [str(path) for path in files if not path.is_file()]
    if missing:
        print(f"error: no such markdown file(s): {', '.join(missing)}", file=sys.stderr)
        return 1
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} file(s): {len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
