"""Unit tests for the coupled-vs-decoupled cost model (Section V-C)."""

import pytest

from repro.cost.model import CostModel, PeakTroughWorkload

#: The workload used in the paper's Figure 9: peak = one Elasticsearch
#: server's throughput, trough = peak / 20.
PAPER_WORKLOAD = PeakTroughWorkload(peak_ops=154.08, trough_ops=154.08 / 20, peak_fraction=0.2)


class TestPeakTroughWorkload:
    def test_average_is_time_weighted(self):
        workload = PeakTroughWorkload(peak_ops=100, trough_ops=10, peak_fraction=0.25)
        assert workload.average_ops == pytest.approx(0.25 * 100 + 0.75 * 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeakTroughWorkload(-1, 0, 0.5)
        with pytest.raises(ValueError):
            PeakTroughWorkload(10, 20, 0.5)
        with pytest.raises(ValueError):
            PeakTroughWorkload(10, 1, 1.5)


class TestCostModel:
    def test_airphant_cost_scales_with_average_workload(self):
        model = CostModel()
        light = PeakTroughWorkload(100, 5, 0.1)
        heavy = PeakTroughWorkload(100, 5, 0.9)
        assert model.airphant_monthly_cost(heavy, 0) > model.airphant_monthly_cost(light, 0)

    def test_elastic_cost_depends_only_on_peak(self):
        model = CostModel()
        short_peak = PeakTroughWorkload(100, 5, 0.1)
        long_peak = PeakTroughWorkload(100, 5, 0.9)
        assert model.elastic_monthly_cost(short_peak, 10) == pytest.approx(
            model.elastic_monthly_cost(long_peak, 10)
        )

    def test_asymptotic_relative_cost_matches_paper(self):
        # The paper: lim_{N -> inf} C_E / C_A ~= 3.29.
        assert CostModel().asymptotic_relative_cost() == pytest.approx(3.29, abs=0.01)

    def test_relative_cost_approaches_asymptote_for_large_data(self):
        model = CostModel()
        ratio = model.relative_cost(PAPER_WORKLOAD, data_gb=16 * 1024 * 1024)
        assert ratio == pytest.approx(model.asymptotic_relative_cost(), rel=0.01)

    def test_airphant_cheaper_with_large_data_and_short_peaks(self):
        model = CostModel()
        workload = PeakTroughWorkload(154.08, 154.08 / 20, peak_fraction=0.05)
        assert model.relative_cost(workload, data_gb=16 * 1024) > 1.0

    def test_elastic_cheaper_for_tiny_data_and_constant_peak(self):
        model = CostModel()
        workload = PeakTroughWorkload(154.08, 154.08, peak_fraction=1.0)
        assert model.relative_cost(workload, data_gb=1) < 1.0

    def test_relative_cost_decreases_as_peak_fraction_grows(self):
        # Figure 9: every size curve decreases with tau.
        model = CostModel()
        ratios = [
            model.relative_cost(
                PeakTroughWorkload(154.08, 154.08 / 20, peak_fraction=tau), data_gb=4096
            )
            for tau in (0.05, 0.25, 0.5, 0.75, 1.0)
        ]
        assert ratios == sorted(ratios, reverse=True)

    def test_relative_cost_increases_with_data_size(self):
        model = CostModel()
        small = model.relative_cost(PAPER_WORKLOAD, data_gb=1024)
        large = model.relative_cost(PAPER_WORKLOAD, data_gb=16 * 1024)
        assert large > small

    def test_compute_relative_cost_formula(self):
        model = CostModel()
        workload = PeakTroughWorkload(100, 10, 0.5)
        expected = (model.elastic_vm_monthly * 100 / model.elastic_ops_per_second) / (
            model.airphant_vm_monthly * workload.average_ops / model.airphant_ops_per_second
        )
        assert model.compute_relative_cost(workload) == pytest.approx(expected)

    def test_breakeven_fraction_within_range_when_it_exists(self):
        model = CostModel()
        tau = model.breakeven_peak_fraction(data_gb=2048, workload=PAPER_WORKLOAD)
        if tau is not None:
            assert 0.0 <= tau <= 1.0
            breakeven_workload = PeakTroughWorkload(
                PAPER_WORKLOAD.peak_ops, PAPER_WORKLOAD.trough_ops, tau
            )
            assert model.relative_cost(breakeven_workload, 2048) == pytest.approx(1.0, rel=0.01)

    def test_breakeven_none_for_flat_workload(self):
        model = CostModel()
        flat = PeakTroughWorkload(100, 100, 0.5)
        assert model.breakeven_peak_fraction(10, flat) is None

    def test_negative_data_rejected(self):
        model = CostModel()
        with pytest.raises(ValueError):
            model.airphant_monthly_cost(PAPER_WORKLOAD, -1)
        with pytest.raises(ValueError):
            model.elastic_monthly_cost(PAPER_WORKLOAD, -1)
