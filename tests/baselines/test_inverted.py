"""Unit tests for the shared exact inverted index and postings file."""

from repro.baselines.inverted import InvertedIndex, PostingsFile
from repro.parsing.documents import Document, DocumentRef
from repro.parsing.tokenizer import SimpleAnalyzer
from repro.storage.memory import InMemoryObjectStore


def _docs() -> list[Document]:
    texts = ["alpha beta", "beta gamma", "alpha gamma delta"]
    return [Document(DocumentRef("c", i * 50, len(t)), t) for i, t in enumerate(texts)]


class TestInvertedIndex:
    def test_postings_are_exact(self):
        documents = _docs()
        index = InvertedIndex.from_documents(documents)
        assert index.postings("alpha") == {documents[0].ref, documents[2].ref}
        assert index.postings("beta") == {documents[0].ref, documents[1].ref}
        assert index.postings("delta") == {documents[2].ref}

    def test_unknown_word_has_empty_postings(self):
        index = InvertedIndex.from_documents(_docs())
        assert index.postings("zzz") == set()

    def test_vocabulary_sorted(self):
        index = InvertedIndex.from_documents(_docs())
        assert index.vocabulary == ["alpha", "beta", "delta", "gamma"]

    def test_custom_tokenizer(self):
        documents = [Document(DocumentRef("c", 0, 10), "Alpha ALPHA!")]
        index = InvertedIndex.from_documents(documents, tokenizer=SimpleAnalyzer())
        assert index.vocabulary == ["alpha"]

    def test_empty_corpus(self):
        index = InvertedIndex.from_documents([])
        assert index.vocabulary == []


class TestPostingsFile:
    def test_write_and_decode_round_trip(self):
        store = InMemoryObjectStore()
        index = InvertedIndex.from_documents(_docs())
        postings_file = PostingsFile.write(store, "idx/postings.bin", index)
        for word in index.vocabulary:
            pointer = postings_file.pointers[word]
            payload = store.get_range(pointer.blob, pointer.offset, pointer.length)
            assert set(postings_file.decode(payload)) == index.postings(word)

    def test_pointers_cover_whole_blob(self):
        store = InMemoryObjectStore()
        index = InvertedIndex.from_documents(_docs())
        postings_file = PostingsFile.write(store, "idx/postings.bin", index)
        total = sum(pointer.length for pointer in postings_file.pointers.values())
        assert total == store.size("idx/postings.bin")

    def test_writing_is_deterministic(self):
        first_store, second_store = InMemoryObjectStore(), InMemoryObjectStore()
        index = InvertedIndex.from_documents(_docs())
        PostingsFile.write(first_store, "p.bin", index)
        PostingsFile.write(second_store, "p.bin", index)
        assert first_store.get("p.bin") == second_store.get("p.bin")
