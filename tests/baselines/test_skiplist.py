"""Unit tests for the on-storage skip list term index."""

import pytest

from repro.baselines.skiplist import SkipListIndex
from repro.core.mht import BinPointer
from repro.search.results import LatencyBreakdown
from repro.storage.latency import AffineLatencyModel
from repro.storage.simulated import SimulatedCloudStore


def _pointers(num_terms: int) -> dict[str, BinPointer]:
    return {
        f"term{index:04d}": BinPointer("postings.bin", index * 100, 50)
        for index in range(num_terms)
    }


@pytest.fixture
def store() -> SimulatedCloudStore:
    return SimulatedCloudStore(latency_model=AffineLatencyModel(jitter_sigma=0.0))


def _build(store, num_terms=200, cache_bytes=0) -> SkipListIndex:
    index = SkipListIndex(store, "skiplist-test", cache_bytes=cache_bytes)
    index.build(_pointers(num_terms))
    index.set_postings_blob("postings.bin")
    index.initialize()
    return index


class TestLookupCorrectness:
    def test_every_term_is_found(self, store):
        index = _build(store, num_terms=150)
        for term, expected in _pointers(150).items():
            found = index.lookup(term, LatencyBreakdown())
            assert found == expected

    def test_missing_term_returns_none(self, store):
        index = _build(store)
        assert index.lookup("not-a-term", LatencyBreakdown()) is None
        assert index.lookup("term9999", LatencyBreakdown()) is None
        assert index.lookup("aaaa", LatencyBreakdown()) is None

    def test_single_term_index(self, store):
        index = SkipListIndex(store, "tiny")
        index.build({"only": BinPointer("p", 0, 5)})
        index.set_postings_blob("p")
        index.initialize()
        assert index.lookup("only", LatencyBreakdown()) == BinPointer("p", 0, 5)

    def test_lookup_before_initialize_raises(self, store):
        index = SkipListIndex(store, "skiplist-test")
        index.build(_pointers(10))
        with pytest.raises(RuntimeError):
            index.lookup("term0001", LatencyBreakdown())


class TestAccessPattern:
    def test_uncached_lookup_issues_dependent_sequential_reads(self, store):
        index = _build(store, num_terms=500, cache_bytes=0)
        latency = LatencyBreakdown()
        index.lookup("term0250", latency)
        # A skip-list traversal over 500 terms needs several dependent reads,
        # each a full round-trip: this is the bottleneck the paper identifies.
        assert latency.round_trips >= 3
        assert latency.lookup_ms >= latency.round_trips * 40.0

    def test_lookup_cost_grows_with_corpus_size(self, store):
        small = _build(store, num_terms=32)
        small_latency = LatencyBreakdown()
        small.lookup("term0010", small_latency)

        big_store = SimulatedCloudStore(latency_model=AffineLatencyModel(jitter_sigma=0.0))
        big = _build(big_store, num_terms=2000)
        big_latency = LatencyBreakdown()
        big.lookup("term1500", big_latency)
        assert big_latency.round_trips > small_latency.round_trips

    def test_cached_region_avoids_per_node_reads(self, store):
        index = _build(store, num_terms=300, cache_bytes=50 * 1024 * 1024)
        latency = LatencyBreakdown()
        result = index.lookup("term0123", latency)
        assert result is not None
        assert latency.round_trips == 0

    def test_build_is_deterministic(self, store):
        first = SkipListIndex(store, "a")
        first.build(_pointers(100))
        second = SkipListIndex(store, "b")
        second.build(_pointers(100))
        assert store.backend.get("a/skiplist.nodes") == store.backend.get("b/skiplist.nodes")
