"""Behavioural tests of the five benchmark engines.

Every engine must return exactly the documents containing the query keywords
(after its own false-positive filtering); they differ only in the latency
profile of their term index.
"""

import pytest

from repro.baselines.airphant import AirphantEngine
from repro.baselines.elastic_like import ElasticLikeEngine
from repro.baselines.hashtable import HashTableEngine
from repro.baselines.lucene_like import LuceneLikeEngine
from repro.baselines.sqlite_like import SQLiteLikeEngine
from repro.core.config import SketchConfig

ENGINE_FACTORIES = {
    "Lucene": lambda store: LuceneLikeEngine(store, index_name="t/lucene", cache_bytes=0),
    "Elasticsearch": lambda store: ElasticLikeEngine(
        store, index_name="t/elastic", cache_bytes=0, hydration_chunk_bytes=1024
    ),
    "SQLite": lambda store: SQLiteLikeEngine(store, index_name="t/sqlite", cache_bytes=0),
    "HashTable": lambda store: HashTableEngine(
        store, index_name="t/hashtable", config=SketchConfig(num_bins=64, seed=1)
    ),
    "Airphant": lambda store: AirphantEngine(
        store, index_name="t/airphant", config=SketchConfig(num_bins=64, seed=1)
    ),
}


@pytest.fixture(params=sorted(ENGINE_FACTORIES))
def engine(request, sim_store, small_documents):
    built = ENGINE_FACTORIES[request.param](sim_store)
    built.build(small_documents)
    built.initialize()
    return built


class TestEngineCorrectness:
    def test_single_keyword_results_are_exact(self, engine, small_documents):
        result = engine.search("error")
        expected = {d.text for d in small_documents if "error" in d.text.split()}
        assert {d.text for d in result.documents} == expected

    def test_multi_keyword_conjunction(self, engine, small_documents):
        result = engine.search("error timeout")
        expected = {
            d.text
            for d in small_documents
            if {"error", "timeout"} <= set(d.text.split())
        }
        assert {d.text for d in result.documents} == expected

    def test_unknown_keyword_returns_nothing(self, engine):
        assert engine.search("notaword").documents == []

    def test_top_k_limits_results(self, engine):
        result = engine.search("error", top_k=2)
        assert len(result.documents) == 2

    def test_lookup_postings_contains_all_true_postings(self, engine, small_documents):
        postings, latency = engine.lookup_postings("info")
        expected = {d.ref for d in small_documents if "info" in d.text.split()}
        assert expected <= set(postings)
        assert latency.retrieval_ms == 0.0

    def test_lookup_postings_of_unknown_word(self, engine):
        postings, _ = engine.lookup_postings("notaword")
        # Hash-based engines may return false positives; exact engines return
        # nothing.  Either way, no crash and a list comes back.
        assert isinstance(postings, list)

    def test_index_storage_is_persisted(self, engine):
        assert engine.index_storage_bytes() > 0

    def test_search_before_initialize_raises(self, sim_store, small_documents):
        fresh = LuceneLikeEngine(sim_store, index_name="t2/lucene")
        fresh.build(small_documents)
        with pytest.raises(RuntimeError):
            fresh.lookup_postings("error")


class TestEngineLatencyShape:
    def test_latencies_are_positive(self, engine):
        result = engine.search("error")
        assert result.latency_ms > 0
        assert result.latency.lookup_ms > 0

    def test_hashtable_is_single_layer_airphant(self, sim_store, small_documents):
        engine = HashTableEngine(
            sim_store, index_name="t3/hashtable", config=SketchConfig(num_bins=64, seed=1)
        )
        engine.build(small_documents)
        assert engine.built_index is not None
        assert engine.built_index.metadata.num_layers == 1

    def test_airphant_lookup_has_fewer_round_trips_than_lucene(
        self, sim_store, small_documents
    ):
        lucene = LuceneLikeEngine(sim_store, index_name="rt/lucene", cache_bytes=0)
        lucene.build(small_documents)
        lucene.initialize()
        airphant = AirphantEngine(
            sim_store, index_name="rt/airphant", config=SketchConfig(num_bins=64, seed=1)
        )
        airphant.build(small_documents)
        airphant.initialize()
        _, lucene_latency = lucene.lookup_postings("error")
        _, airphant_latency = airphant.lookup_postings("error")
        assert airphant_latency.round_trips <= lucene_latency.round_trips

    def test_elasticsearch_pays_snapshot_hydration(self, sim_store, small_documents):
        elastic = ElasticLikeEngine(
            sim_store,
            index_name="hy/elastic",
            cache_bytes=0,
            hydration_chunk_bytes=512,
            hydration_cache_chunks=1,
        )
        elastic.build(small_documents)
        elastic.initialize()
        lucene = LuceneLikeEngine(sim_store, index_name="hy/lucene", cache_bytes=0)
        lucene.build(small_documents)
        lucene.initialize()
        _, elastic_latency = elastic.lookup_postings("error")
        _, lucene_latency = lucene.lookup_postings("error")
        assert elastic_latency.bytes_fetched > lucene_latency.bytes_fetched


class TestEngineQueryCache:
    def test_query_cache_size_reaches_the_searcher(self, sim_store, small_documents):
        engine = AirphantEngine(
            sim_store,
            index_name="t/cached",
            config=SketchConfig(num_bins=64, seed=1),
            query_cache_size=16,
        )
        engine.build(small_documents)
        engine.initialize()
        first = engine.search("error")
        second = engine.search("error")
        assert engine._searcher is not None
        assert engine._searcher.cache_hits == 1
        assert {d.text for d in second.documents} == {d.text for d in first.documents}

    def test_cache_disabled_by_default(self, sim_store, small_documents):
        engine = AirphantEngine(
            sim_store, index_name="t/uncached", config=SketchConfig(num_bins=64, seed=1)
        )
        engine.build(small_documents)
        engine.initialize()
        engine.search("error")
        engine.search("error")
        assert engine._searcher is not None
        assert engine._searcher.cache_hits == 0
