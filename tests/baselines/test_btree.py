"""Unit tests for the paged B-tree term index."""

import pytest

from repro.baselines.btree import BTreeIndex
from repro.core.mht import BinPointer
from repro.search.results import LatencyBreakdown
from repro.storage.latency import AffineLatencyModel
from repro.storage.simulated import SimulatedCloudStore


def _pointers(num_terms: int) -> dict[str, BinPointer]:
    return {
        f"key{index:05d}": BinPointer("postings.bin", index * 64, 32)
        for index in range(num_terms)
    }


@pytest.fixture
def store() -> SimulatedCloudStore:
    return SimulatedCloudStore(latency_model=AffineLatencyModel(jitter_sigma=0.0))


def _build(store, num_terms=500, fanout=16, cache_bytes=0) -> BTreeIndex:
    index = BTreeIndex(store, "btree-test", fanout=fanout, cache_bytes=cache_bytes)
    index.build(_pointers(num_terms))
    index.set_postings_blob("postings.bin")
    index.initialize()
    return index


class TestLookupCorrectness:
    def test_every_term_is_found(self, store):
        index = _build(store, num_terms=300)
        for term, expected in _pointers(300).items():
            assert index.lookup(term, LatencyBreakdown()) == expected

    def test_missing_terms_return_none(self, store):
        index = _build(store)
        assert index.lookup("missing", LatencyBreakdown()) is None
        assert index.lookup("zzzzz", LatencyBreakdown()) is None
        assert index.lookup("key99999", LatencyBreakdown()) is None

    def test_single_entry_tree(self, store):
        index = BTreeIndex(store, "tiny", fanout=4)
        index.build({"solo": BinPointer("p", 0, 9)})
        index.set_postings_blob("p")
        index.initialize()
        assert index.lookup("solo", LatencyBreakdown()) == BinPointer("p", 0, 9)

    def test_lookup_before_initialize_raises(self, store):
        index = BTreeIndex(store, "x")
        index.build(_pointers(10))
        with pytest.raises(RuntimeError):
            index.lookup("key00001", LatencyBreakdown())

    def test_invalid_fanout_rejected(self, store):
        with pytest.raises(ValueError):
            BTreeIndex(store, "x", fanout=1)


class TestAccessPattern:
    def test_uncached_lookup_reads_one_page_per_level(self, store):
        index = _build(store, num_terms=1000, fanout=8, cache_bytes=0)
        latency = LatencyBreakdown()
        index.lookup("key00500", latency)
        # 1000 terms at fanout 8: leaves=125, level2=16, level3=2, root -> 4 levels.
        assert latency.round_trips >= 3

    def test_page_cache_reduces_round_trips_on_repeat_lookups(self, store):
        index = _build(store, num_terms=1000, fanout=8, cache_bytes=10 * 1024 * 1024)
        first = LatencyBreakdown()
        index.lookup("key00500", first)
        second = LatencyBreakdown()
        index.lookup("key00501", second)
        assert second.round_trips < first.round_trips

    def test_lookup_cheaper_than_skiplist_at_same_scale(self, store):
        # High fanout means far fewer dependent reads than a skip list; this is
        # why SQLite is the closest competitor to Airphant in the paper.
        from repro.baselines.skiplist import SkipListIndex

        btree = _build(store, num_terms=1000, fanout=64, cache_bytes=0)
        btree_latency = LatencyBreakdown()
        btree.lookup("key00750", btree_latency)

        other_store = SimulatedCloudStore(latency_model=AffineLatencyModel(jitter_sigma=0.0))
        skiplist = SkipListIndex(other_store, "sl", cache_bytes=0)
        skiplist.build(_pointers(1000))
        skiplist.set_postings_blob("postings.bin")
        skiplist.initialize()
        skiplist_latency = LatencyBreakdown()
        skiplist.lookup("key00750", skiplist_latency)

        assert btree_latency.round_trips < skiplist_latency.round_trips

    def test_root_is_cached_across_lookups(self, store):
        index = _build(store, num_terms=500, fanout=8, cache_bytes=4096)
        index.lookup("key00001", LatencyBreakdown())
        latency = LatencyBreakdown()
        index.lookup("key00002", latency)
        # The root page stays in cache, so at least one level is saved.
        assert latency.round_trips <= 3
