"""Tests for the elastic deployment simulator."""

import pytest

from repro.cost.model import CostModel, PeakTroughWorkload
from repro.deploy.simulator import (
    AutoscalingPolicy,
    DeploymentSimulator,
    FixedFleetPolicy,
)
from repro.deploy.workload import WorkloadTrace

WORKLOAD = PeakTroughWorkload(peak_ops=154.08, trough_ops=154.08 / 20, peak_fraction=0.2)


class TestWorkloadTrace:
    def test_from_peak_trough_shape(self):
        trace = WorkloadTrace.from_peak_trough(WORKLOAD, num_intervals=100, interval_seconds=60)
        assert len(trace) == 100
        assert trace.peak_ops == pytest.approx(WORKLOAD.peak_ops)
        assert trace.average_ops == pytest.approx(WORKLOAD.average_ops, rel=0.01)

    def test_total_queries(self):
        trace = WorkloadTrace(interval_seconds=10, demand_ops=(2.0, 4.0))
        assert trace.total_queries == pytest.approx(60.0)
        assert trace.duration_seconds == 20.0

    def test_jitter_changes_trace_but_not_scale(self):
        smooth = WorkloadTrace.from_peak_trough(WORKLOAD, num_intervals=50)
        rough = WorkloadTrace.from_peak_trough(WORKLOAD, num_intervals=50, jitter=0.2, seed=3)
        assert smooth.demand_ops != rough.demand_ops
        assert rough.average_ops == pytest.approx(smooth.average_ops, rel=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadTrace(interval_seconds=0, demand_ops=(1.0,))
        with pytest.raises(ValueError):
            WorkloadTrace(interval_seconds=1, demand_ops=())
        with pytest.raises(ValueError):
            WorkloadTrace(interval_seconds=1, demand_ops=(-1.0,))


class TestPolicies:
    def test_fixed_fleet_for_peak(self):
        trace = WorkloadTrace(interval_seconds=60, demand_ops=(10.0, 50.0, 5.0))
        policy = FixedFleetPolicy.for_peak(trace, node_throughput_ops=5.71)
        assert policy.num_nodes == 9  # ceil(50 / 5.71)
        assert policy.nodes_for(0.0, 5.71) == 9

    def test_autoscaler_follows_demand(self):
        policy = AutoscalingPolicy()
        assert policy.nodes_for(0.0, 5.71) == 0
        assert policy.nodes_for(5.0, 5.71) == 1
        assert policy.nodes_for(50.0, 5.71) == 9

    def test_autoscaler_respects_bounds_and_headroom(self):
        policy = AutoscalingPolicy(min_nodes=2, max_nodes=4, headroom=0.5)
        assert policy.nodes_for(0.0, 5.71) == 2
        assert policy.nodes_for(100.0, 5.71) == 4

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            FixedFleetPolicy(num_nodes=0)
        with pytest.raises(ValueError):
            AutoscalingPolicy(min_nodes=-1)
        with pytest.raises(ValueError):
            AutoscalingPolicy(min_nodes=5, max_nodes=2)
        with pytest.raises(ValueError):
            AutoscalingPolicy(headroom=-0.1)


class TestSimulation:
    def test_autoscaling_uses_fewer_node_hours_on_peaky_workloads(self):
        trace = WorkloadTrace.from_peak_trough(WORKLOAD, num_intervals=144)
        simulator = DeploymentSimulator()
        reports = simulator.compare(trace)
        coupled = reports["coupled (fixed fleet)"]
        decoupled = reports["decoupled (autoscaling)"]
        assert decoupled.node_hours < coupled.node_hours
        assert decoupled.monthly_compute_cost < coupled.monthly_compute_cost
        # Both serve (essentially) all offered queries.
        assert coupled.unserved_fraction == pytest.approx(0.0, abs=1e-9)
        assert decoupled.unserved_fraction == pytest.approx(0.0, abs=1e-6)

    def test_cold_starts_only_penalize_the_autoscaler(self):
        trace = WorkloadTrace.from_peak_trough(WORKLOAD, num_intervals=48)
        simulator = DeploymentSimulator()
        reports = simulator.compare(trace, AutoscalingPolicy(cold_start_seconds=5.0))
        assert reports["coupled (fixed fleet)"].late_fraction == 0.0
        assert reports["decoupled (autoscaling)"].late_fraction >= 0.0

    def test_flat_workload_gives_no_savings(self):
        flat = PeakTroughWorkload(peak_ops=100.0, trough_ops=100.0, peak_fraction=1.0)
        trace = WorkloadTrace.from_peak_trough(flat, num_intervals=24)
        reports = DeploymentSimulator().compare(trace)
        assert reports["decoupled (autoscaling)"].node_hours == pytest.approx(
            reports["coupled (fixed fleet)"].node_hours
        )

    def test_compute_cost_tracks_the_analytic_model(self):
        # The simulator's compute cost for the decoupled paradigm should agree
        # with the closed-form model of Section V-C (same throughput / prices).
        trace = WorkloadTrace.from_peak_trough(WORKLOAD, num_intervals=288)
        simulator = DeploymentSimulator()
        report = simulator.simulate(trace, AutoscalingPolicy())
        model = CostModel()
        analytic = model.airphant_vm_monthly * WORKLOAD.average_ops / model.airphant_ops_per_second
        # Node-count quantization (ceil) makes the simulated fleet a bit more
        # expensive than the fluid closed form; it must never be cheaper.
        assert report.monthly_compute_cost >= analytic * 0.99
        assert report.monthly_compute_cost <= analytic * 2.5

    def test_simulator_validation(self):
        with pytest.raises(ValueError):
            DeploymentSimulator(node_throughput_ops=0)
        with pytest.raises(ValueError):
            DeploymentSimulator(node_monthly_cost=-1)

    def test_report_fractions_on_empty_offered_load(self):
        trace = WorkloadTrace(interval_seconds=60, demand_ops=(0.0, 0.0))
        report = DeploymentSimulator().simulate(trace, AutoscalingPolicy())
        assert report.unserved_fraction == 0.0
        assert report.late_fraction == 0.0
        assert report.node_hours == 0.0
