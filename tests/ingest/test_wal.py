"""Tests for the segmented write-ahead log (repro.ingest.wal)."""

from __future__ import annotations

import pytest

from repro.ingest.wal import (
    IngestManifest,
    WriteAheadLog,
    encode_segment,
    ingest_manifest_blob,
    parse_segment,
    segment_blob,
)
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.storage.memory import InMemoryObjectStore


class TestSegmentFormat:
    def test_segment_is_line_delimited_corpus_bytes(self):
        data = encode_segment(["error one", "info two"])
        assert data == b"error one\ninfo two\n"

    def test_offsets_match_the_corpus_parser_exactly(self):
        # Postings created at flush time must agree byte-for-byte with what
        # the standard corpus parser computes for the same blob.
        texts = ["error disk full", "warn high load", "info ok"]
        data = encode_segment(texts)
        documents = parse_segment("idx/ingest/seg-00000000.log", data)
        reparsed = list(
            LineDelimitedCorpusParser().parse_blob("idx/ingest/seg-00000000.log", data)
        )
        assert [d.ref for d in documents] == [d.ref for d in reparsed]
        assert [d.text for d in documents] == texts
        for document in documents:
            window = data[document.offset : document.offset + document.length]
            assert window.decode("utf-8") == document.text

    def test_rejects_documents_the_format_cannot_hold(self):
        with pytest.raises(ValueError):
            encode_segment([])
        with pytest.raises(ValueError):
            encode_segment(["fine", "has\nnewline"])
        with pytest.raises(ValueError):
            encode_segment(["   "])
        with pytest.raises(ValueError):
            encode_segment([42])  # type: ignore[list-item]


class TestManifest:
    def test_round_trip(self):
        manifest = IngestManifest(next_segment=7, active_segments=("a", "b"))
        assert IngestManifest.from_bytes(manifest.to_bytes()) == manifest

    def test_blob_names(self):
        assert ingest_manifest_blob("idx") == "idx/ingest/ingest.json"
        assert segment_blob("idx", 3) == "idx/ingest/seg-00000003.log"


class TestWriteAheadLog:
    def test_append_commits_segment_then_manifest(self):
        store = InMemoryObjectStore()
        wal = WriteAheadLog(store, "idx")
        blob, documents = wal.append(["error one", "info two"])
        assert blob == "idx/ingest/seg-00000000.log"
        assert [d.text for d in documents] == ["error one", "info two"]
        assert store.exists(blob)
        manifest = WriteAheadLog(store, "idx").manifest()
        assert manifest.next_segment == 1
        assert manifest.active_segments == (blob,)

    def test_segment_numbering_is_monotonic_across_retire(self):
        store = InMemoryObjectStore()
        wal = WriteAheadLog(store, "idx")
        first, _ = wal.append(["one doc"])
        wal.retire((first,))
        second, _ = wal.append(["two doc"])
        # The retired segment's number is never reused: a reader holding a
        # pre-flush manifest must never see its blob overwritten.
        assert second == "idx/ingest/seg-00000001.log"
        assert wal.manifest().active_segments == (second,)
        # Retire never deletes blobs (they hold the document bytes).
        assert store.exists(first)

    def test_replay_returns_unflushed_documents_in_order(self):
        store = InMemoryObjectStore()
        wal = WriteAheadLog(store, "idx")
        first, _ = wal.append(["error one"])
        wal.append(["warn two", "info three"])
        wal.retire((first,))
        # A fresh WAL over the same store (simulated process restart).
        replayed = WriteAheadLog(store, "idx").replay()
        assert [d.text for d in replayed] == ["warn two", "info three"]

    def test_destroy_removes_all_wal_state(self):
        store = InMemoryObjectStore()
        wal = WriteAheadLog(store, "idx")
        wal.append(["error one"])
        wal.destroy()
        assert store.list_blobs(prefix="idx/ingest/") == []
        assert WriteAheadLog(store, "idx").manifest() == IngestManifest()
