"""Ranked retrieval over the live view (memtable ∪ deltas ∪ base).

The write-path contract for ``mode="topk_bm25"``: appended documents are
ranked immediately (read-your-writes), and after any interleaving of
flushes and compactions the live ranking is identical — same order, same
scores — to a fresh index rebuilt from the union of all documents.  The
corpus is crafted so every matching document has a distinct (tf, length)
pair, making the expected order unique.
"""

from __future__ import annotations

import pytest

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.index.stats import stats_blob_name
from repro.observability import MetricsRegistry
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.search.searcher import AirphantSearcher
from repro.service import AirphantService, SearchRequest, ServiceConfig, ServiceError
from repro.storage.memory import InMemoryObjectStore

BASE_LINES = [
    "error disk full",
    "info service ok",
    "warn slow response",
]

#: No background worker: the tests drive flush/compaction deterministically.
MANUAL = ServiceConfig(ingest_interval_s=0)

QUERY = "error"
K = 10


def _service(store: InMemoryObjectStore) -> AirphantService:
    service = AirphantService(store, MANUAL, metrics=MetricsRegistry())
    store.put("corpus/base.txt", ("\n".join(BASE_LINES) + "\n").encode())
    service.build_index("idx", ["corpus/base.txt"], sketch_config=SketchConfig(num_bins=64))
    return service


def _live_ranking(service: AirphantService) -> list[tuple[float, str]]:
    result = service.execute(SearchRequest(query=QUERY, index="idx", mode="topk_bm25", top_k=K))
    return [(score, document.text) for score, document in zip(result.scores, result.documents)]


def _rebuilt_ranking(all_lines: list[str]) -> list[tuple[float, str]]:
    """The oracle: a fresh index over the same documents in one clean store."""
    store = InMemoryObjectStore()
    store.put("corpus/all.txt", ("\n".join(all_lines) + "\n").encode())
    documents = list(LineDelimitedCorpusParser().parse(store, ["corpus/all.txt"]))
    AirphantBuilder(store, config=SketchConfig(num_bins=64)).build_from_documents(
        documents, index_name="oracle"
    )
    searcher = AirphantSearcher.open(store, index_name="oracle")
    result = searcher.search_topk(QUERY, k=K)
    return [(score, document.text) for score, document in zip(result.scores, result.documents)]


def _assert_same_ranking(live: list[tuple[float, str]], oracle: list[tuple[float, str]]) -> None:
    assert [text for _, text in live] == [text for _, text in oracle]
    assert [score for score, _ in live] == pytest.approx([score for score, _ in oracle])


class TestReadYourWritesRanking:
    def test_appended_document_is_ranked_before_flush(self):
        service = _service(InMemoryObjectStore())
        service.append_documents("idx", ["error error error cascading failure"])
        ranking = _live_ranking(service)
        assert ranking[0][1] == "error error error cascading failure"
        assert {text for _, text in ranking} == {
            "error disk full",
            "error error error cascading failure",
        }
        service.close()

    def test_scores_do_not_change_across_a_flush(self):
        service = _service(InMemoryObjectStore())
        service.append_documents("idx", ["error error replication stalled"])
        before = _live_ranking(service)
        service.flush_index("idx")
        assert _live_ranking(service) == pytest.approx(before)
        service.close()


class TestLiveMatchesRebuild:
    def test_every_flush_compact_interleaving_matches_a_fresh_rebuild(self):
        # Each stage leaves the live view in a different member shape:
        # memtable+base, delta+base, memtable+delta+base, compacted base,
        # and memtable+compacted base.  All must rank like a clean rebuild.
        service = _service(InMemoryObjectStore())
        lines = list(BASE_LINES)

        def check():
            _assert_same_ranking(_live_ranking(service), _rebuilt_ranking(lines))

        service.append_documents("idx", ["error error replication stalled"])
        lines.append("error error replication stalled")
        check()  # memtable + base

        service.flush_index("idx")
        check()  # delta + base

        service.append_documents(
            "idx", ["error error error cascading failure now", "error timeout"]
        )
        lines += ["error error error cascading failure now", "error timeout"]
        check()  # memtable + delta + base

        service.flush_index("idx")
        check()  # two deltas + base

        service.compact_index("idx")
        check()  # compacted base only

        service.append_documents("idx", ["late error arrival with padding words"])
        lines.append("late error arrival with padding words")
        check()  # memtable + compacted base
        service.close()


class TestRankingUnavailableThroughService:
    def test_missing_stats_blob_is_a_typed_400(self):
        store = InMemoryObjectStore()
        service = _service(store)
        store.delete(stats_blob_name("idx"))
        with pytest.raises(ServiceError) as excinfo:
            service.execute(SearchRequest(query=QUERY, index="idx", mode="topk_bm25"))
        assert excinfo.value.status == 400
        assert excinfo.value.info.error == "ranking_unavailable"
        # Membership queries on the same index still answer.
        result = service.execute(SearchRequest(query=QUERY, index="idx"))
        assert result.num_results > 0
        service.close()
