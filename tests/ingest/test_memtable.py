"""Tests for the exact in-memory memtable and its searcher adapter."""

from __future__ import annotations

from repro.ingest.memtable import Memtable, MemtableSearcher, memtable_from_documents
from repro.parsing.documents import Document, DocumentRef
from repro.search.boolean import And, Or, Term


def _doc(blob: str, offset: int, text: str) -> Document:
    return Document(ref=DocumentRef(blob=blob, offset=offset, length=len(text)), text=text)


def _table(*texts: str) -> Memtable:
    offset = 0
    documents = []
    for text in texts:
        documents.append(_doc("seg", offset, text))
        offset += len(text) + 1
    return memtable_from_documents(documents)


class TestMemtable:
    def test_add_deduplicates_by_reference(self):
        table = Memtable()
        document = _doc("seg", 0, "error one")
        assert table.add([document]) == 1
        assert table.add([document]) == 0
        assert table.num_documents == 1
        assert table.approximate_bytes == len("error one")

    def test_postings_are_exact(self):
        table = _table("error disk", "error net", "info ok")
        assert len(table.postings("error")) == 2
        assert len(table.postings("info")) == 1
        assert table.postings("absent") == set()


class TestMemtableSearcher:
    def test_keyword_search_is_and_of_words(self):
        searcher = MemtableSearcher(_table("error disk full", "error net", "warn disk"))
        assert {d.text for d in searcher.search("error").documents} == {
            "error disk full",
            "error net",
        }
        assert {d.text for d in searcher.search("error disk").documents} == {
            "error disk full"
        }
        assert searcher.search("").documents == []
        assert searcher.search("absent").documents == []

    def test_boolean_search(self):
        searcher = MemtableSearcher(_table("error disk", "warn net", "info ok"))
        result = searcher.search_boolean(Or(Term("error"), Term("warn")))
        assert {d.text for d in result.documents} == {"error disk", "warn net"}
        result = searcher.search_boolean(And(Term("error"), Term("net")))
        assert result.documents == []
        # String queries parse through the shared Boolean grammar.
        result = searcher.search_boolean("error OR info")
        assert {d.text for d in result.documents} == {"error disk", "info ok"}

    def test_top_k_truncates(self):
        searcher = MemtableSearcher(_table("error a", "error b", "error c"))
        assert len(searcher.search("error", top_k=2).documents) == 2

    def test_lookup_postings_is_sorted_and_latency_free(self):
        searcher = MemtableSearcher(_table("error a", "info b", "error c"))
        postings, latency = searcher.lookup_postings("error")
        assert postings == sorted(postings)
        assert len(postings) == 2
        assert latency.total_ms == 0.0
        assert latency.round_trips == 0

    def test_no_false_positives_by_construction(self):
        searcher = MemtableSearcher(_table("error disk", "warn net"))
        result = searcher.search("error")
        assert result.false_positive_count == 0
        assert len(result.candidate_postings) == len(result.documents)
