"""Crash-consistency matrix for the mutable-document lifecycle.

Every durable transition — append, delete, update, flush, compact — is
killed at its exact commit-point mutations with
:class:`harness.crashpoints.FaultPointStore`, then "restarted" by opening a
fresh :class:`LiveIndex` (replay) over the same backend.  The recovered
state must honour the WAL contract:

* an **acknowledged** operation (commit-point PUT reached the store)
  survives the crash;
* an **unacknowledged** operation (killed before the commit point) vanishes
  without a trace on the query path;
* a crash *between* the index-manifest swap and the WAL retire leaves
  documents transiently in both a delta and the replayed memtable — the
  query path deduplicates by reference, so answers still equal a fresh
  rebuild.
"""

from __future__ import annotations

import pytest
from harness.crashpoints import FaultPointStore, SimulatedCrash

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.ingest.live import LiveIndex
from repro.observability import MetricsRegistry
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.parsing.documents import Posting
from repro.search.visibility import apply_tombstones
from repro.service.config import ServiceConfig
from repro.storage.memory import InMemoryObjectStore

CORPUS = b"error disk full\ninfo service ok\nwarn slow response\n"

BASE_REF = Posting(blob="corpus/base.txt", offset=0, length=15)

#: Commit point of every ingest operation (the WAL manifest swap).
COMMIT = "ingest/ingest.json"


def _store() -> FaultPointStore:
    backend = InMemoryObjectStore()
    backend.put("corpus/base.txt", CORPUS)
    documents = list(LineDelimitedCorpusParser().parse(backend, ["corpus/base.txt"]))
    AirphantBuilder(backend, config=SketchConfig(num_bins=64, seed=3)).build_from_documents(
        documents, index_name="idx"
    )
    return FaultPointStore(backend)


def _live(store) -> LiveIndex:
    return LiveIndex(
        store,
        "idx",
        ServiceConfig(ingest_interval_s=0),
        MetricsRegistry(),
        lambda name: None,
    )


def _restart(store) -> LiveIndex:
    """Simulate process restart: fresh write path over the same bytes."""
    store.disarm()
    live = _live(store)
    live.replay()
    return live


def _visible_texts(live: LiveIndex, query: str) -> set[str]:
    """What the full live view (memtable ∪ deltas ∪ base) answers."""
    searcher = live.manager.open_searcher()
    members = apply_tombstones(
        [*live.memtable_searchers(), searcher], live.tombstone_refs()
    )
    texts = {d.text for member in members for d in member.search(query).documents}
    searcher.close()
    return texts


class TestAppendCrashes:
    def test_killed_before_commit_loses_the_unacked_batch(self):
        store = _store()
        live = _live(store)
        store.arm("put", COMMIT, when="before")
        with pytest.raises(SimulatedCrash):
            live.append(["error fresh event"])
        recovered = _restart(store)
        assert recovered.memtable_documents() == 0
        assert "error fresh event" not in _visible_texts(recovered, "fresh")

    def test_killed_after_commit_keeps_the_acked_batch(self):
        store = _store()
        live = _live(store)
        store.arm("put", COMMIT, when="after")
        with pytest.raises(SimulatedCrash):
            live.append(["error fresh event"])
        recovered = _restart(store)
        assert _visible_texts(recovered, "fresh") == {"error fresh event"}


class TestDeleteCrashes:
    def test_killed_before_commit_keeps_the_document(self):
        store = _store()
        live = _live(store)
        store.arm("put", COMMIT, when="before")
        with pytest.raises(SimulatedCrash):
            live.delete([BASE_REF])
        recovered = _restart(store)
        assert recovered.tombstone_refs() == frozenset()
        assert "error disk full" in _visible_texts(recovered, "error")

    def test_killed_after_commit_keeps_the_delete(self):
        store = _store()
        live = _live(store)
        store.arm("put", COMMIT, when="after")
        with pytest.raises(SimulatedCrash):
            live.delete([BASE_REF])
        recovered = _restart(store)
        assert recovered.tombstone_refs() == frozenset({BASE_REF})
        assert "error disk full" not in _visible_texts(recovered, "error")


class TestUpdateCrashes:
    def test_killed_before_commit_shows_the_old_document_only(self):
        store = _store()
        live = _live(store)
        # The segment and tombstone PUTs both land; the one manifest swap
        # referencing them does not — the update must vanish atomically.
        store.arm("put", COMMIT, when="before")
        with pytest.raises(SimulatedCrash):
            live.update(BASE_REF, "error replacement text")
        recovered = _restart(store)
        assert "error disk full" in _visible_texts(recovered, "error")
        assert "error replacement text" not in _visible_texts(recovered, "error")

    def test_killed_after_commit_shows_the_replacement_only(self):
        store = _store()
        live = _live(store)
        store.arm("put", COMMIT, when="after")
        with pytest.raises(SimulatedCrash):
            live.update(BASE_REF, "error replacement text")
        recovered = _restart(store)
        visible = _visible_texts(recovered, "error")
        assert "error replacement text" in visible
        assert "error disk full" not in visible


class TestFlushCrashes:
    def test_killed_mid_delta_build_replays_everything(self):
        store = _store()
        live = _live(store)
        live.append(["error fresh one", "info fresh two"])
        # Die on the first blob of the delta build: no index-manifest swap
        # happened, so recovery sees only the WAL.
        store.arm("put", "idx/delta-")
        with pytest.raises(SimulatedCrash):
            live.flush()
        recovered = _restart(store)
        assert recovered.memtable_documents() == 2
        assert _visible_texts(recovered, "fresh") == {
            "error fresh one",
            "info fresh two",
        }

    def test_killed_between_manifest_swap_and_wal_retire_deduplicates(self):
        store = _store()
        live = _live(store)
        live.append(["error fresh one"])
        # The delta is committed into the index manifest, but the WAL still
        # lists the segment: recovery replays it into the memtable, so the
        # document transiently exists in two tiers.
        store.arm("put", COMMIT, when="before")
        with pytest.raises(SimulatedCrash):
            live.flush()
        recovered = _restart(store)
        assert recovered.memtable_documents() == 1
        assert recovered.manager.manifest().delta_indexes != ()
        searcher = recovered.manager.open_searcher()
        members = [*recovered.memtable_searchers(), searcher]
        hits = [d for m in members for d in m.search("fresh").documents]
        # Both tiers answer, but they answer with the *same reference* — the
        # query path's posting-keyed merge keeps exactly one copy.
        assert {(d.blob, d.offset, d.length) for d in hits} == {
            (hits[0].blob, hits[0].offset, hits[0].length)
        }
        searcher.close()
        # The next flush retires the replayed segment for good.
        recovered.flush()
        assert recovered.wal.manifest(refresh=True).active_segments == ()

    def test_failed_flush_with_concurrent_delete_keeps_exactly_survivors(self):
        store = _store()
        live = _live(store)
        outcome = live.append(["error fresh one", "info fresh two"])
        doomed = Posting(**outcome["refs"][0])

        # Regression for the flush-failure undo path: it must restore the
        # documents captured *at seal time* exactly once, even when a delete
        # lands between the seal and the failure.  The old code re-queried
        # the sealed memtable in the undo path, racing with that delete.
        real_append = live.manager.append

        def delete_then_die(*args, **kwargs):
            live.delete([doomed])
            raise SimulatedCrash("put", "idx/delta-0000", "before")

        live.manager.append = delete_then_die
        with pytest.raises(SimulatedCrash):
            live.flush()
        live.manager.append = real_append

        # The deleted document stays deleted; the survivor is searchable in
        # exactly one place and flushes cleanly afterwards.
        assert _visible_texts(live, "fresh") == {"info fresh two"}
        flushed = live.flush()
        assert flushed is not None and flushed["flushed"] == 1
        assert _visible_texts(live, "fresh") == {"info fresh two"}


class TestCompactCrashes:
    def test_killed_before_swap_keeps_the_old_generation(self):
        store = _store()
        live = _live(store)
        live.append(["error fresh one"])
        live.flush()
        live.delete([BASE_REF])
        store.arm("put", "idx/manifest.json")
        with pytest.raises(SimulatedCrash):
            live.compact()
        recovered = _restart(store)
        # Old manifest intact: delta still listed, tombstone still pending,
        # query answers unchanged.
        assert recovered.manager.manifest().delta_indexes != ()
        assert recovered.tombstone_refs() == frozenset({BASE_REF})
        visible = _visible_texts(recovered, "error")
        assert "error fresh one" in visible
        assert "error disk full" not in visible

    def test_killed_after_swap_before_tombstone_retire_stays_filtered(self):
        store = _store()
        live = _live(store)
        live.delete([BASE_REF])
        store.arm("put", "idx/manifest.json", when="after")
        with pytest.raises(SimulatedCrash):
            live.compact()
        recovered = _restart(store)
        # The new generation no longer holds the document *and* the WAL
        # still lists the tombstone — filtering is idempotent, so the
        # answer is the same either way, and the next compaction retires it.
        assert recovered.tombstone_refs() == frozenset({BASE_REF})
        assert "error disk full" not in _visible_texts(recovered, "error")
        recovered.append(["error fresh one"])
        recovered.compact()
        assert recovered.tombstone_refs() == frozenset()
        assert "error disk full" not in _visible_texts(recovered, "error")


class TestSnapshotCrashes:
    def test_killed_snapshot_put_leaves_no_record(self):
        store = _store()
        live = _live(store)
        store.arm("put", "/snapshots/")
        with pytest.raises(SimulatedCrash):
            live.manager.create_snapshot("s1")
        store.disarm()
        assert live.manager.list_snapshots() == []

    def test_killed_restore_swap_keeps_the_current_manifest(self):
        store = _store()
        live = _live(store)
        live.manager.create_snapshot("s1")
        live.append(["error fresh one"])
        live.flush()
        before = live.manager.manifest()
        store.arm("put", "idx/manifest.json")
        with pytest.raises(SimulatedCrash):
            live.manager.restore_snapshot("s1")
        store.disarm()
        assert live.manager.manifest() == before
