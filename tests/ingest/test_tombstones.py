"""Tests for the mutable-document lifecycle: tombstone deletes and updates.

Covers every layer a delete travels through: the WAL tombstone records, the
memtable's exact removal, the query-time :class:`TombstoneView` filter, the
ranking-stats pruning, the flush-time survivor filter, and the compaction
that finally drops deleted documents from the physical index.
"""

from __future__ import annotations

import pytest

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.index.stats import IndexStats, build_stats, prune_stats
from repro.ingest.live import IngestCoordinator, IngestOverloadedError, LiveIndex
from repro.ingest.memtable import Memtable, memtable_from_documents
from repro.ingest.wal import (
    WriteAheadLog,
    encode_tombstones,
    parse_tombstones,
)
from repro.observability import MetricsRegistry
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import SimpleAnalyzer
from repro.search.visibility import TombstoneView, apply_tombstones
from repro.service.config import ServiceConfig
from repro.storage.memory import InMemoryObjectStore

CORPUS = b"error disk full\ninfo service ok\nwarn slow response\n"

#: Refs of the three base documents, in corpus order.
BASE_REFS = (
    Posting(blob="corpus/base.txt", offset=0, length=15),
    Posting(blob="corpus/base.txt", offset=16, length=15),
    Posting(blob="corpus/base.txt", offset=32, length=18),
)


def _base(store: InMemoryObjectStore, num_shards: int = 1) -> None:
    store.put("corpus/base.txt", CORPUS)
    documents = list(LineDelimitedCorpusParser().parse(store, ["corpus/base.txt"]))
    AirphantBuilder(
        store, config=SketchConfig(num_bins=64, seed=3), num_shards=num_shards
    ).build_from_documents(documents, index_name="idx")


def _live(store, **config) -> LiveIndex:
    return LiveIndex(
        store,
        "idx",
        ServiceConfig(ingest_interval_s=0, **config),
        MetricsRegistry(),
        lambda name: None,
    )


def _doc(blob: str, offset: int, text: str) -> Document:
    return Document(ref=Posting(blob=blob, offset=offset, length=len(text)), text=text)


class TestTombstoneRecords:
    def test_round_trip(self):
        refs = [BASE_REFS[0], BASE_REFS[2]]
        assert parse_tombstones(encode_tombstones(refs)) == refs

    def test_rejects_empty_and_bad_refs(self):
        with pytest.raises(ValueError):
            encode_tombstones([])
        with pytest.raises(ValueError):
            encode_tombstones([Posting(blob="", offset=0, length=3)])

    def test_append_commits_record_into_manifest(self):
        store = InMemoryObjectStore()
        wal = WriteAheadLog(store, "idx")
        blob = wal.append_tombstones([BASE_REFS[0]])
        assert blob == "idx/ingest/tomb-00000000.json"
        assert store.exists(blob)
        assert wal.manifest().tombstone_segments == (blob,)
        assert wal.load_tombstones() == {blob: (BASE_REFS[0],)}

    def test_segment_retire_keeps_tombstones(self):
        store = InMemoryObjectStore()
        wal = WriteAheadLog(store, "idx")
        segment, _ = wal.append(["error fresh one"])
        tomb = wal.append_tombstones([BASE_REFS[0]])
        manifest = wal.retire((segment,))
        assert manifest.active_segments == ()
        # Tombstones outlive the flush that retires their era's segments:
        # only compaction (which physically drops the documents) retires them.
        assert manifest.tombstone_segments == (tomb,)

    def test_retire_tombstones_drops_manifest_entry_then_blob(self):
        store = InMemoryObjectStore()
        wal = WriteAheadLog(store, "idx")
        tomb = wal.append_tombstones([BASE_REFS[0]])
        manifest = wal.retire_tombstones([tomb])
        assert manifest.tombstone_segments == ()
        assert not store.exists(tomb)

    def test_update_commit_is_one_manifest_swap(self):
        store = InMemoryObjectStore()
        wal = WriteAheadLog(store, "idx")
        seg_seq, segment = wal.reserve_segment()
        tomb_seq, tomb = wal.reserve_tombstone()
        store.put(segment, b"replacement text\n")
        store.put(tomb, encode_tombstones([BASE_REFS[0]]))
        manifest = wal.commit_update(seg_seq, segment, tomb_seq, tomb)
        assert manifest.active_segments == (segment,)
        assert manifest.tombstone_segments == (tomb,)
        assert manifest.next_segment == max(seg_seq, tomb_seq) + 1

    def test_restore_resets_segments_but_preserves_counter(self):
        store = InMemoryObjectStore()
        wal = WriteAheadLog(store, "idx")
        wal.append(["error one"])
        wal.append_tombstones([BASE_REFS[0]])
        before = wal.manifest().next_segment
        manifest = wal.restore([BASE_REFS[1]])
        assert manifest.active_segments == ()
        # One fresh record holding exactly the restored tombstones.
        assert len(manifest.tombstone_segments) == 1
        assert wal.load_tombstones(refresh=True) == {
            manifest.tombstone_segments[0]: (BASE_REFS[1],)
        }
        # The counter never rewinds: blobs from the abandoned timeline are
        # permanent document storage and must not be overwritten.
        assert manifest.next_segment > before


class TestMemtableRemove:
    def test_remove_erases_documents_and_postings(self):
        table = memtable_from_documents(
            [_doc("seg", 0, "error disk"), _doc("seg", 11, "error net")]
        )
        removed = table.remove([Posting(blob="seg", offset=0, length=10)])
        assert removed == 1
        assert table.num_documents == 1
        assert table.approximate_bytes == len("error net")
        assert {d.text for d in table.documents()} == {"error net"}
        assert len(table.postings("error")) == 1
        # The word "disk" only occurred in the removed document.
        assert table.postings("disk") == set()

    def test_remove_is_idempotent(self):
        table = memtable_from_documents([_doc("seg", 0, "error disk")])
        ref = Posting(blob="seg", offset=0, length=10)
        assert table.remove([ref]) == 1
        assert table.remove([ref]) == 0
        assert table.num_documents == 0


class TestPruneStats:
    def _stats(self) -> IndexStats:
        documents = [
            _doc("b", 0, "error disk full"),
            _doc("b", 16, "error net"),
            _doc("b", 26, "info ok"),
        ]
        return build_stats(documents, SimpleAnalyzer())

    def test_prune_matches_fresh_computation(self):
        stats = self._stats()
        removed = {Posting(blob="b", offset=0, length=15)}
        survivors = [_doc("b", 16, "error net"), _doc("b", 26, "info ok")]
        expected = build_stats(survivors, SimpleAnalyzer())
        pruned = prune_stats(stats, removed)
        assert pruned.num_documents == expected.num_documents
        assert pruned.total_words == expected.total_words
        assert pruned.doc_lengths == expected.doc_lengths
        assert pruned.term_frequencies == expected.term_frequencies

    def test_prune_of_absent_postings_returns_same_object(self):
        stats = self._stats()
        assert prune_stats(stats, {Posting(blob="x", offset=0, length=1)}) is stats

    def test_prune_drops_terms_with_no_surviving_postings(self):
        stats = self._stats()
        pruned = prune_stats(stats, {Posting(blob="b", offset=26, length=7)})
        assert "info" not in pruned.term_frequencies
        assert "ok" not in pruned.term_frequencies


class TestTombstoneView:
    def _searcher(self):
        from repro.search.searcher import AirphantSearcher

        store = InMemoryObjectStore()
        _base(store)
        return AirphantSearcher.open(store, index_name="idx")

    def test_filters_documents_and_candidates(self):
        searcher = self._searcher()
        view = TombstoneView(searcher, {BASE_REFS[0]})
        result = view.search("error")
        assert {d.text for d in result.documents} == set()
        assert BASE_REFS[0] not in result.candidate_postings
        searcher.close()

    def test_empty_tombstones_pass_through(self):
        searcher = self._searcher()
        view = TombstoneView(searcher, frozenset())
        assert {d.text for d in view.search("error").documents} == {"error disk full"}
        searcher.close()

    def test_apply_tombstones_wraps_only_when_pending(self):
        searcher = self._searcher()
        members = apply_tombstones([searcher], frozenset())
        assert members[0] is searcher
        members = apply_tombstones([searcher], frozenset({BASE_REFS[0]}))
        assert isinstance(members[0], TombstoneView)
        searcher.close()

    def test_ranking_stats_are_pruned(self):
        searcher = self._searcher()
        view = TombstoneView(searcher, {BASE_REFS[0]})
        stats = view.ranking_stats()
        assert stats.num_documents == 2
        assert BASE_REFS[0] not in stats.doc_lengths
        searcher.close()

    def test_delegates_unfiltered_attributes(self):
        searcher = self._searcher()
        view = TombstoneView(searcher, {BASE_REFS[0]})
        assert view.metadata is searcher.metadata
        searcher.close()


class TestLiveDelete:
    def test_delete_hides_base_document_immediately(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        outcome = live.delete([BASE_REFS[0]])
        assert outcome["deleted"] == 1
        assert outcome["memtable_removed"] == 0
        assert store.exists(outcome["tombstone_record"])
        assert live.tombstone_refs() == frozenset({BASE_REFS[0]})
        members = apply_tombstones(live.memtable_searchers(), live.tombstone_refs())
        # The memtable tier returns nothing for the deleted base doc, and the
        # base tier (wrapped the same way by the service facade) filters it.
        assert all(not m.search("error").documents for m in members)

    def test_delete_removes_memtable_documents(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        outcome = live.append(["error fresh event"])
        ref = Posting(**outcome["refs"][0])
        deleted = live.delete([ref])
        assert deleted["memtable_removed"] == 1
        assert live.memtable_documents() == 0

    def test_delete_deduplicates_refs(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        outcome = live.delete([BASE_REFS[0], BASE_REFS[0]])
        assert outcome["deleted"] == 1

    def test_delete_rejects_empty_batch(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        with pytest.raises(ValueError):
            live.delete([])

    def test_replay_filters_tombstoned_documents(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        outcome = live.append(["error fresh event", "info fresh two"])
        ref = Posting(**outcome["refs"][0])
        live.delete([ref])
        # "Restart": a fresh LiveIndex over the same store replays the WAL.
        reopened = _live(store)
        reopened.replay()
        assert reopened.memtable_documents() == 1
        texts = {
            d.text
            for searcher in reopened.memtable_searchers()
            for d in searcher.search("fresh").documents
        }
        assert texts == {"info fresh two"}
        assert reopened.tombstone_refs() == frozenset({ref})


class TestLiveUpdate:
    def test_update_replaces_document_atomically(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        outcome = live.update(BASE_REFS[0], "error replacement text")
        new_ref = Posting(**outcome["ref"])
        assert outcome["updated"] == {
            "blob": BASE_REFS[0].blob,
            "offset": BASE_REFS[0].offset,
            "length": BASE_REFS[0].length,
        }
        assert live.tombstone_refs() == frozenset({BASE_REFS[0]})
        texts = {
            d.text
            for searcher in live.memtable_searchers()
            for d in searcher.search("replacement").documents
        }
        assert texts == {"error replacement text"}
        # One manifest swap carries both the new segment and the tombstone.
        manifest = live.wal.manifest()
        assert outcome["wal_segment"] in manifest.active_segments
        assert outcome["tombstone_record"] in manifest.tombstone_segments
        assert new_ref.blob == outcome["wal_segment"]

    def test_update_of_memtable_document_swaps_in_place(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        appended = live.append(["error fresh event"])
        old_ref = Posting(**appended["refs"][0])
        live.update(old_ref, "warn replacement")
        assert live.memtable_documents() == 1
        texts = {
            d.text
            for searcher in live.memtable_searchers()
            for d in searcher.search("replacement").documents
        }
        assert texts == {"warn replacement"}

    def test_update_rejects_multiline_text(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        with pytest.raises(ValueError):
            live.update(BASE_REFS[0], "with\nnewline")
        assert live.tombstone_refs() == frozenset()


class TestFlushUnderDeletes:
    def test_flush_builds_delta_over_survivors_only(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        outcome = live.append(["error fresh one", "info fresh two"])
        ref = Posting(**outcome["refs"][0])
        live.delete([ref])
        flushed = live.flush()
        assert flushed is not None and flushed["flushed"] == 1
        searcher = live.manager.open_searcher()
        hits = searcher.search("fresh").documents
        assert {d.text for d in hits} == {"info fresh two"}
        searcher.close()
        # Tombstones survive the flush: the base document they also cover is
        # still pending physical removal.
        assert live.tombstone_refs() == frozenset({ref})

    def test_flush_of_fully_deleted_memtable_retires_segments(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        outcome = live.append(["error fresh one"])
        live.delete([Posting(**outcome["refs"][0])])
        flushed = live.flush()
        assert flushed is not None
        assert flushed["flushed"] == 0
        assert flushed["delta"] is None
        # No delta was built, but the WAL segments are retired: the
        # tombstone record, not the segment list, carries the delete.
        assert live.wal.manifest().active_segments == ()


class TestCompactionPurge:
    def test_compact_physically_drops_deleted_documents(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        live.append(["error fresh one"])
        live.delete([BASE_REFS[0]])
        outcome = live.compact()
        assert outcome is not None
        assert outcome["tombstones_purged"] == 1
        assert live.tombstone_refs() == frozenset()
        assert live.wal.manifest(refresh=True).tombstone_segments == ()
        # The compacted base genuinely does not contain the deleted ref —
        # no tombstone filtering needed anymore.
        searcher = live.manager.open_searcher()
        postings = {d.ref for d in searcher.search("error").documents}
        assert BASE_REFS[0] not in postings
        assert {d.text for d in searcher.search("fresh").documents} == {
            "error fresh one"
        }
        searcher.close()

    def test_compact_runs_even_without_deltas_when_tombstones_pend(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        live.delete([BASE_REFS[0]])
        outcome = live.compact()
        assert outcome is not None and outcome["tombstones_purged"] == 1

    def test_compact_without_work_is_a_noop(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        assert live.compact() is None

    def test_delete_everything_leaves_a_searchable_empty_index(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store)
        live.delete(list(BASE_REFS))
        outcome = live.compact()
        assert outcome is not None
        searcher = live.manager.open_searcher()
        assert searcher.search("error").documents == []
        searcher.close()


class TestBackpressure:
    def test_append_overload_raises_typed_error(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store, ingest_max_memtable_docs=1, ingest_overload_wait_s=0.0)
        live.append(["error fresh one"])
        with pytest.raises(IngestOverloadedError) as excinfo:
            live.append(["error fresh two"])
        assert excinfo.value.index_name == "idx"
        assert excinfo.value.documents == 1
        # Nothing durable, nothing searchable from the rejected batch.
        assert live.memtable_documents() == 1
        assert len(live.wal.manifest().active_segments) == 1

    def test_byte_limit_also_triggers(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store, ingest_max_memtable_bytes=8, ingest_overload_wait_s=0.0)
        live.append(["error fresh one"])
        with pytest.raises(IngestOverloadedError):
            live.append(["error fresh two"])

    def test_flush_releases_backpressure(self):
        store = InMemoryObjectStore()
        _base(store)
        live = _live(store, ingest_max_memtable_docs=1, ingest_overload_wait_s=0.0)
        live.append(["error fresh one"])
        live.flush()
        assert live.append(["error fresh two"])["appended"] == 1

    def test_limits_off_by_default(self):
        config = ServiceConfig()
        assert config.ingest_max_memtable_docs == 0
        assert config.ingest_max_memtable_bytes == 0

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(ingest_max_memtable_docs=-1)
        with pytest.raises(ValueError):
            ServiceConfig(ingest_overload_wait_s=-0.5)


class TestCoordinatorTombstones:
    def test_live_view_stays_registered_while_tombstones_pend(self):
        store = InMemoryObjectStore()
        _base(store)
        coordinator = IngestCoordinator(
            store, ServiceConfig(ingest_interval_s=0), MetricsRegistry(), lambda n: None
        )
        live = coordinator.live("idx", create=True)
        live.delete([BASE_REFS[0]])
        coordinator.close()
        # A fresh coordinator (another node, or a restart) with an *empty*
        # memtable must still surface the pending tombstones, or the deleted
        # document would resurrect on the query path.
        reopened = IngestCoordinator(
            store, ServiceConfig(ingest_interval_s=0), MetricsRegistry(), lambda n: None
        )
        assert reopened.live("idx") is not None
        assert reopened.tombstone_refs("idx") == frozenset({BASE_REFS[0]})
        assert reopened.summary()["tombstones_pending"] == 1
        reopened.close()

    def test_tombstone_refs_of_unknown_index_is_empty(self):
        store = InMemoryObjectStore()
        coordinator = IngestCoordinator(
            store, ServiceConfig(ingest_interval_s=0), MetricsRegistry(), lambda n: None
        )
        assert coordinator.tombstone_refs("nope") == frozenset()
        coordinator.close()
