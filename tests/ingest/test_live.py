"""Tests for LiveIndex / IngestCoordinator (the write-path state machine)."""

from __future__ import annotations

import pytest

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.ingest.live import IngestCoordinator, LiveIndex
from repro.observability import MetricsRegistry
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.service.config import ServiceConfig
from repro.storage.base import TransientStoreError
from repro.storage.memory import InMemoryObjectStore

CORPUS = b"error disk full\ninfo service ok\nwarn slow response\n"


def _base(store: InMemoryObjectStore, num_shards: int = 1) -> None:
    store.put("corpus/base.txt", CORPUS)
    documents = list(LineDelimitedCorpusParser().parse(store, ["corpus/base.txt"]))
    AirphantBuilder(
        store, config=SketchConfig(num_bins=64, seed=3), num_shards=num_shards
    ).build_from_documents(documents, index_name="idx")


def _live(store, **config) -> tuple[LiveIndex, list[str]]:
    invalidated: list[str] = []
    live = LiveIndex(
        store,
        "idx",
        ServiceConfig(ingest_interval_s=0, **config),
        MetricsRegistry(),
        invalidated.append,
    )
    return live, invalidated


def _memtable_texts(live: LiveIndex) -> set[str]:
    return {
        document.text
        for searcher in live.memtable_searchers()
        for document in searcher.search_boolean("error OR info OR warn OR fresh").documents
    }


class TestAppend:
    def test_append_is_wal_durable_and_immediately_searchable(self):
        store = InMemoryObjectStore()
        _base(store)
        live, _ = _live(store)
        outcome = live.append(["error fresh event"])
        assert outcome["appended"] == 1
        assert store.exists(outcome["wal_segment"])
        assert "error fresh event" in _memtable_texts(live)
        assert live.memtable_documents() == 1

    def test_append_rejects_bad_documents(self):
        store = InMemoryObjectStore()
        _base(store)
        live, _ = _live(store)
        with pytest.raises(ValueError):
            live.append(["with\nnewline"])
        # Nothing durable, nothing searchable.
        assert live.wal.manifest().active_segments == ()
        assert live.memtable_documents() == 0


class TestFlush:
    def test_flush_builds_delta_and_retires_segments(self):
        store = InMemoryObjectStore()
        _base(store)
        live, invalidated = _live(store)
        live.append(["error fresh one", "info fresh two"])
        outcome = live.flush()
        assert outcome["flushed"] == 2
        assert outcome["delta"] == "idx/delta-0000"
        assert live.memtable_documents() == 0
        assert live.wal.manifest().active_segments == ()
        assert live.delta_count == 1
        assert invalidated == ["idx"]
        # The delta is searchable through the manager's combined searcher,
        # with postings pointing into the WAL segment blob.
        searcher = live.manager.open_searcher()
        hits = searcher.search("fresh").documents
        assert {d.text for d in hits} == {"error fresh one", "info fresh two"}
        assert all(d.blob.startswith("idx/ingest/seg-") for d in hits)

    def test_flush_of_empty_memtable_is_a_noop(self):
        store = InMemoryObjectStore()
        _base(store)
        live, invalidated = _live(store)
        assert live.flush() is None
        assert invalidated == []

    def test_failed_flush_keeps_documents_searchable_and_durable(self, monkeypatch):
        store = InMemoryObjectStore()
        _base(store)
        live, _ = _live(store)
        live.append(["error fresh one"])

        def boom(*args, **kwargs):
            raise TransientStoreError("store down")

        monkeypatch.setattr(live.manager, "append", boom)
        with pytest.raises(TransientStoreError):
            live.flush()
        # The documents fell back into the active memtable and the WAL still
        # lists their segment: the next flush retries them.
        assert "error fresh one" in _memtable_texts(live)
        assert len(live.wal.manifest().active_segments) == 1
        monkeypatch.undo()
        outcome = live.flush()
        assert outcome is not None and outcome["flushed"] == 1


class TestCompact:
    def test_compact_flushes_then_folds_deltas(self):
        store = InMemoryObjectStore()
        _base(store)
        live, _ = _live(store)
        live.append(["error fresh one"])
        live.flush()
        live.append(["warn fresh two"])  # unflushed at compact time
        outcome = live.compact()
        assert outcome is not None
        assert outcome["deltas_folded"] == 2  # the flushed one + compact's own flush
        assert live.delta_count == 0
        manifest = live.manager.manifest()
        assert manifest.delta_indexes == ()
        assert manifest.active_base.startswith("idx/gen-")
        searcher = live.manager.open_searcher()
        assert {d.text for d in searcher.search("fresh").documents} == {
            "error fresh one",
            "warn fresh two",
        }

    def test_compact_with_nothing_to_fold_is_a_noop(self):
        store = InMemoryObjectStore()
        _base(store)
        live, _ = _live(store)
        assert live.compact() is None

    def test_compact_preserves_a_sharded_base_layout(self):
        from repro.index.sharding import read_shard_manifest

        store = InMemoryObjectStore()
        _base(store, num_shards=2)
        live, _ = _live(store)
        live.append(["error fresh one"])
        outcome = live.compact()
        assert outcome is not None
        manifest = live.manager.manifest()
        assert read_shard_manifest(store, manifest.active_base).num_shards == 2


class TestPolicies:
    def test_flush_policy_triggers_on_documents_and_bytes(self):
        store = InMemoryObjectStore()
        _base(store)
        live, _ = _live(store, ingest_flush_docs=2)
        live.append(["error fresh one"])
        assert not live.should_flush()
        live.append(["warn fresh two"])
        assert live.should_flush()

        live_bytes, _ = _live(store, ingest_flush_bytes=10)
        live_bytes.append(["error something long enough"])
        assert live_bytes.should_flush()

    def test_compact_policy_triggers_on_delta_count(self):
        store = InMemoryObjectStore()
        _base(store)
        live, _ = _live(store, ingest_compact_deltas=2)
        live.append(["error fresh one"])
        live.flush()
        assert not live.should_compact()
        live.append(["warn fresh two"])
        live.flush()
        assert live.should_compact()

    def test_compact_policy_triggers_on_byte_ratio(self):
        store = InMemoryObjectStore()
        _base(store)
        # Any delta at all exceeds a tiny ratio.
        live, _ = _live(store, ingest_compact_deltas=0, ingest_compact_ratio=0.0001)
        assert not live.should_compact()
        live.append(["error fresh one"])
        live.flush()
        assert live.should_compact()


class TestCoordinator:
    def _coordinator(self, store, **config):
        invalidated: list[str] = []
        coordinator = IngestCoordinator(
            store,
            ServiceConfig(ingest_interval_s=0, **config),
            MetricsRegistry(),
            invalidated.append,
        )
        return coordinator, invalidated

    def test_live_is_created_on_demand_and_reused(self):
        store = InMemoryObjectStore()
        _base(store)
        coordinator, _ = self._coordinator(store)
        assert coordinator.live("idx") is None  # no write state yet
        live = coordinator.live("idx", create=True)
        assert coordinator.live("idx") is live
        coordinator.close()

    def test_leftover_wal_state_is_replayed_on_first_touch(self):
        store = InMemoryObjectStore()
        _base(store)
        writer, _ = self._coordinator(store)
        writer.live("idx", create=True).append(["error fresh one"])
        writer.close()
        # A second coordinator (fresh process) discovers the WAL on first
        # query-side touch and replays it.
        reader, _ = self._coordinator(store)
        members = reader.members("idx")
        assert len(members) == 1
        assert {d.text for d in members[0].search("fresh").documents} == {
            "error fresh one"
        }
        reader.close()

    def test_run_maintenance_applies_the_policies(self):
        store = InMemoryObjectStore()
        _base(store)
        coordinator, _ = self._coordinator(
            store, ingest_flush_docs=1, ingest_compact_deltas=1
        )
        live = coordinator.live("idx", create=True)
        live.append(["error fresh one"])
        outcome = coordinator.run_maintenance()
        assert outcome["flushed"] == 1
        assert outcome["compacted"] == 1
        assert outcome["errors"] == 0
        assert live.memtable_documents() == 0
        assert live.delta_count == 0
        coordinator.close()

    def test_discard_with_destroy_removes_wal(self):
        store = InMemoryObjectStore()
        _base(store)
        coordinator, _ = self._coordinator(store)
        coordinator.live("idx", create=True).append(["error fresh one"])
        coordinator.discard("idx", destroy_wal=True)
        assert store.list_blobs(prefix="idx/ingest/") == []
        assert coordinator.live("idx") is None
        coordinator.close()
