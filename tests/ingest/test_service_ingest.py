"""Service-level ingestion: facade methods, HTTP endpoints, consistency.

The acceptance contract under test: a document appended through the service
is returned by keyword, Boolean, and regex search *before* any flush; it
survives a simulated crash (a new service over the same store replays the
WAL); and the flush/compaction lifecycle is observable through ``/healthz``
and ``/metrics``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest
from harness.prometheus import parse_prometheus

from repro.core.config import SketchConfig
from repro.observability import MetricsRegistry
from repro.service import (
    AirphantService,
    SearchRequest,
    ServiceConfig,
    ServiceError,
    create_server,
)
from repro.storage.memory import InMemoryObjectStore

CORPUS = b"error disk full\ninfo service ok\nwarn slow response\n"

#: No background worker: tests drive flush/compaction deterministically.
MANUAL = ServiceConfig(ingest_interval_s=0)


def _service(store=None, config: ServiceConfig = MANUAL) -> AirphantService:
    store = store if store is not None else InMemoryObjectStore()
    # A private registry per service keeps metric assertions exact (the
    # process-wide default accumulates across tests).
    service = AirphantService(store, config, metrics=MetricsRegistry())
    store.put("corpus/base.txt", CORPUS)
    service.build_index("idx", ["corpus/base.txt"], sketch_config=SketchConfig(num_bins=64))
    return service


def _texts(service: AirphantService, query: str, mode: str = "keyword") -> set[str]:
    request = SearchRequest(query=query, index="idx", mode=mode)
    return {d.text for d in service.execute(request).documents}


class TestReadYourWrites:
    def test_appended_documents_visible_in_every_mode_before_flush(self):
        service = _service()
        service.append_documents("idx", ["error fresh event", "warn fresh alarm"])
        assert "error fresh event" in _texts(service, "error")
        assert "error fresh event" in _texts(service, "error AND fresh", "boolean")
        assert {"error fresh event", "warn fresh alarm"} <= _texts(
            service, "error OR warn", "boolean"
        )
        assert _texts(service, "fresh .*event", "regex") == {"error fresh event"}
        # lookup_postings is the unfiltered term-index operation: the base
        # sketch may contribute false positives, but both memtable postings
        # (exact, pointing into the WAL segment) must be present.
        postings, _ = service.lookup_postings("idx", "fresh")
        assert sum(p.blob.startswith("idx/ingest/seg-") for p in postings) == 2
        service.close()

    def test_base_and_memtable_results_merge_without_duplicates(self):
        service = _service()
        service.append_documents("idx", ["error fresh event"])
        result = service.execute(SearchRequest(query="error", index="idx"))
        refs = [d.ref for d in result.documents]
        assert len(refs) == len(set(refs))
        assert {d.text for d in result.documents} == {
            "error disk full",
            "error fresh event",
        }
        service.close()

    def test_visibility_survives_flush_and_compact(self):
        service = _service()
        service.append_documents("idx", ["error fresh event"])
        flushed = service.flush_index("idx")
        assert flushed["flushed"] == 1
        assert "error fresh event" in _texts(service, "fresh")
        compacted = service.compact_index("idx")
        assert compacted["compacted"] is True
        assert "error fresh event" in _texts(service, "fresh")
        assert _texts(service, "fresh .*event", "regex") == {"error fresh event"}
        service.close()


class TestDurability:
    def test_unflushed_documents_survive_a_simulated_crash(self):
        store = InMemoryObjectStore()
        service = _service(store)
        service.append_documents("idx", ["error fresh event"])
        # Simulated crash: the service vanishes without flush or close; a
        # new process opens the same store and must replay the WAL.
        del service
        reopened = AirphantService(store, MANUAL)
        assert "error fresh event" in _texts(reopened, "fresh")
        assert "error fresh event" in _texts(reopened, "error AND fresh", "boolean")
        assert _texts(reopened, "fresh .*event", "regex") == {"error fresh event"}
        health = reopened.health()
        assert health["ingest"]["wal_segments_active"] == 1
        assert health["ingest"]["memtable_documents"] == 1
        # Flushing on the reopened node drains the replayed WAL.
        reopened.flush_index("idx")
        assert reopened.health()["ingest"]["wal_segments_active"] == 0
        assert "error fresh event" in _texts(reopened, "fresh")
        reopened.close()

    def test_rebuild_discards_live_state(self):
        store = InMemoryObjectStore()
        service = _service(store)
        service.append_documents("idx", ["error fresh event"])
        service.flush_index("idx")
        service.append_documents("idx", ["warn stale leftover"])
        # Rebuilding the index from the base corpus is authoritative.
        service.build_index("idx", ["corpus/base.txt"], sketch_config=SketchConfig(num_bins=64))
        assert _texts(service, "fresh") == set()
        assert _texts(service, "leftover") == set()
        assert store.list_blobs(prefix="idx/ingest/") == []
        assert store.list_blobs(prefix="idx/delta-") == []
        # The discarded predecessor's occupancy gauges go with it: no
        # phantom memtable documents on a freshly rebuilt index.
        gauge = service.metrics.gauge("airphant_memtable_documents", label_names=("index",))
        assert gauge.series() == {}
        # Post-rebuild deltas never reuse a retired prefix: numbering stays
        # monotonic across the reset.
        service.append_documents("idx", ["info post rebuild"])
        flushed = service.flush_index("idx")
        assert flushed["delta"] == "idx/delta-0001"
        service.close()

    def test_read_only_store_append_is_a_typed_400(self, monkeypatch):
        from repro.storage.base import ReadOnlyStoreError

        service = _service()
        monkeypatch.setattr(
            service.store,
            "put",
            lambda *a, **k: (_ for _ in ()).throw(ReadOnlyStoreError("static export")),
        )
        with pytest.raises(ServiceError) as excinfo:
            service.append_documents("idx", ["doc one"])
        assert excinfo.value.status == 400
        assert excinfo.value.info.error == "store_read_only"
        service.close()

    def test_compact_of_a_plain_index_does_not_register_live_state(self):
        service = _service()
        outcome = service.compact_index("idx")
        assert outcome == {"index": "idx", "compacted": False, "deltas_folded": 0}
        # No LiveIndex was created and no background worker started just to
        # answer a no-op.
        summary = service.ingest.summary()
        assert summary["live_indexes"] == 0
        assert not summary["worker_running"]
        service.close()


class TestValidation:
    def test_append_to_unknown_index_is_404(self):
        service = _service()
        with pytest.raises(ServiceError) as excinfo:
            service.append_documents("nope", ["doc"])
        assert excinfo.value.status == 404
        service.close()

    def test_bad_documents_are_400(self):
        service = _service()
        with pytest.raises(ServiceError) as excinfo:
            service.append_documents("idx", ["with\nnewline"])
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            service.append_documents("idx", [])
        assert excinfo.value.status == 400
        service.close()

    def test_flush_and_compact_require_an_existing_index(self):
        service = _service()
        for method in (service.flush_index, service.compact_index):
            with pytest.raises(ServiceError) as excinfo:
                method("nope")
            assert excinfo.value.status == 404
        service.close()


class TestBackgroundWorker:
    def test_policy_flush_and_compaction_happen_without_manual_calls(self):
        config = ServiceConfig(
            ingest_interval_s=0.02, ingest_flush_docs=2, ingest_compact_deltas=1
        )
        service = _service(config=config)
        service.append_documents("idx", ["error fresh one", "warn fresh two"])
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            summary = service.ingest.summary()
            if summary["memtable_documents"] == 0 and summary["delta_indexes"] == 0:
                break
            time.sleep(0.02)
        summary = service.ingest.summary()
        assert summary["memtable_documents"] == 0, "worker never flushed"
        assert summary["delta_indexes"] == 0, "worker never compacted"
        assert summary["worker_running"]
        # The compacted documents are served from the new base generation.
        assert "error fresh one" in _texts(service, "fresh")
        service.close()
        assert not service.ingest.summary()["worker_running"]


class TestHTTPEndpoints:
    @pytest.fixture
    def server(self):
        service = _service()
        http_server = create_server(service)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        try:
            yield http_server
        finally:
            http_server.shutdown()
            http_server.server_close()
            thread.join(timeout=5)
            service.close()

    def _post(self, url: str, payload: dict | None = None) -> dict:
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        request = urllib.request.Request(url, data=body, method="POST")
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return json.loads(response.read())

    def _get(self, url: str) -> bytes:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.read()

    def test_docs_flush_compact_flow_over_http(self, server):
        base = server.url
        appended = self._post(
            f"{base}/indexes/idx/docs", {"documents": ["error fresh event"]}
        )
        assert appended["appended"] == 1
        assert appended["wal_segment"].startswith("idx/ingest/seg-")

        searched = self._post(
            f"{base}/search", {"index": "idx", "query": "fresh", "mode": "keyword"}
        )
        assert [hit["text"] for hit in searched["documents"]] == ["error fresh event"]

        health = json.loads(self._get(f"{base}/healthz"))
        assert health["ingest"]["memtable_documents"] == 1
        assert health["ingest"]["wal_segments_active"] == 1

        flushed = self._post(f"{base}/indexes/idx/flush")
        assert flushed["flushed"] == 1
        compacted = self._post(f"{base}/indexes/idx/compact")
        assert compacted["compacted"] is True
        assert compacted["generation"] >= 1

        searched = self._post(
            f"{base}/search", {"index": "idx", "query": "fresh", "mode": "regex"}
        )
        assert [hit["text"] for hit in searched["documents"]] == ["error fresh event"]

        families = parse_prometheus(self._get(f"{base}/metrics").decode("utf-8"))
        assert families["airphant_ingest_documents_total"].value(index="idx") == 1
        assert families["airphant_ingest_flushes_total"].total() >= 1
        assert families["airphant_ingest_compactions_total"].value(index="idx") == 1
        assert families["airphant_wal_segments_total"].value(index="idx") == 1
        assert families["airphant_memtable_documents"].value(index="idx") == 0
        assert families["airphant_ingest_flush_seconds"].histogram_count() >= 1
        # The per-index query labels and the occupancy gauges ride along.
        assert families["airphant_queries_total"].value(mode="keyword", index="idx") >= 1
        assert families["airphant_open_indexes"].value() >= 1
        assert families["airphant_read_cache_bytes_used"].kind == "gauge"

    def test_bad_ingest_bodies_are_rejected(self, server):
        base = server.url
        for payload in ({}, {"documents": []}, {"documents": [1]}, {"docs": ["x"]}):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(f"{base}/indexes/idx/docs", payload)
            assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{base}/indexes/nope/docs", {"documents": ["x"]})
        assert excinfo.value.code == 404
