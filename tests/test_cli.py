"""Tests for the ``airphant`` command-line interface."""

import functools
import http.server
import json
import threading

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def bucket(tmp_path) -> str:
    return str(tmp_path / "bucket")


def _generate_and_build(bucket: str, capsys) -> None:
    assert main([
        "generate", "--bucket", bucket, "--kind", "hdfs", "--documents", "500", "--seed", "3",
    ]) == 0
    assert main([
        "build", "--bucket", bucket, "--blobs", "corpora/hdfs.txt",
        "--index", "hdfs-index", "--bins", "512",
    ]) == 0
    capsys.readouterr()


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--bucket", "/tmp/b"])
        assert args.kind == "hdfs"
        assert args.documents == 10_000

    def test_search_flags(self):
        args = build_parser().parse_args(
            ["search", "--bucket", "/tmp/b", "--index", "i", "--query", "q", "--regex"]
        )
        assert args.regex and not args.boolean
        assert not args.json
        assert args.query_cache_size == 0

    def test_ranked_mode_flags(self):
        args = build_parser().parse_args([
            "search", "--bucket", "/tmp/b", "--index", "i", "--query", "q",
            "--mode", "topk-bm25", "-k", "5", "--weight", "disk=2.5",
        ])
        assert args.mode == "topk-bm25"
        assert args.top_k == 5
        assert args.weight == ["disk=2.5"]

    def test_mode_rejects_unknown_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "search", "--bucket", "/tmp/b", "--index", "i", "--query", "q",
                "--mode", "fuzzy",
            ])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--bucket", "/tmp/b"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.query_cache_size == 0

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--bucket", "/tmp/b", "--port", "0", "--query-cache-size", "32"]
        )
        assert args.port == 0
        assert args.query_cache_size == 32


class TestGenerate:
    def test_generate_writes_blob(self, bucket, capsys):
        assert main(["generate", "--bucket", bucket, "--kind", "diag", "--documents", "50"]) == 0
        out = capsys.readouterr().out
        assert "50 documents" in out

    def test_generate_cranfield(self, bucket, capsys):
        assert main(
            ["generate", "--bucket", bucket, "--kind", "cranfield", "--documents", "30"]
        ) == 0
        assert "30 documents" in capsys.readouterr().out


class TestProfile:
    def test_profile_reports_statistics(self, bucket, capsys):
        main(["generate", "--bucket", bucket, "--kind", "hdfs", "--documents", "200"])
        capsys.readouterr()
        assert main(["profile", "--bucket", bucket, "--blobs", "corpora/hdfs.txt"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["documents"] == 200
        assert report["terms"] > 0
        assert report["sigma_x"] > 0


class TestBuildAndSearch:
    def test_build_then_search_round_trip(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "ERROR", "--top-k", "5",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        results = [line for line in captured.out.splitlines() if line]
        assert 1 <= len(results) <= 5
        assert all("ERROR" in line for line in results)

    def test_search_unknown_word_exits_nonzero(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index", "--query", "zzznotaword",
        ])
        assert exit_code == 1

    def test_boolean_search(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "INFO AND dfs.DataNode", "--boolean", "--top-k", "3",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        for line in [line for line in captured.out.splitlines() if line]:
            assert "INFO" in line and "dfs.DataNode" in line

    def test_ranked_search_prints_scores(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "ERROR", "--mode", "topk-bm25", "-k", "3",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        results = [line for line in captured.out.splitlines() if line]
        assert 1 <= len(results) <= 3
        scores = []
        for line in results:
            score_text, _, text = line.partition("\t")
            assert "ERROR" in text
            scores.append(float(score_text))
        assert all(0.0 <= score <= 1.0 for score in scores)
        assert scores == sorted(scores, reverse=True)

    def test_ranked_search_json_carries_scores(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "ERROR", "--mode", "topk-bm25", "-k", "3", "--json",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["mode"] == "topk_bm25"
        assert all("score" in doc for doc in payload["documents"])

    def test_ranked_search_with_weights(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "ERROR", "--mode", "topk-bm25", "-k", "3",
            "--weight", "ERROR=2.0",
        ])
        assert exit_code == 0

    def test_malformed_weight_fails_gracefully(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "ERROR", "--mode", "topk-bm25", "--weight", "no-equals-sign",
        ])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "TERM=MULTIPLIER" in captured.err

    def test_simulated_latency_reported(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "blk_1", "--simulate-latency",
        ])
        captured = capsys.readouterr()
        assert exit_code in (0, 1)
        assert "ms simulated" in captured.err

    def test_search_json_output(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "ERROR", "--top-k", "5", "--json",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["query"] == "ERROR"
        # Same SearchResponse shape the HTTP API returns.
        assert payload["index"] == "hdfs-index"
        assert payload["mode"] == "keyword"
        assert 1 <= payload["num_results"] <= 5
        assert all("ERROR" in doc["text"] for doc in payload["documents"])
        assert "latency" in payload

    def test_search_unknown_index_fails_gracefully(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "no-such-index", "--query", "ERROR",
        ])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "no index named" in captured.err

    def test_search_with_query_cache_flag(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "ERROR", "--top-k", "3", "--query-cache-size", "16",
        ])
        assert exit_code == 0

    def test_build_reports_layers_and_storage(self, bucket, capsys):
        main(["generate", "--bucket", bucket, "--kind", "zipf", "--documents", "300"])
        capsys.readouterr()
        assert main([
            "build", "--bucket", bucket, "--blobs", "corpora/zipf.txt",
            "--index", "zipf-index", "--bins", "256", "--layers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "L = 2" in out
        assert "storage" in out


class TestStoreURIs:
    def test_bucket_and_store_are_mutually_exclusive(self, bucket):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["search", "--bucket", bucket, "--store", "mem://", "--index", "i", "--query", "q"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--index", "i", "--query", "q"])

    def test_unknown_scheme_fails_gracefully(self, capsys):
        exit_code = main([
            "search", "--store", "gopher://x", "--index", "i", "--query", "q",
        ])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown store scheme" in captured.err

    def test_file_store_uri_round_trip(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--store", f"file://{bucket}", "--index", "hdfs-index",
            "--query", "ERROR", "--top-k", "3",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert all("ERROR" in line for line in captured.out.splitlines() if line)

    def test_search_against_http_store_end_to_end(self, bucket, capsys):
        """Acceptance: `airphant search --store http://…` over stdlib http.server."""
        _generate_and_build(bucket, capsys)
        handler = functools.partial(
            http.server.SimpleHTTPRequestHandler, directory=bucket
        )
        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            exit_code = main([
                "search",
                "--store", f"http://127.0.0.1:{server.server_address[1]}",
                "--index", "hdfs-index",
                "--query", "ERROR",
                "--top-k", "3",
                "--retries", "2",
                "--hedge-ms", "200",
            ])
            captured = capsys.readouterr()
            assert exit_code == 0
            results = [line for line in captured.out.splitlines() if line]
            assert 1 <= len(results) <= 3
            assert all("ERROR" in line for line in results)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_build_against_http_store_reports_read_only(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        handler = functools.partial(
            http.server.SimpleHTTPRequestHandler, directory=bucket
        )
        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            exit_code = main([
                "build",
                "--store", f"http://127.0.0.1:{server.server_address[1]}",
                "--blobs", "corpora/hdfs.txt",
                "--index", "readonly-target",
                "--bins", "512",
            ])
            captured = capsys.readouterr()
            assert exit_code == 2
            assert "read-only" in captured.err
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_sim_store_uri_reports_latency(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--store", f"sim://{bucket}?seed=3", "--simulate-latency",
            "--index", "hdfs-index", "--query", "blk_1",
        ])
        captured = capsys.readouterr()
        assert exit_code in (0, 1)
        assert "ms simulated" in captured.err

    def test_resilience_flags_do_not_zero_simulated_latency(self, bucket, capsys):
        """Regression: wrapping the simulator in ResilientStore used to hide
        it from the fetcher's virtual-clock path, reporting 0.0 ms."""
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--simulate-latency", "--retries", "2",
            "--index", "hdfs-index", "--query", "ERROR", "--top-k", "2",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        simulated = [
            part for part in captured.err.split(", ") if "ms simulated" in part
        ]
        assert simulated and not simulated[0].startswith("0.0 ms")

    def test_generate_against_read_only_store_fails_gracefully(self, bucket, capsys):
        """Regression: store errors outside build/search used to traceback."""
        _generate_and_build(bucket, capsys)
        handler = functools.partial(
            http.server.SimpleHTTPRequestHandler, directory=bucket
        )
        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            exit_code = main([
                "generate",
                "--store", f"http://127.0.0.1:{server.server_address[1]}",
                "--kind", "diag", "--documents", "10",
            ])
            captured = capsys.readouterr()
            assert exit_code == 2
            assert "read-only" in captured.err
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_resilience_flags_parse(self):
        args = build_parser().parse_args([
            "search", "--store", "mem://", "--index", "i", "--query", "q",
            "--retries", "3", "--retry-backoff-ms", "5", "--timeout-s", "2.5",
            "--hedge-ms", "40",
        ])
        assert args.retries == 3
        assert args.retry_backoff_ms == 5.0
        assert args.timeout_s == 2.5
        assert args.hedge_ms == 40.0
