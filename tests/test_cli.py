"""Tests for the ``airphant`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def bucket(tmp_path) -> str:
    return str(tmp_path / "bucket")


def _generate_and_build(bucket: str, capsys) -> None:
    assert main([
        "generate", "--bucket", bucket, "--kind", "hdfs", "--documents", "500", "--seed", "3",
    ]) == 0
    assert main([
        "build", "--bucket", bucket, "--blobs", "corpora/hdfs.txt",
        "--index", "hdfs-index", "--bins", "512",
    ]) == 0
    capsys.readouterr()


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--bucket", "/tmp/b"])
        assert args.kind == "hdfs"
        assert args.documents == 10_000

    def test_search_flags(self):
        args = build_parser().parse_args(
            ["search", "--bucket", "/tmp/b", "--index", "i", "--query", "q", "--regex"]
        )
        assert args.regex and not args.boolean
        assert not args.json
        assert args.query_cache_size == 0

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--bucket", "/tmp/b"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.query_cache_size == 0

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--bucket", "/tmp/b", "--port", "0", "--query-cache-size", "32"]
        )
        assert args.port == 0
        assert args.query_cache_size == 32


class TestGenerate:
    def test_generate_writes_blob(self, bucket, capsys):
        assert main(["generate", "--bucket", bucket, "--kind", "diag", "--documents", "50"]) == 0
        out = capsys.readouterr().out
        assert "50 documents" in out

    def test_generate_cranfield(self, bucket, capsys):
        assert main(
            ["generate", "--bucket", bucket, "--kind", "cranfield", "--documents", "30"]
        ) == 0
        assert "30 documents" in capsys.readouterr().out


class TestProfile:
    def test_profile_reports_statistics(self, bucket, capsys):
        main(["generate", "--bucket", bucket, "--kind", "hdfs", "--documents", "200"])
        capsys.readouterr()
        assert main(["profile", "--bucket", bucket, "--blobs", "corpora/hdfs.txt"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["documents"] == 200
        assert report["terms"] > 0
        assert report["sigma_x"] > 0


class TestBuildAndSearch:
    def test_build_then_search_round_trip(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "ERROR", "--top-k", "5",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        results = [line for line in captured.out.splitlines() if line]
        assert 1 <= len(results) <= 5
        assert all("ERROR" in line for line in results)

    def test_search_unknown_word_exits_nonzero(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index", "--query", "zzznotaword",
        ])
        assert exit_code == 1

    def test_boolean_search(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "INFO AND dfs.DataNode", "--boolean", "--top-k", "3",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        for line in [line for line in captured.out.splitlines() if line]:
            assert "INFO" in line and "dfs.DataNode" in line

    def test_simulated_latency_reported(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "blk_1", "--simulate-latency",
        ])
        captured = capsys.readouterr()
        assert exit_code in (0, 1)
        assert "ms simulated" in captured.err

    def test_search_json_output(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "ERROR", "--top-k", "5", "--json",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["query"] == "ERROR"
        # Same SearchResponse shape the HTTP API returns.
        assert payload["index"] == "hdfs-index"
        assert payload["mode"] == "keyword"
        assert 1 <= payload["num_results"] <= 5
        assert all("ERROR" in doc["text"] for doc in payload["documents"])
        assert "latency" in payload

    def test_search_unknown_index_fails_gracefully(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "no-such-index", "--query", "ERROR",
        ])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "no index named" in captured.err

    def test_search_with_query_cache_flag(self, bucket, capsys):
        _generate_and_build(bucket, capsys)
        exit_code = main([
            "search", "--bucket", bucket, "--index", "hdfs-index",
            "--query", "ERROR", "--top-k", "3", "--query-cache-size", "16",
        ])
        assert exit_code == 0

    def test_build_reports_layers_and_storage(self, bucket, capsys):
        main(["generate", "--bucket", bucket, "--kind", "zipf", "--documents", "300"])
        capsys.readouterr()
        assert main([
            "build", "--bucket", bucket, "--blobs", "corpora/zipf.txt",
            "--index", "zipf-index", "--bins", "256", "--layers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "L = 2" in out
        assert "storage" in out
