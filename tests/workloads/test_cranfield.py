"""Unit tests for the Cranfield-like corpus generator."""

import pytest

from repro.profiling.profiler import profile_documents
from repro.storage.memory import InMemoryObjectStore
from repro.workloads.cranfield import generate_cranfield


@pytest.fixture
def store() -> InMemoryObjectStore:
    return InMemoryObjectStore()


class TestCranfieldGenerator:
    def test_default_shape_tracks_table_ii(self, store):
        corpus = generate_cranfield(store, seed=1)
        profile = profile_documents(corpus.documents)
        # Table II: 1.4e3 documents, 5.3e3 terms, 1.2e5 words.
        assert profile.num_documents == 1398
        assert 2500 <= profile.num_terms <= 5300
        assert 80_000 <= profile.num_words <= 160_000

    def test_scaled_down_generation(self, store):
        corpus = generate_cranfield(
            store, num_documents=100, vocabulary_size=500, words_per_document=40, seed=2
        )
        profile = profile_documents(corpus.documents)
        assert profile.num_documents == 100
        assert profile.num_terms <= 500

    def test_documents_look_like_abstracts_not_log_lines(self, store):
        corpus = generate_cranfield(store, num_documents=50, seed=3)
        profile = profile_documents(corpus.documents)
        assert profile.mean_distinct_words > 30

    def test_deterministic_given_seed(self, store):
        first = generate_cranfield(store, num_documents=30, name="c1", seed=5)
        second = generate_cranfield(store, num_documents=30, name="c2", seed=5)
        assert [d.text for d in first.documents] == [d.text for d in second.documents]

    def test_invalid_dimensions_rejected(self, store):
        with pytest.raises(ValueError):
            generate_cranfield(store, num_documents=0)

    def test_connector_words_are_the_most_common(self, store):
        corpus = generate_cranfield(store, num_documents=200, seed=1)
        profile = profile_documents(corpus.documents)
        top_words = set(profile.most_common_words(10))
        assert top_words & {"the", "of", "and", "in", "for"}
