"""Unit tests for the Cranfield-like corpus generator and its judgments."""

import pytest

from repro.profiling.profiler import profile_documents
from repro.storage.memory import InMemoryObjectStore
from repro.workloads.cranfield import (
    generate_cranfield,
    generate_judged_queries,
    load_qrels,
)


@pytest.fixture
def store() -> InMemoryObjectStore:
    return InMemoryObjectStore()


class TestCranfieldGenerator:
    def test_default_shape_tracks_table_ii(self, store):
        corpus = generate_cranfield(store, seed=1)
        profile = profile_documents(corpus.documents)
        # Table II: 1.4e3 documents, 5.3e3 terms, 1.2e5 words.
        assert profile.num_documents == 1398
        assert 2500 <= profile.num_terms <= 5300
        assert 80_000 <= profile.num_words <= 160_000

    def test_scaled_down_generation(self, store):
        corpus = generate_cranfield(
            store, num_documents=100, vocabulary_size=500, words_per_document=40, seed=2
        )
        profile = profile_documents(corpus.documents)
        assert profile.num_documents == 100
        assert profile.num_terms <= 500

    def test_documents_look_like_abstracts_not_log_lines(self, store):
        corpus = generate_cranfield(store, num_documents=50, seed=3)
        profile = profile_documents(corpus.documents)
        assert profile.mean_distinct_words > 30

    def test_deterministic_given_seed(self, store):
        first = generate_cranfield(store, num_documents=30, name="c1", seed=5)
        second = generate_cranfield(store, num_documents=30, name="c2", seed=5)
        assert [d.text for d in first.documents] == [d.text for d in second.documents]

    def test_invalid_dimensions_rejected(self, store):
        with pytest.raises(ValueError):
            generate_cranfield(store, num_documents=0)

    def test_connector_words_are_the_most_common(self, store):
        corpus = generate_cranfield(store, num_documents=200, seed=1)
        profile = profile_documents(corpus.documents)
        top_words = set(profile.most_common_words(10))
        assert top_words & {"the", "of", "and", "in", "for"}


class TestLoadQrels:
    def test_parses_triples_and_inverts_the_scale(self):
        text = "1 51 1\n1 102 4\n2 12 2\n2 13 3\n"
        qrels = load_qrels(text)
        # Historical codes are lower-is-better; gains are higher-is-better.
        assert qrels == {1: {51: 4, 102: 1}, 2: {12: 3, 13: 2}}

    def test_minus_one_means_top_relevance(self):
        qrels = load_qrels("3 7 -1\n")
        assert qrels == {3: {7: 4}}

    def test_out_of_scale_codes_become_gain_zero(self):
        qrels = load_qrels("1 5 0\n1 6 9\n")
        assert qrels == {1: {5: 0, 6: 0}}

    def test_malformed_lines_are_skipped(self):
        text = "1 51 1\n\nnot numbers here\n2 12\n2 13 2\n"
        qrels = load_qrels(text)
        assert qrels == {1: {51: 4}, 2: {13: 3}}


class TestGenerateJudgedQueries:
    # A scaled-down corpus keeps the quadratic pair scan fast; the df band
    # and match floor scale down with it.
    BAND = dict(min_df=8, max_df=200, min_matches=8)

    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_cranfield(
            InMemoryObjectStore(),
            num_documents=400,
            vocabulary_size=1500,
            words_per_document=60,
            seed=9,
        )

    def test_yields_requested_count_of_two_term_queries(self, corpus):
        queries = generate_judged_queries(corpus, num_queries=10, seed=9, **self.BAND)
        assert len(queries) == 10
        for judged in queries:
            assert len(judged.query.split()) == 2

    def test_judgments_point_at_real_co_occurrences(self, corpus):
        queries = generate_judged_queries(corpus, num_queries=5, seed=9, **self.BAND)
        for judged in queries:
            first, second = judged.query.split()
            assert len(judged.judgments) >= self.BAND["min_matches"]
            for doc_id, gain in judged.judgments.items():
                words = corpus.documents[doc_id].text.split()
                assert first in words and second in words
                assert 1 <= gain <= 4

    def test_gains_track_term_counts(self, corpus):
        (judged,) = generate_judged_queries(corpus, num_queries=1, seed=9, **self.BAND)
        first, second = judged.query.split()
        for doc_id, gain in judged.judgments.items():
            words = corpus.documents[doc_id].text.split()
            total = words.count(first) + words.count(second)
            expected = 4 if total >= 8 else 3 if total >= 5 else 2 if total >= 3 else 1
            assert gain == expected

    def test_deterministic_given_seed(self, corpus):
        first = generate_judged_queries(corpus, num_queries=5, seed=4, **self.BAND)
        second = generate_judged_queries(corpus, num_queries=5, seed=4, **self.BAND)
        assert first == second

    def test_impossible_demands_raise(self, corpus):
        with pytest.raises(ValueError, match="judged queries"):
            generate_judged_queries(corpus, num_queries=5, min_matches=10_000)
