"""Unit tests for the log-corpus generators (HDFS / Windows / Spark)."""

import pytest

from repro.profiling.profiler import profile_documents
from repro.storage.memory import InMemoryObjectStore
from repro.workloads.logs import LOG_SYSTEMS, generate_log_corpus


@pytest.fixture
def store() -> InMemoryObjectStore:
    return InMemoryObjectStore()


class TestLogGenerators:
    @pytest.mark.parametrize("system", sorted(LOG_SYSTEMS))
    def test_generates_requested_number_of_documents(self, store, system):
        corpus = generate_log_corpus(store, system, num_documents=300, seed=1)
        assert corpus.num_documents == 300

    @pytest.mark.parametrize("system", sorted(LOG_SYSTEMS))
    def test_log_lines_are_short_documents(self, store, system):
        corpus = generate_log_corpus(store, system, num_documents=200, seed=1)
        profile = profile_documents(corpus.documents)
        # Log lines: around 8-20 whitespace tokens, never abstract-length.
        assert 4 <= profile.mean_distinct_words <= 25

    def test_vocabulary_mixes_template_and_parameter_terms(self, store):
        corpus = generate_log_corpus(store, "hdfs", num_documents=2000, seed=2)
        profile = profile_documents(corpus.documents)
        # Template words appear in many documents; parameter words in few.
        frequencies = sorted(profile.document_frequencies.values(), reverse=True)
        assert frequencies[0] > 500
        assert frequencies[-1] < 50

    def test_deterministic_given_seed(self, store):
        first = generate_log_corpus(store, "spark", 100, name="s1", seed=7)
        second = generate_log_corpus(store, "spark", 100, name="s2", seed=7)
        assert [d.text for d in first.documents] == [d.text for d in second.documents]

    def test_unknown_system_rejected(self, store):
        with pytest.raises(ValueError):
            generate_log_corpus(store, "kubernetes", 10)

    def test_non_positive_count_rejected(self, store):
        with pytest.raises(ValueError):
            generate_log_corpus(store, "hdfs", 0)

    def test_documents_fetchable_by_range_read(self, store):
        corpus = generate_log_corpus(store, "windows", num_documents=50, seed=4)
        for document in corpus.documents[:10]:
            data = store.get_range(document.blob, document.offset, document.length)
            assert data.decode("utf-8") == document.text
