"""Unit tests for query workload sampling."""

import pytest

from repro.parsing.documents import Document, DocumentRef
from repro.profiling.profiler import profile_documents
from repro.workloads.queries import QueryWorkload, sample_query_words


def _profile():
    texts = ["common word here", "common again", "rare"]
    documents = [Document(DocumentRef("b", i * 50, len(t)), t) for i, t in enumerate(texts)]
    return profile_documents(documents)


class TestSampleQueryWords:
    def test_samples_come_from_vocabulary(self):
        profile = _profile()
        words = sample_query_words(profile, 50, seed=1)
        assert set(words) <= profile.vocabulary

    def test_requested_count(self):
        assert len(sample_query_words(_profile(), 17, seed=2)) == 17

    def test_deterministic_given_seed(self):
        profile = _profile()
        assert sample_query_words(profile, 20, seed=3) == sample_query_words(profile, 20, seed=3)

    def test_occurrence_mode_prefers_frequent_words(self):
        profile = _profile()
        words = sample_query_words(profile, 500, seed=4, mode="occurrence")
        assert words.count("common") > words.count("rare")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            sample_query_words(_profile(), 5, mode="zipfish")

    def test_non_positive_count_rejected(self):
        with pytest.raises(ValueError):
            sample_query_words(_profile(), 0)

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(ValueError):
            sample_query_words(profile_documents([]), 5)


class TestQueryWorkload:
    def test_from_profile(self):
        workload = QueryWorkload.from_profile(_profile(), num_queries=25, top_k=5, seed=1)
        assert len(workload) == 25
        assert workload.top_k == 5

    def test_top_k_validation(self):
        with pytest.raises(ValueError):
            QueryWorkload(queries=("a",), top_k=0)

    def test_requires_queries(self):
        with pytest.raises(ValueError):
            QueryWorkload(queries=())

    def test_top_k_none_allowed(self):
        workload = QueryWorkload(queries=("a", "b"), top_k=None)
        assert workload.top_k is None
