"""Unit tests for the synthetic corpus generators (diag / unif / zipf)."""

import pytest

from repro.profiling.profiler import profile_documents
from repro.storage.memory import InMemoryObjectStore
from repro.workloads.synthetic import (
    SyntheticSpec,
    generate_diag,
    generate_synthetic,
    generate_unif,
    generate_zipf,
)


@pytest.fixture
def store() -> InMemoryObjectStore:
    return InMemoryObjectStore()


class TestSyntheticSpec:
    def test_from_log10(self):
        spec = SyntheticSpec.from_log10(3, 2, 1)
        assert spec == SyntheticSpec(num_documents=1000, num_words=100, words_per_document=10)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(0, 10, 1)
        with pytest.raises(ValueError):
            SyntheticSpec(10, 0, 1)
        with pytest.raises(ValueError):
            SyntheticSpec(10, 10, 0)


class TestDiag:
    def test_each_document_has_exactly_one_unique_word(self, store):
        corpus = generate_diag(store, num_documents=50)
        profile = profile_documents(corpus.documents)
        assert profile.num_documents == 50
        assert profile.num_terms == 50
        assert profile.num_words == 50
        assert all(size == 1 for size in profile.distinct_words_per_document)

    def test_blob_persisted(self, store):
        corpus = generate_diag(store, num_documents=5)
        assert store.exists(corpus.blob_names[0])

    def test_rejects_non_positive_count(self, store):
        with pytest.raises(ValueError):
            generate_diag(store, num_documents=0)


class TestUnif:
    def test_shape_matches_spec(self, store):
        spec = SyntheticSpec(num_documents=200, num_words=50, words_per_document=8)
        corpus = generate_unif(store, spec, seed=1)
        profile = profile_documents(corpus.documents)
        assert profile.num_documents == 200
        assert profile.num_words == 200 * 8
        assert profile.num_terms <= 50

    def test_deterministic_given_seed(self, store):
        spec = SyntheticSpec(50, 20, 5)
        first = generate_unif(store, spec, name="u1", seed=9)
        second = generate_unif(store, spec, name="u2", seed=9)
        assert [d.text for d in first.documents] == [d.text for d in second.documents]

    def test_different_seeds_differ(self, store):
        spec = SyntheticSpec(50, 20, 5)
        first = generate_unif(store, spec, name="u1", seed=1)
        second = generate_unif(store, spec, name="u2", seed=2)
        assert [d.text for d in first.documents] != [d.text for d in second.documents]


class TestZipf:
    def test_head_words_more_frequent_than_tail(self, store):
        spec = SyntheticSpec(num_documents=500, num_words=200, words_per_document=10)
        corpus = generate_zipf(store, spec, seed=3)
        profile = profile_documents(corpus.documents)
        head = profile.word_counts.get("w0000000", 0)
        tail = profile.word_counts.get("w0000199", 0)
        assert head > tail

    def test_under_generates_distinct_words(self, store):
        # The Zipfian head concentrates mass, so not every dictionary word
        # appears (the coupon-collector effect noted in the paper).
        spec = SyntheticSpec(num_documents=200, num_words=1000, words_per_document=5)
        corpus = generate_zipf(store, spec, seed=3)
        profile = profile_documents(corpus.documents)
        assert profile.num_terms < 1000


class TestDispatch:
    def test_generate_synthetic_by_family(self, store):
        spec = SyntheticSpec(20, 10, 3)
        for family in ("diag", "unif", "zipf"):
            corpus = generate_synthetic(store, family, spec, name=f"x-{family}", seed=0)
            assert corpus.num_documents == 20

    def test_unknown_family_rejected(self, store):
        with pytest.raises(ValueError):
            generate_synthetic(store, "exp", SyntheticSpec(10, 10, 1))

    def test_documents_fetchable_by_range_read(self, store):
        spec = SyntheticSpec(30, 10, 4)
        corpus = generate_unif(store, spec, seed=5)
        for document in corpus.documents[:10]:
            data = store.get_range(document.blob, document.offset, document.length)
            assert data.decode("utf-8") == document.text
