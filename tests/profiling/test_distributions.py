"""Unit tests for query-word prior distributions."""

import pytest

from repro.profiling.distributions import (
    QueryWordDistribution,
    occurrence_distribution,
    uniform_distribution,
)


class TestUniformDistribution:
    def test_equal_probabilities(self):
        distribution = uniform_distribution({"a", "b", "c", "d"})
        assert distribution.probability("a") == pytest.approx(0.25)
        assert distribution.total_mass == pytest.approx(1.0)

    def test_accepts_list_input(self):
        distribution = uniform_distribution(["x", "y"])
        assert distribution.probability("y") == pytest.approx(0.5)

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(ValueError):
            uniform_distribution(set())


class TestOccurrenceDistribution:
    def test_probabilities_proportional_to_counts(self):
        distribution = occurrence_distribution({"a": 3, "b": 1})
        assert distribution.probability("a") == pytest.approx(0.75)
        assert distribution.probability("b") == pytest.approx(0.25)

    def test_zero_count_words_are_dropped(self):
        distribution = occurrence_distribution({"a": 2, "b": 0})
        assert distribution.probability("b") == 0.0
        assert distribution.total_mass == pytest.approx(1.0)

    def test_all_zero_counts_rejected(self):
        with pytest.raises(ValueError):
            occurrence_distribution({"a": 0})


class TestQueryWordDistribution:
    def test_unknown_word_has_zero_probability(self):
        distribution = QueryWordDistribution({"a": 1.0})
        assert distribution.probability("zzz") == 0.0

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            QueryWordDistribution({"a": -0.1})

    def test_normalized_rescales_to_one(self):
        distribution = QueryWordDistribution({"a": 2.0, "b": 6.0})
        normalized = distribution.normalized()
        assert normalized.total_mass == pytest.approx(1.0)
        assert normalized.probability("b") == pytest.approx(0.75)

    def test_normalizing_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            QueryWordDistribution({}).normalized()

    def test_sum_squares(self):
        distribution = QueryWordDistribution({"a": 0.5, "b": 0.5})
        assert distribution.sum_squares() == pytest.approx(0.5)
