"""Unit tests for the corpus profiler."""

import math

import pytest

from repro.parsing.documents import Document, DocumentRef
from repro.parsing.tokenizer import SimpleAnalyzer
from repro.profiling.profiler import profile_documents


def _docs(texts: list[str]) -> list[Document]:
    return [
        Document(ref=DocumentRef("blob", index * 100, len(text)), text=text)
        for index, text in enumerate(texts)
    ]


class TestBasicCounts:
    def test_counts_documents_terms_and_words(self):
        profile = profile_documents(_docs(["a b c", "a d", "e"]))
        assert profile.num_documents == 3
        assert profile.num_terms == 5
        assert profile.num_words == 6

    def test_distinct_words_per_document(self):
        profile = profile_documents(_docs(["a a b", "c", "a b c d"]))
        assert profile.distinct_words_per_document == [2, 1, 4]

    def test_document_frequencies(self):
        profile = profile_documents(_docs(["a b", "a c", "a"]))
        assert profile.document_frequencies == {"a": 3, "b": 1, "c": 1}

    def test_word_counts_count_occurrences(self):
        profile = profile_documents(_docs(["a a b", "a"]))
        assert profile.word_counts == {"a": 3, "b": 1}

    def test_empty_corpus(self):
        profile = profile_documents([])
        assert profile.num_documents == 0
        assert profile.num_terms == 0
        assert profile.num_words == 0
        assert profile.max_distinct_words == 0
        assert profile.mean_distinct_words == 0.0

    def test_custom_tokenizer_is_used(self):
        profile = profile_documents(_docs(["Error, ERROR!"]), tokenizer=SimpleAnalyzer())
        assert profile.document_frequencies == {"error": 1}

    def test_vocabulary_property(self):
        profile = profile_documents(_docs(["x y", "z"]))
        assert profile.vocabulary == {"x", "y", "z"}

    def test_max_and_mean_distinct_words(self):
        profile = profile_documents(_docs(["a b c", "a", "a b"]))
        assert profile.max_distinct_words == 3
        assert profile.mean_distinct_words == pytest.approx(2.0)


class TestDerivedStatistics:
    def test_most_common_words_ranked_by_document_frequency(self):
        profile = profile_documents(_docs(["a b", "a b", "a c", "a"]))
        assert profile.most_common_words(2) == ["a", "b"]

    def test_most_common_words_tie_broken_alphabetically(self):
        profile = profile_documents(_docs(["z y", "z y"]))
        assert profile.most_common_words(2) == ["y", "z"]

    def test_most_common_words_zero_or_negative_count(self):
        profile = profile_documents(_docs(["a b"]))
        assert profile.most_common_words(0) == []
        assert profile.most_common_words(-3) == []

    def test_irrelevance_coefficients_uniform_prior(self):
        # c_i = (|W| - |W_i|) / |W| under the uniform query prior.
        profile = profile_documents(_docs(["a b", "c"]))
        assert profile.irrelevance_coefficients() == pytest.approx([1 / 3, 2 / 3])

    def test_sigma_x_uniform_prior_matches_formula(self):
        profile = profile_documents(_docs(["a b", "c"]))
        expected = math.sqrt((3 - 2) / 9 + (3 - 1) / 9)
        assert profile.sigma_x() == pytest.approx(expected)

    def test_sigma_x_diag_corpus_is_about_one(self):
        # diag corpus: n documents, n words, one word per document.
        # sigma_x^2 = n * (n-1)/n^2 -> ~1 for large n (Table II row diag).
        texts = [f"w{i}" for i in range(500)]
        profile = profile_documents(_docs(texts))
        assert profile.sigma_x() == pytest.approx(1.0, abs=0.01)

    def test_uniform_query_distribution_sums_to_one(self):
        profile = profile_documents(_docs(["a b c", "d"]))
        distribution = profile.uniform_query_distribution()
        assert distribution.total_mass == pytest.approx(1.0)
        assert distribution.probability("a") == pytest.approx(0.25)

    def test_sigma_x_empty_corpus_is_zero(self):
        assert profile_documents([]).sigma_x() == 0.0
