"""Tests for the optional listing manifest (plain-HTTP catalog discovery)."""

from __future__ import annotations

import functools
import http.server
import threading

import pytest

from repro.core.config import SketchConfig
from repro.service import AirphantService, SearchRequest, ServiceConfig
from repro.storage.httpstore import HTTPRangeStore
from repro.storage.listing import (
    LISTING_BLOB,
    decode_listing,
    encode_listing,
    write_listing,
)
from repro.storage.local import LocalObjectStore
from repro.storage.memory import InMemoryObjectStore


class TestListingManifest:
    def test_round_trip(self):
        blobs = {"idx/header.json": 120, "corpus/a.txt": 44}
        assert decode_listing(encode_listing(blobs)) == blobs

    def test_decode_rejects_unrelated_manifests(self):
        with pytest.raises(ValueError):
            decode_listing(b'{"base_index": "idx", "delta_indexes": []}')
        with pytest.raises(ValueError):
            decode_listing(b'{"format": "airphant-listing", "blobs": [1]}')

    def test_write_listing_enumerates_and_never_lists_itself(self):
        store = InMemoryObjectStore()
        store.put("a.txt", b"xx")
        store.put("dir/b.txt", b"yyy")
        listed = write_listing(store)
        assert listed == {"a.txt": 2, "dir/b.txt": 3}
        # A refresh over the written manifest stays stable.
        assert write_listing(store) == listed
        assert decode_listing(store.get(LISTING_BLOB)) == listed


@pytest.fixture
def exported_bucket(tmp_path):
    """A built index in a local bucket directory, with a listing manifest."""
    store = LocalObjectStore(tmp_path)
    store.put("corpus/a.txt", b"error disk full\ninfo service ok\n")
    service = AirphantService(store, ServiceConfig(ingest_interval_s=0))
    service.build_index("idx", ["corpus/a.txt"], sketch_config=SketchConfig(num_bins=32))
    service.close()
    write_listing(store)
    return tmp_path


@pytest.fixture
def static_server(exported_bucket):
    """The bucket served by the stdlib static file server (no Range, no LIST)."""
    handler = functools.partial(
        http.server.SimpleHTTPRequestHandler, directory=str(exported_bucket)
    )
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestHTTPListing:
    def test_list_blobs_and_total_bytes_from_the_manifest(self, static_server):
        store = HTTPRangeStore(static_server)
        blobs = store.list_blobs()
        assert "idx/header.json" in blobs
        assert "corpus/a.txt" in blobs
        assert LISTING_BLOB not in blobs
        assert store.list_blobs(prefix="idx/") == [
            name for name in blobs if name.startswith("idx/")
        ]
        assert store.total_bytes(prefix="corpus/") == len(
            b"error disk full\ninfo service ok\n"
        )

    def test_no_manifest_degrades_to_empty_listing(self, tmp_path):
        handler = functools.partial(
            http.server.SimpleHTTPRequestHandler, directory=str(tmp_path)
        )
        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            store = HTTPRangeStore(f"http://127.0.0.1:{server.server_address[1]}")
            assert store.list_blobs() == []
            assert store.total_bytes() == 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_catalog_discovery_and_search_against_a_static_server(self, static_server):
        # The ROADMAP scenario: `python -m http.server` on an exported
        # bucket, full catalog discovery plus search through the service.
        service = AirphantService.from_uri(
            static_server, ServiceConfig(ingest_interval_s=0)
        )
        assert [info.name for info in service.list_indexes()] == ["idx"]
        info = service.index_info("idx")
        assert info.num_documents == 2
        assert info.storage_bytes > 0  # sizes come from the manifest
        result = service.execute(SearchRequest(query="error", index="idx"))
        assert [d.text for d in result.documents] == ["error disk full"]
        service.close()


class TestCLIListingFlag:
    def test_build_listing_writes_the_manifest(self, tmp_path, capsys):
        from repro.cli import main

        bucket = tmp_path / "bucket"
        bucket.mkdir()
        (bucket / "corpus").mkdir()
        (bucket / "corpus" / "a.txt").write_bytes(b"error one\ninfo two\n")
        code = main(
            [
                "build",
                "--bucket",
                str(bucket),
                "--blobs",
                "corpus/a.txt",
                "--index",
                "idx",
                "--bins",
                "64",
                "--listing",
            ]
        )
        assert code == 0
        assert "listing manifest" in capsys.readouterr().out
        listed = decode_listing((bucket / LISTING_BLOB).read_bytes())
        assert "idx/header.json" in listed
