"""Unit tests for the parallel fetcher (including hedged requests)."""

import pytest

from repro.storage.base import RangeRead
from repro.storage.latency import AffineLatencyModel
from repro.storage.memory import InMemoryObjectStore
from repro.storage.parallel import ParallelFetcher
from repro.storage.simulated import SimulatedCloudStore


@pytest.fixture
def store() -> SimulatedCloudStore:
    model = AffineLatencyModel(first_byte_ms=50.0, jitter_sigma=0.0)
    store = SimulatedCloudStore(latency_model=model)
    store.put("blob", bytes(range(256)) * 16)
    return store


class TestFetch:
    def test_payloads_match_requests(self, store):
        fetcher = ParallelFetcher(store)
        requests = [RangeRead("blob", 0, 4), RangeRead("blob", 4, 4)]
        result = fetcher.fetch(requests)
        assert result.payloads == [bytes([0, 1, 2, 3]), bytes([4, 5, 6, 7])]

    def test_empty_fetch(self, store):
        fetcher = ParallelFetcher(store)
        result = fetcher.fetch([])
        assert result.payloads == []
        assert result.total_ms == 0.0

    def test_batch_latency_is_one_round_trip(self, store):
        fetcher = ParallelFetcher(store, max_concurrency=32)
        requests = [RangeRead("blob", i, 8) for i in range(16)]
        result = fetcher.fetch(requests)
        assert result.batch.wait_ms == pytest.approx(50.0)

    def test_invalid_concurrency_rejected(self, store):
        with pytest.raises(ValueError):
            ParallelFetcher(store, max_concurrency=0)

    def test_negative_hedge_rejected(self, store):
        with pytest.raises(ValueError):
            ParallelFetcher(store, hedge_extra=-1)

    def test_plain_backend_uses_thread_pool(self):
        backend = InMemoryObjectStore()
        backend.put("b", b"0123456789")
        fetcher = ParallelFetcher(backend)
        result = fetcher.fetch([RangeRead("b", 0, 5), RangeRead("b", 5, 5)])
        assert result.payloads == [b"01234", b"56789"]
        assert result.total_ms == 0.0


class TestHedgedFetch:
    def _straggler_store(self) -> SimulatedCloudStore:
        model = AffineLatencyModel(
            first_byte_ms=50.0,
            jitter_sigma=0.0,
            straggler_probability=0.5,
            straggler_multiplier=20.0,
            seed=9,
        )
        store = SimulatedCloudStore(latency_model=model)
        store.put("blob", bytes(1000))
        return store

    def test_hedged_fetch_drops_slowest_requests(self):
        store = self._straggler_store()
        fetcher = ParallelFetcher(store)
        requests = [RangeRead("blob", i * 10, 10) for i in range(6)]
        result = fetcher.fetch_hedged(requests, required=4)
        dropped = sum(1 for payload in result.payloads if payload is None)
        assert dropped == 2
        assert len(result.batch.requests) == 4

    def test_hedged_latency_not_worse_than_waiting_for_all(self):
        store = self._straggler_store()
        fetcher = ParallelFetcher(store)
        requests = [RangeRead("blob", i * 10, 10) for i in range(6)]
        hedged = fetcher.fetch_hedged(requests, required=3)
        full_store = self._straggler_store()
        full = ParallelFetcher(full_store).fetch(requests)
        assert hedged.total_ms <= full.total_ms + 1e-9

    def test_required_larger_than_requests_keeps_everything(self, store):
        fetcher = ParallelFetcher(store)
        requests = [RangeRead("blob", 0, 4), RangeRead("blob", 4, 4)]
        result = fetcher.fetch_hedged(requests, required=10)
        assert all(payload is not None for payload in result.payloads)

    def test_required_must_be_positive(self, store):
        fetcher = ParallelFetcher(store)
        with pytest.raises(ValueError):
            fetcher.fetch_hedged([RangeRead("blob", 0, 1)], required=0)

    def test_hedged_on_plain_backend_falls_back_to_full_fetch(self):
        backend = InMemoryObjectStore()
        backend.put("b", b"0123456789")
        fetcher = ParallelFetcher(backend)
        result = fetcher.fetch_hedged([RangeRead("b", 0, 5), RangeRead("b", 5, 5)], required=1)
        assert result.payloads == [b"01234", b"56789"]
