"""Unit tests for the parallel fetcher (including hedged requests)."""

import os
import threading

import pytest

from repro.storage.base import RangeRead
from repro.storage.latency import AffineLatencyModel
from repro.storage.memory import InMemoryObjectStore
from repro.storage.parallel import ParallelFetcher
from repro.storage.simulated import SimulatedCloudStore


@pytest.fixture
def store() -> SimulatedCloudStore:
    model = AffineLatencyModel(first_byte_ms=50.0, jitter_sigma=0.0)
    store = SimulatedCloudStore(latency_model=model)
    store.put("blob", bytes(range(256)) * 16)
    return store


class TestFetch:
    def test_payloads_match_requests(self, store):
        fetcher = ParallelFetcher(store)
        requests = [RangeRead("blob", 0, 4), RangeRead("blob", 4, 4)]
        result = fetcher.fetch(requests)
        assert result.payloads == [bytes([0, 1, 2, 3]), bytes([4, 5, 6, 7])]

    def test_empty_fetch(self, store):
        fetcher = ParallelFetcher(store)
        result = fetcher.fetch([])
        assert result.payloads == []
        assert result.total_ms == 0.0

    def test_batch_latency_is_one_round_trip(self, store):
        fetcher = ParallelFetcher(store, max_concurrency=32)
        requests = [RangeRead("blob", i, 8) for i in range(16)]
        result = fetcher.fetch(requests)
        assert result.batch.wait_ms == pytest.approx(50.0)

    def test_invalid_concurrency_rejected(self, store):
        with pytest.raises(ValueError):
            ParallelFetcher(store, max_concurrency=0)

    def test_negative_hedge_rejected(self, store):
        with pytest.raises(ValueError):
            ParallelFetcher(store, hedge_extra=-1)

    def test_plain_backend_uses_thread_pool(self):
        backend = InMemoryObjectStore()
        backend.put("b", b"0123456789")
        fetcher = ParallelFetcher(backend)
        result = fetcher.fetch([RangeRead("b", 0, 5), RangeRead("b", 5, 5)])
        assert result.payloads == [b"01234", b"56789"]
        assert result.total_ms == 0.0


class TestHedgedFetch:
    def _straggler_store(self) -> SimulatedCloudStore:
        model = AffineLatencyModel(
            first_byte_ms=50.0,
            jitter_sigma=0.0,
            straggler_probability=0.5,
            straggler_multiplier=20.0,
            seed=9,
        )
        store = SimulatedCloudStore(latency_model=model)
        store.put("blob", bytes(1000))
        return store

    def test_hedged_fetch_drops_slowest_requests(self):
        store = self._straggler_store()
        fetcher = ParallelFetcher(store)
        requests = [RangeRead("blob", i * 10, 10) for i in range(6)]
        result = fetcher.fetch_hedged(requests, required=4)
        dropped = sum(1 for payload in result.payloads if payload is None)
        assert dropped == 2
        assert len(result.batch.requests) == 4

    def test_hedged_latency_not_worse_than_waiting_for_all(self):
        store = self._straggler_store()
        fetcher = ParallelFetcher(store)
        requests = [RangeRead("blob", i * 10, 10) for i in range(6)]
        hedged = fetcher.fetch_hedged(requests, required=3)
        full_store = self._straggler_store()
        full = ParallelFetcher(full_store).fetch(requests)
        assert hedged.total_ms <= full.total_ms + 1e-9

    def test_required_larger_than_requests_keeps_everything(self, store):
        fetcher = ParallelFetcher(store)
        requests = [RangeRead("blob", 0, 4), RangeRead("blob", 4, 4)]
        result = fetcher.fetch_hedged(requests, required=10)
        assert all(payload is not None for payload in result.payloads)

    def test_required_must_be_positive(self, store):
        fetcher = ParallelFetcher(store)
        with pytest.raises(ValueError):
            fetcher.fetch_hedged([RangeRead("blob", 0, 1)], required=0)

    def test_hedged_on_plain_backend_falls_back_to_full_fetch(self):
        backend = InMemoryObjectStore()
        backend.put("b", b"0123456789")
        fetcher = ParallelFetcher(backend)
        result = fetcher.fetch_hedged([RangeRead("b", 0, 5), RangeRead("b", 5, 5)], required=1)
        assert result.payloads == [b"01234", b"56789"]


def _fetch_worker_threads() -> list[threading.Thread]:
    return [
        thread
        for thread in threading.enumerate()
        if thread.name.startswith("airphant-fetch")
    ]


def _assert_no_fetch_threads(timeout: float = 3.0) -> None:
    """Assert all fetch workers are gone, tolerating asynchronous drains.

    Unrelated fetchers leaked earlier in the test session may sit in
    reference cycles (store → pipeline → fetcher → store) that only the
    cyclic GC breaks, and their finalizers shut pools down with
    ``wait=False`` — so force collection and give those threads a moment.
    """
    import gc
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        gc.collect()
        if not _fetch_worker_threads():
            return
        time.sleep(0.05)
    assert not _fetch_worker_threads()


class TestLifecycle:
    def _plain_fetcher(self) -> ParallelFetcher:
        backend = InMemoryObjectStore()
        backend.put("b", b"0123456789")
        return ParallelFetcher(backend, max_concurrency=2)

    def test_double_close_is_a_noop(self):
        fetcher = self._plain_fetcher()
        fetcher.fetch([RangeRead("b", 0, 5)])
        fetcher.close()
        fetcher.close()  # second close must not raise or hang
        # ...and close does not poison the fetcher: a fresh pool appears.
        assert fetcher.fetch([RangeRead("b", 0, 5)]).payloads == [b"01234"]
        fetcher.close()

    def test_close_before_any_fetch(self):
        self._plain_fetcher().close()

    def test_close_joins_worker_threads(self):
        fetcher = self._plain_fetcher()
        fetcher.fetch([RangeRead("b", 0, 5)])
        assert _fetch_worker_threads()
        fetcher.close()
        _assert_no_fetch_threads()

    def test_close_after_fork_drops_inherited_pool_without_shutdown(self, monkeypatch):
        """Simulated fork: the recorded owner pid no longer matches ours."""
        fetcher = self._plain_fetcher()
        fetcher.fetch([RangeRead("b", 0, 5)])
        pool = fetcher._pool
        assert pool is not None
        monkeypatch.setattr(fetcher, "_pool_pid", os.getpid() + 1)
        fetcher.close()
        # The parent's pool must not have been shut down from the "child".
        assert not pool._shutdown
        assert fetcher._pool is None
        pool.shutdown(wait=True)

    def test_fetch_after_fork_builds_a_fresh_pool(self, monkeypatch):
        fetcher = self._plain_fetcher()
        fetcher.fetch([RangeRead("b", 0, 5)])
        inherited = fetcher._pool
        monkeypatch.setattr(fetcher, "_pool_pid", os.getpid() + 1)
        result = fetcher.fetch([RangeRead("b", 2, 3)])
        assert result.payloads == [b"234"]
        assert fetcher._pool is not inherited
        assert not inherited._shutdown  # parent's pool untouched
        fetcher.close()
        inherited.shutdown(wait=True)

    def test_service_close_leaves_no_fetch_threads(self, tmp_path):
        """AirphantService.close() must close catalog searchers' fetchers
        (including sharded members) and the store's read_many pipeline."""
        from repro.core.config import SketchConfig
        from repro.service import AirphantService, SearchRequest
        from repro.storage.local import LocalObjectStore

        store = LocalObjectStore(tmp_path / "bucket")
        store.put("corpora/logs.txt", b"error one\ninfo two\nerror three\nwarn four")
        service = AirphantService(store)
        service.build_index(
            "logs",
            ["corpora/logs.txt"],
            sketch_config=SketchConfig(num_bins=64),
            num_shards=2,
        )
        assert service.search(SearchRequest(query="error", index="logs")).num_results == 2
        # Exercise the store-level read_many pipeline too (shard headers).
        service.index_info("logs")
        assert _fetch_worker_threads()
        assert store.__dict__.get("_read_many_pipeline") is not None
        service.close()
        # Direct evidence close() did the work (not the garbage collector):
        # the store's lazy pipeline is gone and no catalog searcher remains.
        assert store.__dict__.get("_read_many_pipeline") is None
        assert not service.catalog.is_open("logs")
        _assert_no_fetch_threads()
        # Close is non-poisoning: querying again just reopens everything.
        assert service.search(SearchRequest(query="error", index="logs")).num_results == 2
        service.close()
        _assert_no_fetch_threads()


class TestScaleConcurrency:
    def test_raises_the_ceiling(self, store):
        fetcher = ParallelFetcher(store, max_concurrency=4)
        fetcher.scale_concurrency(16)
        assert fetcher.max_concurrency == 16

    def test_never_shrinks(self, store):
        fetcher = ParallelFetcher(store, max_concurrency=16)
        fetcher.scale_concurrency(4)
        assert fetcher.max_concurrency == 16

    def test_existing_pool_is_replaced(self):
        backend = InMemoryObjectStore()
        backend.put("a", b"aa")
        backend.put("b", b"bb")
        fetcher = ParallelFetcher(backend, max_concurrency=2)
        fetcher.fetch([RangeRead("a")])  # builds the 2-wide pool
        fetcher.scale_concurrency(8)
        result = fetcher.fetch([RangeRead("a"), RangeRead("b")])
        assert result.payloads == [b"aa", b"bb"]
        assert fetcher.max_concurrency == 8
        fetcher.close()

    def test_scaled_batch_is_one_concurrency_wave(self, store):
        fetcher = ParallelFetcher(store, max_concurrency=2)
        fetcher.scale_concurrency(64)
        requests = [RangeRead("blob", i, 8) for i in range(48)]
        result = fetcher.fetch(requests)
        # One wave: the batch charges a single 50ms first-byte wait, where
        # the unscaled 2-wide pool would stack 24 of them.
        assert result.batch.wait_ms == pytest.approx(50.0)
