"""Unit tests for the simulated cloud store."""

import pytest

from repro.storage.base import RangeRead
from repro.storage.latency import AffineLatencyModel
from repro.storage.memory import InMemoryObjectStore
from repro.storage.simulated import SimulatedCloudStore


@pytest.fixture
def store() -> SimulatedCloudStore:
    model = AffineLatencyModel(first_byte_ms=50.0, jitter_sigma=0.0, bandwidth_mb_per_s=1.0)
    return SimulatedCloudStore(latency_model=model)


class TestDataPassThrough:
    def test_put_get_roundtrip(self, store):
        store.put("a", b"payload")
        assert store.get("a") == b"payload"

    def test_get_range_matches_backend(self, store):
        store.put("a", b"0123456789")
        assert store.get_range("a", 2, 3) == b"234"

    def test_size_exists_delete_list(self, store):
        store.put("x/a", b"123")
        assert store.size("x/a") == 3
        assert store.exists("x/a")
        assert store.list_blobs("x/") == ["x/a"]
        store.delete("x/a")
        assert not store.exists("x/a")

    def test_wraps_existing_backend(self):
        backend = InMemoryObjectStore()
        backend.put("pre", b"existing")
        store = SimulatedCloudStore(backend=backend)
        assert store.get("pre") == b"existing"

    def test_with_latency_model_shares_backend(self, store):
        store.put("a", b"shared")
        other = store.with_latency_model(AffineLatencyModel(first_byte_ms=500.0, jitter_sigma=0.0))
        assert other.get("a") == b"shared"
        assert other.latency_model.first_byte_ms == 500.0


class TestTiming:
    def test_timed_get_charges_first_byte_plus_transfer(self, store):
        store.put("a", b"x" * (1024 * 1024))
        _, record = store.timed_get("a")
        assert record.wait_ms == pytest.approx(50.0)
        assert record.download_ms == pytest.approx(1000.0, rel=0.01)

    def test_timed_get_range_charges_only_fetched_bytes(self, store):
        store.put("a", b"x" * (2 * 1024 * 1024))
        _, record = store.timed_get_range("a", 0, 1024)
        assert record.nbytes == 1024
        assert record.download_ms < 2.0

    def test_sequential_reads_accumulate_latency(self, store):
        store.put("a", b"x" * 4096)
        requests = [RangeRead("a", i * 10, 10) for i in range(5)]
        _, records = store.timed_sequential(requests)
        assert len(records) == 5
        total = sum(record.total_ms for record in records)
        assert total >= 5 * 50.0

    def test_batch_wait_is_single_round_trip(self, store):
        store.put("a", b"x" * 4096)
        requests = [RangeRead("a", i * 10, 10) for i in range(5)]
        _, batch = store.timed_batch(requests, max_concurrency=32)
        assert batch.wait_ms == pytest.approx(50.0)
        assert len(batch.requests) == 5

    def test_batch_beyond_concurrency_runs_in_waves(self, store):
        store.put("a", b"x" * 4096)
        requests = [RangeRead("a", i, 1) for i in range(10)]
        _, batch = store.timed_batch(requests, max_concurrency=4)
        # 10 requests at concurrency 4 -> 3 waves of first-byte latency.
        assert batch.wait_ms == pytest.approx(150.0)

    def test_batch_is_faster_than_sequential(self, store):
        store.put("a", b"x" * 4096)
        requests = [RangeRead("a", i * 100, 100) for i in range(8)]
        _, sequential_records = store.timed_sequential(requests)
        _, batch = store.timed_batch(requests)
        assert batch.total_ms < sum(record.total_ms for record in sequential_records)

    def test_batch_invalid_concurrency_rejected(self, store):
        store.put("a", b"1234")
        with pytest.raises(ValueError):
            store.timed_batch([RangeRead("a", 0, 1)], max_concurrency=0)

    def test_empty_batch(self, store):
        payloads, batch = store.timed_batch([])
        assert payloads == []
        assert batch.total_ms == 0.0


class TestMetricsRecording:
    def test_requests_are_recorded(self, store):
        store.put("a", b"12345")
        store.get("a")
        store.get_range("a", 0, 2)
        assert store.metrics.request_count == 2
        assert store.metrics.round_trips == 2
        assert store.metrics.total_bytes == 7

    def test_batch_counts_one_round_trip(self, store):
        store.put("a", b"x" * 100)
        store.timed_batch([RangeRead("a", 0, 10), RangeRead("a", 10, 10)])
        assert store.metrics.round_trips == 1
        assert store.metrics.request_count == 2

    def test_metrics_reset(self, store):
        store.put("a", b"abc")
        store.get("a")
        store.metrics.reset()
        assert store.metrics.request_count == 0
        assert store.metrics.total_bytes == 0

    def test_recording_can_be_disabled(self):
        store = SimulatedCloudStore(record_metrics=False)
        store.put("a", b"abc")
        store.get("a")
        assert store.metrics.request_count == 0

    def test_put_does_not_count_as_request(self, store):
        store.put("a", b"abc")
        assert store.metrics.request_count == 0
