"""Unit tests for the store-URI registry (scheme resolution + errors)."""

import pytest

from repro.storage.httpstore import HTTPRangeStore
from repro.storage.latency import REGION_PROFILES
from repro.storage.local import LocalObjectStore
from repro.storage.memory import InMemoryObjectStore
from repro.storage.registry import (
    StoreURIError,
    open_store,
    register_scheme,
    registered_schemes,
    reset_named_memory_stores,
)
from repro.storage.s3 import S3ObjectStore
from repro.storage.simulated import SimulatedCloudStore


class TestSchemes:
    def test_builtin_schemes_registered(self):
        schemes = registered_schemes()
        for scheme in ("mem", "file", "sim", "http", "https", "s3"):
            assert scheme in schemes

    def test_mem_uri_returns_fresh_memory_store(self):
        first, second = open_store("mem://"), open_store("mem://")
        assert isinstance(first, InMemoryObjectStore)
        assert first is not second

    def test_named_mem_uri_is_process_shared(self):
        reset_named_memory_stores()
        try:
            first = open_store("mem://shared")
            first.put("blob", b"bytes")
            second = open_store("mem://shared")
            assert second is first
            assert second.get("blob") == b"bytes"
            assert open_store("mem://other") is not first
        finally:
            reset_named_memory_stores()

    def test_file_uri_and_bare_path_resolve_to_local_store(self, tmp_path):
        by_uri = open_store(f"file://{tmp_path}/bucket-a")
        bare = open_store(str(tmp_path / "bucket-b"))
        assert isinstance(by_uri, LocalObjectStore)
        assert isinstance(bare, LocalObjectStore)
        by_uri.put("x", b"1")
        assert (tmp_path / "bucket-a" / "x").read_bytes() == b"1"

    def test_sim_uri_defaults_to_memory_backend(self):
        store = open_store("sim://")
        assert isinstance(store, SimulatedCloudStore)
        assert isinstance(store.backend, InMemoryObjectStore)

    def test_sim_uri_with_path_and_latency_parameters(self, tmp_path):
        uri = (
            f"sim://{tmp_path}/bucket"
            "?region=asia-southeast1&straggler_probability=0.25&first_byte_ms=80&seed=5"
        )
        store = open_store(uri)
        assert isinstance(store, SimulatedCloudStore)
        assert isinstance(store.backend, LocalObjectStore)
        model = store.latency_model
        assert model.region == REGION_PROFILES["asia-southeast1"]
        assert model.straggler_probability == 0.25
        assert model.first_byte_ms == 80.0
        assert model.seed == 5

    def test_http_uri_resolves_with_timeout(self):
        store = open_store("http://127.0.0.1:9000/exports?timeout_s=2.5")
        assert isinstance(store, HTTPRangeStore)
        assert store.base_url == "http://127.0.0.1:9000/exports"
        assert store.timeout_s == 2.5

    def test_s3_uri_resolves_bucket_prefix_endpoint(self):
        store = open_store("s3://indexes/prod?endpoint=http://127.0.0.1:9000&region=eu-west-1")
        assert isinstance(store, S3ObjectStore)
        assert store.bucket == "indexes"
        assert store.prefix == "prod"
        assert store.blob_url("a/b").startswith("http://127.0.0.1:9000/indexes/prod/a/b")


class TestErrors:
    @pytest.mark.parametrize(
        "uri",
        [
            "gs://bucket",  # unknown scheme
            "ftp://host/x",
            "://no-scheme",
            "",
            "   ",
            "s3://",  # missing bucket
            "http://",  # missing host
            "file://",  # missing path
            "mem://name/extra-path",
            "sim://?nope=1",  # unknown parameter
            "sim://?region=mars",  # unknown region
            "sim://?first_byte_ms=fast",  # non-numeric
            "sim://?seed=1&seed=2",  # duplicate parameter
            "http://h?timeout_s=soon",
            "s3://b?endpoint=ldap://x",
        ],
    )
    def test_malformed_or_unknown_uris_raise_typed_error(self, uri):
        with pytest.raises(StoreURIError):
            open_store(uri)

    def test_unknown_scheme_error_names_known_schemes(self):
        with pytest.raises(StoreURIError, match="mem://"):
            open_store("gopher://x")

    def test_register_scheme_conflict_and_replace(self):
        with pytest.raises(StoreURIError):
            register_scheme("mem", lambda parts, params: InMemoryObjectStore())
        # replace=True is allowed; restore the builtin right away.
        from repro.storage.registry import _make_memory

        register_scheme("mem", _make_memory, replace=True)

    def test_register_scheme_validates_name(self):
        with pytest.raises(StoreURIError):
            register_scheme("", lambda parts, params: InMemoryObjectStore())
        with pytest.raises(StoreURIError):
            register_scheme("my scheme", lambda parts, params: InMemoryObjectStore())

    def test_custom_scheme_round_trip(self):
        sentinel = InMemoryObjectStore()
        register_scheme("testonly", lambda parts, params: sentinel)
        try:
            assert open_store("testonly://anything") is sentinel
        finally:
            import repro.storage.registry as registry

            with registry._registry_lock:
                registry._factories.pop("testonly", None)
