"""Unit tests for the affine latency model (Figure 2 behaviour)."""

import pytest

from repro.storage.latency import REGION_PROFILES, AffineLatencyModel, RegionProfile


class TestAffineShape:
    def test_small_fetches_cost_roughly_the_first_byte_latency(self):
        model = AffineLatencyModel(first_byte_ms=50.0, jitter_sigma=0.0)
        assert model.expected_latency_ms(1024) == pytest.approx(50.0, rel=0.01)

    def test_latency_flat_until_bandwidth_dominates(self):
        # The paper's Figure 2: latency stays ~constant until ~2 MB then grows linearly.
        model = AffineLatencyModel(first_byte_ms=50.0, bandwidth_mb_per_s=40.0, jitter_sigma=0.0)
        small = model.expected_latency_ms(4 * 1024)
        medium = model.expected_latency_ms(1024 * 1024)
        large = model.expected_latency_ms(64 * 1024 * 1024)
        assert medium < 2 * small
        assert large > 10 * small

    def test_transfer_time_is_linear_in_bytes(self):
        model = AffineLatencyModel(bandwidth_mb_per_s=10.0)
        assert model.transfer_ms(20 * 1024 * 1024) == pytest.approx(2 * model.transfer_ms(10 * 1024 * 1024))

    def test_transfer_time_of_zero_bytes_is_zero(self):
        model = AffineLatencyModel()
        assert model.transfer_ms(0) == 0.0

    def test_sample_first_byte_without_jitter_is_deterministic(self):
        model = AffineLatencyModel(first_byte_ms=42.0, jitter_sigma=0.0)
        samples = {model.sample_first_byte_ms() for _ in range(10)}
        assert samples == {42.0}

    def test_jitter_produces_variation_but_stays_positive(self):
        model = AffineLatencyModel(first_byte_ms=50.0, jitter_sigma=0.3, seed=3)
        samples = [model.sample_first_byte_ms() for _ in range(200)]
        assert len(set(samples)) > 100
        assert all(sample > 0 for sample in samples)

    def test_same_seed_reproduces_samples(self):
        first = AffineLatencyModel(jitter_sigma=0.2, seed=11)
        second = AffineLatencyModel(jitter_sigma=0.2, seed=11)
        assert [first.sample_first_byte_ms() for _ in range(20)] == [
            second.sample_first_byte_ms() for _ in range(20)
        ]


class TestStragglers:
    def test_stragglers_inflate_some_requests(self):
        model = AffineLatencyModel(
            first_byte_ms=50.0,
            jitter_sigma=0.0,
            straggler_probability=0.2,
            straggler_multiplier=10.0,
            seed=5,
        )
        samples = [model.sample_first_byte_ms() for _ in range(500)]
        slow = [sample for sample in samples if sample > 400]
        assert 0 < len(slow) < len(samples)

    def test_zero_probability_never_straggles(self):
        model = AffineLatencyModel(
            first_byte_ms=50.0, jitter_sigma=0.0, straggler_probability=0.0
        )
        assert max(model.sample_first_byte_ms() for _ in range(100)) == 50.0

    def test_invalid_straggler_probability_rejected(self):
        with pytest.raises(ValueError):
            AffineLatencyModel(straggler_probability=1.5)


class TestRegions:
    def test_known_regions_exist(self):
        assert set(REGION_PROFILES) == {"us-central1", "europe-west2", "asia-southeast1"}

    def test_cross_region_latency_scales_with_multiplier(self):
        base = AffineLatencyModel(first_byte_ms=50.0, jitter_sigma=0.0)
        europe = base.with_region("europe-west2")
        asia = base.with_region("asia-southeast1")
        assert europe.expected_latency_ms(0) == pytest.approx(3 * base.expected_latency_ms(0))
        assert asia.expected_latency_ms(0) > europe.expected_latency_ms(0)

    def test_with_region_accepts_custom_profile(self):
        base = AffineLatencyModel(first_byte_ms=10.0, jitter_sigma=0.0)
        custom = base.with_region(RegionProfile("moon", 100.0))
        assert custom.expected_latency_ms(0) == pytest.approx(1000.0)

    def test_region_string_accepted_in_constructor(self):
        model = AffineLatencyModel(region="asia-southeast1", jitter_sigma=0.0)
        assert model.region.name == "asia-southeast1"

    def test_invalid_region_multiplier_rejected(self):
        with pytest.raises(ValueError):
            RegionProfile("bad", 0.0)


class TestBatchTransfer:
    def test_empty_batch_costs_nothing(self):
        assert AffineLatencyModel().batch_transfer_ms([]) == 0.0

    def test_batch_limited_by_slowest_request(self):
        model = AffineLatencyModel(bandwidth_mb_per_s=10.0, aggregate_bandwidth_mb_per_s=1000.0)
        sizes = [1024, 10 * 1024 * 1024, 2048]
        assert model.batch_transfer_ms(sizes) == pytest.approx(model.transfer_ms(10 * 1024 * 1024))

    def test_batch_limited_by_aggregate_bandwidth_when_many_large_requests(self):
        model = AffineLatencyModel(bandwidth_mb_per_s=100.0, aggregate_bandwidth_mb_per_s=100.0)
        sizes = [10 * 1024 * 1024] * 8
        per_request = model.transfer_ms(10 * 1024 * 1024)
        assert model.batch_transfer_ms(sizes) == pytest.approx(8 * per_request)

    def test_validation_of_bandwidths(self):
        with pytest.raises(ValueError):
            AffineLatencyModel(bandwidth_mb_per_s=0)
        with pytest.raises(ValueError):
            AffineLatencyModel(aggregate_bandwidth_mb_per_s=-1)

    def test_negative_first_byte_rejected(self):
        with pytest.raises(ValueError):
            AffineLatencyModel(first_byte_ms=-1)
