"""Unit tests for the in-memory object store."""

import pytest

from repro.storage.base import BlobNotFoundError, RangeRead
from repro.storage.memory import InMemoryObjectStore


class TestPutGet:
    def test_put_then_get_returns_same_bytes(self):
        store = InMemoryObjectStore()
        store.put("a", b"hello")
        assert store.get("a") == b"hello"

    def test_put_overwrites_existing_blob(self):
        store = InMemoryObjectStore()
        store.put("a", b"old")
        store.put("a", b"new")
        assert store.get("a") == b"new"

    def test_put_copies_bytearray_input(self):
        store = InMemoryObjectStore()
        data = bytearray(b"mutable")
        store.put("a", data)
        data[0] = 0
        assert store.get("a") == b"mutable"

    def test_put_rejects_non_bytes(self):
        store = InMemoryObjectStore()
        with pytest.raises(TypeError):
            store.put("a", "not bytes")  # type: ignore[arg-type]

    def test_get_missing_blob_raises(self):
        store = InMemoryObjectStore()
        with pytest.raises(BlobNotFoundError):
            store.get("missing")


class TestRangeReads:
    def test_get_range_middle(self):
        store = InMemoryObjectStore()
        store.put("a", b"0123456789")
        assert store.get_range("a", 2, 4) == b"2345"

    def test_get_range_without_length_reads_to_end(self):
        store = InMemoryObjectStore()
        store.put("a", b"0123456789")
        assert store.get_range("a", 7) == b"789"

    def test_get_range_past_end_truncates(self):
        store = InMemoryObjectStore()
        store.put("a", b"0123")
        assert store.get_range("a", 2, 100) == b"23"

    def test_get_range_zero_length(self):
        store = InMemoryObjectStore()
        store.put("a", b"0123")
        assert store.get_range("a", 1, 0) == b""

    def test_read_executes_range_read(self):
        store = InMemoryObjectStore()
        store.put("a", b"abcdef")
        assert store.read(RangeRead(blob="a", offset=1, length=3)) == b"bcd"

    def test_read_many_preserves_order(self):
        store = InMemoryObjectStore()
        store.put("a", b"abcdef")
        requests = [RangeRead("a", 0, 2), RangeRead("a", 4, 2), RangeRead("a", 2, 2)]
        assert store.read_many(requests) == [b"ab", b"ef", b"cd"]


class TestMetadataOperations:
    def test_size(self):
        store = InMemoryObjectStore()
        store.put("a", b"12345")
        assert store.size("a") == 5

    def test_exists(self):
        store = InMemoryObjectStore()
        store.put("a", b"x")
        assert store.exists("a")
        assert not store.exists("b")

    def test_delete_removes_blob(self):
        store = InMemoryObjectStore()
        store.put("a", b"x")
        store.delete("a")
        assert not store.exists("a")

    def test_delete_is_idempotent(self):
        store = InMemoryObjectStore()
        store.delete("never-existed")

    def test_list_blobs_sorted_and_filtered_by_prefix(self):
        store = InMemoryObjectStore()
        store.put("b/two", b"2")
        store.put("a/one", b"1")
        store.put("b/one", b"1")
        assert store.list_blobs() == ["a/one", "b/one", "b/two"]
        assert store.list_blobs("b/") == ["b/one", "b/two"]

    def test_total_bytes_sums_sizes_under_prefix(self):
        store = InMemoryObjectStore()
        store.put("x/a", b"123")
        store.put("x/b", b"4567")
        store.put("y/c", b"89")
        assert store.total_bytes("x/") == 7
        assert store.total_bytes() == 9


class TestRangeReadValidation:
    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            RangeRead(blob="a", offset=-1)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            RangeRead(blob="a", offset=0, length=-5)
