"""Unit tests for storage metrics records."""

from repro.storage.metrics import BatchRecord, RequestRecord, StorageMetrics


class TestRequestRecord:
    def test_total_is_wait_plus_download(self):
        record = RequestRecord(blob="a", nbytes=10, wait_ms=40.0, download_ms=2.5)
        assert record.total_ms == 42.5


class TestBatchRecord:
    def test_nbytes_sums_requests(self):
        requests = (
            RequestRecord("a", 10, 1.0, 0.1),
            RequestRecord("a", 30, 1.0, 0.3),
        )
        batch = BatchRecord(requests=requests, wait_ms=1.0, download_ms=0.4)
        assert batch.nbytes == 40
        assert batch.total_ms == 1.4

    def test_empty_batch(self):
        batch = BatchRecord(requests=(), wait_ms=0.0, download_ms=0.0)
        assert batch.nbytes == 0
        assert batch.total_ms == 0.0


class TestStorageMetrics:
    def test_record_accumulates(self):
        metrics = StorageMetrics()
        metrics.record(RequestRecord("a", 5, 10.0, 1.0))
        metrics.record(RequestRecord("b", 15, 20.0, 2.0))
        assert metrics.request_count == 2
        assert metrics.round_trips == 2
        assert metrics.total_bytes == 20
        assert metrics.total_wait_ms == 30.0
        assert metrics.total_download_ms == 3.0

    def test_record_batch_counts_single_round_trip(self):
        metrics = StorageMetrics()
        batch = BatchRecord(
            requests=(RequestRecord("a", 5, 10.0, 1.0), RequestRecord("a", 5, 12.0, 1.0)),
            wait_ms=12.0,
            download_ms=2.0,
        )
        metrics.record_batch(batch)
        assert metrics.round_trips == 1
        assert metrics.request_count == 2

    def test_reset_clears_everything(self):
        metrics = StorageMetrics()
        metrics.record(RequestRecord("a", 5, 10.0, 1.0))
        metrics.reset()
        assert metrics.request_count == 0
        assert metrics.round_trips == 0
        assert metrics.total_bytes == 0
