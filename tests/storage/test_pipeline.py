"""Unit tests for the coalescing read pipeline."""

import pytest

from repro.storage.base import RangeRead
from repro.storage.latency import AffineLatencyModel
from repro.storage.memory import InMemoryObjectStore
from repro.storage.parallel import ParallelFetcher
from repro.storage.pipeline import ReadPipeline
from repro.storage.simulated import SimulatedCloudStore

BLOB_DATA = bytes(range(256)) * 8  # 2048 bytes of recognizable content


@pytest.fixture
def memory_store() -> InMemoryObjectStore:
    store = InMemoryObjectStore()
    store.put("blob", BLOB_DATA)
    store.put("other", BLOB_DATA[::-1])
    return store


@pytest.fixture
def sim_store() -> SimulatedCloudStore:
    store = SimulatedCloudStore(
        latency_model=AffineLatencyModel(first_byte_ms=50.0, jitter_sigma=0.0)
    )
    store.put("blob", BLOB_DATA)
    store.put("other", BLOB_DATA[::-1])
    return store


def direct(store, requests):
    return [store.read(request) for request in requests]


class TestCoalescing:
    def test_adjacent_ranges_merge_into_one_request(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store)
        requests = [RangeRead("blob", 0, 8), RangeRead("blob", 8, 8), RangeRead("blob", 16, 8)]
        result = pipeline.fetch(requests)
        assert result.payloads == direct(memory_store, requests)
        assert pipeline.stats.requests_out == 1
        assert pipeline.stats.coalesced_requests == 3

    def test_overlapping_ranges_merge(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store)
        requests = [RangeRead("blob", 0, 16), RangeRead("blob", 8, 16), RangeRead("blob", 4, 4)]
        result = pipeline.fetch(requests)
        assert result.payloads == direct(memory_store, requests)
        assert pipeline.stats.requests_out == 1

    def test_disjoint_ranges_stay_separate_at_gap_zero(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store, max_gap=0)
        requests = [RangeRead("blob", 0, 8), RangeRead("blob", 9, 8)]  # 1-byte gap
        result = pipeline.fetch(requests)
        assert result.payloads == direct(memory_store, requests)
        assert pipeline.stats.requests_out == 2
        assert pipeline.stats.coalesced_requests == 0
        # Gap 0 never fetches a byte more than the raw requests would.
        assert pipeline.stats.bytes_fetched == pipeline.stats.bytes_requested

    def test_max_gap_bridges_small_holes(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store, max_gap=4)
        requests = [RangeRead("blob", 0, 8), RangeRead("blob", 12, 8)]  # 4-byte gap
        result = pipeline.fetch(requests)
        assert result.payloads == direct(memory_store, requests)
        assert pipeline.stats.requests_out == 1
        assert pipeline.stats.bytes_fetched == 20  # 16 useful + 4 bridged

    def test_ranges_on_different_blobs_never_merge(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store)
        requests = [RangeRead("blob", 0, 8), RangeRead("other", 8, 8)]
        result = pipeline.fetch(requests)
        assert result.payloads == direct(memory_store, requests)
        assert pipeline.stats.requests_out == 2

    def test_identical_ranges_deduplicate(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store)
        requests = [RangeRead("blob", 32, 8)] * 4
        result = pipeline.fetch(requests)
        assert result.payloads == direct(memory_store, requests)
        assert pipeline.stats.requests_out == 1
        assert pipeline.stats.requests_saved == 3

    def test_contained_range_is_served_from_the_wider_one(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store)
        requests = [RangeRead("blob", 0, 64), RangeRead("blob", 16, 8)]
        result = pipeline.fetch(requests)
        assert result.payloads == direct(memory_store, requests)
        assert pipeline.stats.requests_out == 1

    def test_truncation_at_end_of_blob_matches_direct_reads(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store)
        size = len(BLOB_DATA)
        requests = [
            RangeRead("blob", size - 4, 16),  # partially past EOF
            RangeRead("blob", size + 10, 8),  # fully past EOF
            RangeRead("blob", size - 8, 8),
        ]
        result = pipeline.fetch(requests)
        assert result.payloads == direct(memory_store, requests)

    def test_open_ended_reads_pass_through_unmerged(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store)
        requests = [RangeRead("blob", 2000, None), RangeRead("blob", 1990, 8)]
        result = pipeline.fetch(requests)
        assert result.payloads == direct(memory_store, requests)
        assert pipeline.stats.requests_out == 2

    def test_zero_length_reads_cost_nothing(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store)
        result = pipeline.fetch([RangeRead("blob", 5, 0)])
        assert result.payloads == [b""]
        assert pipeline.stats.requests_out == 0

    def test_empty_batch(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store)
        result = pipeline.fetch([])
        assert result.payloads == []
        assert result.total_ms == 0.0

    def test_invalid_parameters_rejected(self, memory_store):
        with pytest.raises(ValueError):
            ReadPipeline.for_store(memory_store, max_gap=-1)
        with pytest.raises(ValueError):
            ReadPipeline.for_store(memory_store, cache_bytes=-1)


class TestEquivalenceOnSimulatedStore:
    def test_payloads_match_direct_reads(self, sim_store):
        pipeline = ReadPipeline.for_store(sim_store, max_gap=16)
        requests = [
            RangeRead("blob", 0, 32),
            RangeRead("blob", 8, 8),
            RangeRead("blob", 40, 8),
            RangeRead("other", 100, 24),
            RangeRead("blob", 0, 32),
        ]
        result = pipeline.fetch(requests)
        assert result.payloads == direct(sim_store, requests)

    def test_single_batch_is_one_logical_round_trip(self, sim_store):
        pipeline = ReadPipeline.for_store(sim_store)
        sim_store.metrics.reset()
        pipeline.fetch([RangeRead("blob", 0, 8), RangeRead("blob", 100, 8)])
        assert sim_store.metrics.round_trips == 1

    def test_coalescing_reduces_physical_request_records(self, sim_store):
        pipeline = ReadPipeline.for_store(sim_store)
        requests = [RangeRead("blob", i * 8, 8) for i in range(10)]  # all adjacent
        result = pipeline.fetch(requests)
        assert len(result.batch.requests) == 1
        assert result.payloads == direct(sim_store, requests)


class TestBlockCache:
    def test_repeat_fetch_hits_cache_and_skips_the_store(self, sim_store):
        pipeline = ReadPipeline.for_store(sim_store, cache_bytes=4096)
        requests = [RangeRead("blob", 0, 8), RangeRead("blob", 100, 8)]
        first = pipeline.fetch(requests)
        assert first.batch.requests  # physical traffic happened
        sim_store.metrics.reset()
        second = pipeline.fetch(requests)
        assert second.payloads == first.payloads
        assert not second.batch.requests  # fully served from cache
        assert second.total_ms == 0.0
        assert sim_store.metrics.round_trips == 0
        assert pipeline.stats.cache_hits == 2
        assert pipeline.stats.cache_misses == 2

    def test_partial_hit_fetches_only_the_misses(self, sim_store):
        pipeline = ReadPipeline.for_store(sim_store, cache_bytes=4096)
        pipeline.fetch([RangeRead("blob", 0, 8)])
        result = pipeline.fetch([RangeRead("blob", 0, 8), RangeRead("blob", 500, 8)])
        assert result.payloads == direct(sim_store, [RangeRead("blob", 0, 8), RangeRead("blob", 500, 8)])
        assert pipeline.stats.requests_out == 2  # one per miss, none for the hit
        assert pipeline.stats.cache_hits == 1

    def test_lru_eviction_respects_byte_budget(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store, cache_bytes=16)
        pipeline.fetch([RangeRead("blob", 0, 8)])
        pipeline.fetch([RangeRead("blob", 100, 8)])  # cache now full (16 bytes)
        pipeline.fetch([RangeRead("blob", 200, 8)])  # evicts the oldest block
        assert pipeline.cached_bytes <= 16
        pipeline.fetch([RangeRead("blob", 0, 8)])  # was evicted -> miss
        assert pipeline.stats.cache_hits == 0

    def test_block_larger_than_budget_is_never_cached(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store, cache_bytes=4)
        pipeline.fetch([RangeRead("blob", 0, 8)])
        assert pipeline.cached_bytes == 0

    def test_clear_cache_forces_refetch(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store, cache_bytes=4096)
        pipeline.fetch([RangeRead("blob", 0, 8)])
        pipeline.clear_cache()
        pipeline.fetch([RangeRead("blob", 0, 8)])
        assert pipeline.stats.cache_hits == 0
        assert pipeline.stats.requests_out == 2

    def test_cache_serves_correct_bytes_after_many_mixed_batches(self, memory_store):
        pipeline = ReadPipeline.for_store(memory_store, max_gap=8, cache_bytes=512)
        for offset in (0, 16, 64, 16, 0, 128, 64):
            requests = [RangeRead("blob", offset, 16), RangeRead("blob", offset + 20, 8)]
            assert pipeline.fetch(requests).payloads == direct(memory_store, requests)


class TestReadManyDelegation:
    def test_read_many_is_batched_on_simulated_stores(self, sim_store):
        sim_store.metrics.reset()
        payloads = sim_store.read_many(
            [RangeRead("blob", 0, 4), RangeRead("blob", 4, 4), RangeRead("blob", 100, 4)]
        )
        assert payloads == [BLOB_DATA[0:4], BLOB_DATA[4:8], BLOB_DATA[100:104]]
        # One logical round trip for the whole call, not one per request.
        assert sim_store.metrics.round_trips == 1

    def test_read_many_empty(self, memory_store):
        assert memory_store.read_many([]) == []


class TestLifecycle:
    def test_context_manager_closes_fetcher(self, memory_store):
        with ReadPipeline.for_store(memory_store) as pipeline:
            pipeline.fetch([RangeRead("blob", 0, 4)])

    def test_fetcher_pool_is_reused_across_batches(self, memory_store):
        fetcher = ParallelFetcher(memory_store, max_concurrency=4)
        fetcher.fetch([RangeRead("blob", 0, 4)])
        pool = fetcher._pool
        assert pool is not None
        fetcher.fetch([RangeRead("blob", 4, 4)])
        assert fetcher._pool is pool  # same executor, not a fresh one per batch
        fetcher.close()
        assert fetcher._pool is None

    def test_fetcher_close_is_idempotent(self, memory_store):
        fetcher = ParallelFetcher(memory_store)
        fetcher.close()
        fetcher.close()

    def test_fetcher_context_manager(self, memory_store):
        with ParallelFetcher(memory_store) as fetcher:
            result = fetcher.fetch([RangeRead("blob", 0, 4)])
        assert result.payloads == [BLOB_DATA[0:4]]


class TestFailureAccounting:
    def test_failed_physical_fetch_still_accounts_the_batch(self, memory_store):
        """A store failure must not erase the batch from the pipeline counters.

        When the backend is down, the pipeline counters are exactly what an
        operator correlates with the spiking backend counters — planning-side
        accounting therefore commits before the physical fetch.
        """
        from repro.observability import MetricsRegistry
        from repro.storage.base import TransientStoreError

        class _DownStore(InMemoryObjectStore):
            def get_range(self, name, offset, length=None):
                raise TransientStoreError("backend down")

        store = _DownStore()
        store.put("blob", BLOB_DATA)
        registry = MetricsRegistry()
        pipeline = ReadPipeline.for_store(store, max_concurrency=2, metrics=registry)
        with pytest.raises(TransientStoreError):
            pipeline.fetch([RangeRead("blob", 0, 8), RangeRead("blob", 0, 8)])
        assert pipeline.stats.requests_in == 2
        assert pipeline.stats.requests_out == 1  # deduplicated, then issued
        assert pipeline.stats.batches == 1
        assert pipeline.stats.bytes_fetched == 0  # nothing ever arrived
        assert (
            registry.counter("airphant_pipeline_physical_requests_total").value() == 1
        )
        pipeline.close()
