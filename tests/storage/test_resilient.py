"""Tests for the resilience wrapper: retries, timeouts, and hedged reads."""

import threading
import time

import pytest

from repro.storage.base import BlobNotFoundError, RangeRead, TransientStoreError
from repro.storage.faults import FlakyStore
from repro.storage.latency import AffineLatencyModel
from repro.storage.memory import InMemoryObjectStore
from repro.storage.resilient import (
    ResilientStore,
    RetriesExhaustedError,
    StoreTimeoutError,
)
from repro.storage.simulated import SimulatedCloudStore


def _mem(**blobs: bytes) -> InMemoryObjectStore:
    store = InMemoryObjectStore()
    for name, data in blobs.items():
        store.put(name, data)
    return store


class TestFlakyStore:
    def test_passthrough_without_faults(self):
        flaky = FlakyStore(_mem(blob=b"0123456789"))
        assert flaky.get("blob") == b"0123456789"
        assert flaky.get_range("blob", 2, 3) == b"234"
        assert flaky.size("blob") == 10
        assert flaky.exists("blob")
        assert flaky.list_blobs() == ["blob"]
        assert flaky.injected_errors == 0 and flaky.injected_slow == 0

    def test_scripted_outcomes_are_deterministic(self):
        sleeps = []
        flaky = FlakyStore(_mem(blob=b"abc"), slow_ms=7.0, sleep=sleeps.append)
        flaky.script(["error", "slow", "ok"])
        with pytest.raises(TransientStoreError):
            flaky.get("blob")
        assert flaky.get("blob") == b"abc"  # slow, but correct
        assert sleeps == [0.007]
        assert flaky.get("blob") == b"abc"
        assert flaky.injected_errors == 1
        assert flaky.injected_slow == 1

    def test_error_rate_one_always_raises(self):
        flaky = FlakyStore(_mem(blob=b"abc"), error_rate=1.0)
        for _ in range(3):
            with pytest.raises(TransientStoreError):
                flaky.get_range("blob", 0, 1)
        assert flaky.injected_errors == 3

    def test_writes_and_metadata_never_injected(self):
        flaky = FlakyStore(_mem(), error_rate=1.0)
        flaky.put("blob", b"abc")
        assert flaky.exists("blob")
        assert flaky.size("blob") == 3
        flaky.delete("blob")
        assert not flaky.exists("blob")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FlakyStore(_mem(), error_rate=1.5)
        with pytest.raises(ValueError):
            FlakyStore(_mem(), slow_rate=-0.1)
        with pytest.raises(ValueError):
            FlakyStore(_mem(), slow_ms=-1)
        with pytest.raises(ValueError):
            FlakyStore(_mem()).script(["maybe"])


class TestRetries:
    def test_transient_error_is_retried_to_success(self):
        flaky = FlakyStore(_mem(blob=b"payload"))
        flaky.script(["error", "error", "ok"])
        store = ResilientStore(flaky, retries=2, backoff_ms=0.0)
        assert store.get("blob") == b"payload"
        stats = store.stats
        assert stats.operations == 1
        assert stats.attempts == 3
        assert stats.retries == 2
        assert stats.recoveries == 1
        assert stats.failures == 0

    def test_exhaustion_raises_typed_error_with_cause(self):
        flaky = FlakyStore(_mem(blob=b"payload"), error_rate=1.0)
        store = ResilientStore(flaky, retries=2, backoff_ms=0.0)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            store.get_range("blob", 0, 3)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, TransientStoreError)
        assert store.stats.failures == 1
        # Exhaustion is itself transient, so stacked wrappers compose.
        assert isinstance(excinfo.value, TransientStoreError)

    def test_not_found_is_never_retried(self):
        store = ResilientStore(FlakyStore(_mem()), retries=5, backoff_ms=0.0)
        with pytest.raises(BlobNotFoundError):
            store.get("missing")
        assert store.stats.attempts == 1
        assert store.stats.retries == 0

    def test_backoff_schedule_is_exponential_and_jittered(self):
        sleeps: list[float] = []
        flaky = FlakyStore(_mem(blob=b"x"), error_rate=1.0)
        store = ResilientStore(
            flaky,
            retries=3,
            backoff_ms=10.0,
            backoff_multiplier=2.0,
            backoff_jitter=0.5,
            sleep=sleeps.append,
        )
        with pytest.raises(RetriesExhaustedError):
            store.get("blob")
        assert len(sleeps) == 3
        for index, base in enumerate([0.010, 0.020, 0.040]):
            assert base <= sleeps[index] <= base * 1.5 + 1e-9

    def test_backoff_is_capped(self):
        sleeps: list[float] = []
        flaky = FlakyStore(_mem(blob=b"x"), error_rate=1.0)
        store = ResilientStore(
            flaky,
            retries=4,
            backoff_ms=100.0,
            max_backoff_ms=150.0,
            backoff_jitter=0.0,
            sleep=sleeps.append,
        )
        with pytest.raises(RetriesExhaustedError):
            store.get("blob")
        assert max(sleeps) <= 0.150 + 1e-9

    def test_writes_are_retried_too(self):
        inner = _mem()

        class _FlakyPut(FlakyStore):
            calls = 0

            def put(self, name, data):
                type(self).calls += 1
                if type(self).calls == 1:
                    raise TransientStoreError("injected put failure")
                super().put(name, data)

        store = ResilientStore(_FlakyPut(inner), retries=1, backoff_ms=0.0)
        store.put("blob", b"value")
        assert inner.get("blob") == b"value"


class TestTimeouts:
    def test_slow_attempt_times_out_then_recovers(self):
        flaky = FlakyStore(_mem(blob=b"data"), slow_ms=500.0)
        flaky.script(["slow", "ok"])
        store = ResilientStore(flaky, retries=1, backoff_ms=0.0, timeout_s=0.05)
        started = time.perf_counter()
        assert store.get("blob") == b"data"
        assert time.perf_counter() - started < 0.5
        assert store.stats.timeouts == 1
        assert store.stats.recoveries == 1
        store.close()

    def test_timeout_exhaustion_surfaces_as_retries_exhausted(self):
        flaky = FlakyStore(_mem(blob=b"data"), slow_rate=1.0, slow_ms=300.0)
        store = ResilientStore(flaky, retries=1, backoff_ms=0.0, timeout_s=0.03)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            store.get("blob")
        assert isinstance(excinfo.value.last_error, StoreTimeoutError)
        store.close()


class TestHedging:
    def test_hedge_beats_a_slow_primary_and_returns_correct_bytes(self):
        blob = bytes(range(200))
        inner = _mem(blob=blob)

        class _SlowFirst(FlakyStore):
            """First read stalls; later (hedge) reads answer instantly."""

            def __init__(self, backend):
                super().__init__(backend)
                self._calls = 0
                self._call_lock = threading.Lock()

            def get_range(self, name, offset, length=None):
                with self._call_lock:
                    self._calls += 1
                    stall = self._calls == 1
                if stall:
                    time.sleep(0.25)
                return super().get_range(name, offset, length)

        store = ResilientStore(_SlowFirst(inner), retries=0, hedge_ms=20.0)
        started = time.perf_counter()
        assert store.get_range("blob", 10, 30) == blob[10:40]
        assert time.perf_counter() - started < 0.2
        assert store.stats.hedges == 1
        assert store.stats.hedge_wins == 1
        # Regression: a hedge win must record the *winner's own* latency,
        # not hedge-delay + latency — otherwise the adaptive delay ratchets
        # upward on every win until hedging disables itself.
        assert max(store._latencies) < 0.020
        store.close()

    def test_fast_reads_never_hedge(self):
        store = ResilientStore(_mem(blob=b"abcdef"), retries=0, hedge_ms=50.0)
        for _ in range(10):
            assert store.get_range("blob", 0, 3) == b"abc"
        assert store.stats.hedges == 0
        store.close()

    def test_hedge_delay_tracks_observed_percentile_above_floor(self):
        store = ResilientStore(_mem(blob=b"x"), hedge_ms=10.0)
        assert store.hedge_delay_s() == pytest.approx(0.010)
        # Feed synthetic slow observations; the adaptive delay must rise.
        for _ in range(64):
            store._observe(0.080)
        assert store.hedge_delay_s() == pytest.approx(0.080)
        store.close()

    def test_hedged_read_correctness_under_random_faults(self):
        """Hedging + retries return byte-identical data under injected faults."""
        blob = bytes(range(256)) * 8
        flaky = FlakyStore(
            _mem(blob=blob), error_rate=0.15, slow_rate=0.2, slow_ms=5.0, seed=11
        )
        store = ResilientStore(flaky, retries=6, backoff_ms=0.5, hedge_ms=1.0, seed=3)
        for offset in range(0, 512, 64):
            assert store.get_range("blob", offset, 64) == blob[offset : offset + 64]
        assert store.get("blob") == blob
        store.close()

    def test_hedged_correctness_over_simulated_store_fault_injection(self):
        """Virtual-clock stragglers never trip wall-clock hedges, data intact."""
        backend = InMemoryObjectStore()
        blob = bytes(range(100))
        backend.put("blob", blob)
        simulated = SimulatedCloudStore(
            backend=backend,
            latency_model=AffineLatencyModel(
                straggler_probability=0.5, straggler_multiplier=50.0, seed=4
            ),
        )
        store = ResilientStore(simulated, retries=1, hedge_ms=5.0)
        payloads = store.read_many(
            [RangeRead("blob", i * 10, 10) for i in range(10)]
        )
        assert payloads == [blob[i * 10 : i * 10 + 10] for i in range(10)]
        # The simulator returns instantly on its virtual clock: no hedges.
        assert store.stats.hedges == 0
        store.close()


class TestLifecycle:
    def test_close_is_idempotent_and_non_poisoning(self):
        store = ResilientStore(_mem(blob=b"abc"), hedge_ms=1.0, timeout_s=5.0)
        assert store.get("blob") == b"abc"
        store.close()
        store.close()
        assert store.get("blob") == b"abc"  # pool transparently rebuilt
        store.close()

    def test_invalid_parameters_rejected(self):
        inner = _mem()
        for kwargs in (
            {"retries": -1},
            {"backoff_ms": -1.0},
            {"backoff_multiplier": 0.5},
            {"backoff_jitter": -0.1},
            {"timeout_s": 0.0},
            {"hedge_ms": -1.0},
            {"hedge_percentile": 0.0},
            {"hedge_percentile": 101.0},
            {"hedge_concurrency": 0},
        ):
            with pytest.raises(ValueError):
                ResilientStore(inner, **kwargs)

    def test_stats_serialize(self):
        store = ResilientStore(_mem(blob=b"abc"), retries=1, backoff_ms=0.0)
        store.get("blob")
        payload = store.stats.to_dict()
        assert payload["operations"] == 1
        assert payload["hedge_win_rate"] == 0.0
        assert payload["retry_win_rate"] == 0.0


class TestServiceConfigWrap:
    def test_wrap_store_slides_resilience_under_the_simulator(self):
        """sim:// + resilience must compose: sim on top (virtual clock
        visible to the fetcher), ResilientStore guarding the real backend."""
        from repro.service.config import ServiceConfig

        inner = _mem(blob=b"abc")
        simulated = SimulatedCloudStore(backend=inner)
        wrapped = ServiceConfig(retries=2).wrap_store(simulated)
        assert isinstance(wrapped, SimulatedCloudStore)
        assert isinstance(wrapped.backend, ResilientStore)
        assert wrapped.backend.backend is inner
        assert wrapped.get("blob") == b"abc"

    def test_wrap_store_is_identity_when_disabled_or_already_wrapped(self):
        from repro.service.config import ServiceConfig

        inner = _mem()
        assert ServiceConfig().wrap_store(inner) is inner
        resilient = ResilientStore(inner)
        assert ServiceConfig(retries=3).wrap_store(resilient) is resilient
