"""Tests for the S3-compatible adapter against an in-test S3 emulator.

The emulator is a stdlib ``http.server`` handler speaking just enough of the
S3 REST protocol (path-style GET/HEAD/PUT/DELETE plus paginated
ListObjectsV2 XML) to exercise the adapter end to end, including a full
build → search round trip through the service facade.
"""

import threading
import urllib.parse
from xml.sax.saxutils import escape

import http.server

import pytest

from repro.core.config import SketchConfig
from repro.service import AirphantService, SearchRequest
from repro.storage.base import BlobNotFoundError
from repro.storage.registry import open_store
from repro.storage.s3 import S3Credentials, S3ObjectStore, sign_v4

BUCKET = "test-bucket"


class _S3Handler(http.server.BaseHTTPRequestHandler):
    """Minimal path-style S3 endpoint backed by a dict on the server."""

    protocol_version = "HTTP/1.1"

    def log_message(self, *args):  # noqa: A002 - quiet test output
        pass

    # -- helpers -----------------------------------------------------------------

    def _parse(self):
        parts = urllib.parse.urlsplit(self.path)
        segments = parts.path.lstrip("/").split("/", 1)
        bucket = segments[0]
        key = urllib.parse.unquote(segments[1]) if len(segments) > 1 else ""
        query = dict(urllib.parse.parse_qsl(parts.query, keep_blank_values=True))
        return bucket, key, query

    def _respond(self, status, body=b"", content_type="application/octet-stream"):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _record_auth(self):
        self.server.seen_auth_headers.append(self.headers.get("Authorization"))

    # -- verbs -------------------------------------------------------------------

    def do_GET(self):  # noqa: N802 - http.server API
        self._record_auth()
        bucket, key, query = self._parse()
        if bucket != BUCKET:
            self._respond(404)
            return
        if not key and query.get("list-type") == "2":
            self._list(query)
            return
        data = self.server.objects.get(key)
        if data is None:
            self._respond(404)
            return
        header = self.headers.get("Range")
        if header and header.startswith("bytes="):
            start_s, _, end_s = header[len("bytes="):].partition("-")
            start = int(start_s)
            if start >= len(data):
                self._respond(416)
                return
            end = int(end_s) if end_s else len(data) - 1
            self._respond(206, data[start : end + 1])
            return
        self._respond(200, data)

    def do_HEAD(self):  # noqa: N802 - http.server API
        self._record_auth()
        _, key, _ = self._parse()
        data = self.server.objects.get(key)
        if data is None:
            self._respond(404)
        else:
            self._respond(200, data)  # body suppressed for HEAD

    def do_PUT(self):  # noqa: N802 - http.server API
        self._record_auth()
        _, key, _ = self._parse()
        length = int(self.headers.get("Content-Length") or 0)
        self.server.objects[key] = self.rfile.read(length)
        self._respond(200)

    def do_DELETE(self):  # noqa: N802 - http.server API
        self._record_auth()
        _, key, _ = self._parse()
        self.server.objects.pop(key, None)
        self._respond(204)

    def _list(self, query):
        prefix = query.get("prefix", "")
        token = query.get("continuation-token", "")
        page_size = 3  # tiny pages force the pagination path
        keys = sorted(k for k in self.server.objects if k.startswith(prefix))
        start = int(token) if token else 0
        page = keys[start : start + page_size]
        truncated = start + page_size < len(keys)
        contents = "".join(
            f"<Contents><Key>{escape(key)}</Key></Contents>" for key in page
        )
        next_token = (
            f"<NextContinuationToken>{start + page_size}</NextContinuationToken>"
            if truncated
            else ""
        )
        body = (
            '<?xml version="1.0" encoding="UTF-8"?>'
            '<ListBucketResult xmlns="http://s3.amazonaws.com/doc/2006-03-01/">'
            f"<IsTruncated>{'true' if truncated else 'false'}</IsTruncated>"
            f"{contents}{next_token}</ListBucketResult>"
        )
        self._respond(200, body.encode("utf-8"), content_type="application/xml")


@pytest.fixture
def s3_server():
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _S3Handler)
    server.objects = {}
    server.seen_auth_headers = []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _endpoint(server) -> str:
    return f"http://127.0.0.1:{server.server_address[1]}"


@pytest.fixture
def store(s3_server):
    return S3ObjectStore(BUCKET, endpoint=_endpoint(s3_server), credentials=None)


class TestCrud:
    def test_put_get_round_trip(self, store, s3_server):
        store.put("dir/blob.bin", b"payload-bytes")
        assert s3_server.objects["dir/blob.bin"] == b"payload-bytes"
        assert store.get("dir/blob.bin") == b"payload-bytes"

    def test_range_reads_are_served_with_206(self, store):
        blob = bytes(range(200))
        store.put("blob", blob)
        assert store.get_range("blob", 10, 20) == blob[10:30]
        assert store.get_range("blob", 190) == blob[190:]
        assert store.get_range("blob", 500, 10) == b""

    def test_size_exists_delete(self, store):
        store.put("blob", b"12345")
        assert store.size("blob") == 5
        assert store.exists("blob")
        store.delete("blob")
        assert not store.exists("blob")
        store.delete("blob")  # idempotent
        with pytest.raises(BlobNotFoundError):
            store.get("blob")

    def test_list_blobs_paginates(self, store):
        names = [f"idx/part-{i:02d}" for i in range(8)] + ["other/x"]
        for name in names:
            store.put(name, b"1")
        assert store.list_blobs("idx/") == sorted(n for n in names if n.startswith("idx/"))
        assert store.list_blobs() == sorted(names)
        assert store.total_bytes("idx/") == 8

    def test_prefix_scopes_all_operations(self, s3_server):
        scoped = S3ObjectStore(
            BUCKET, prefix="tenant-a", endpoint=_endpoint(s3_server), credentials=None
        )
        scoped.put("blob", b"abc")
        assert s3_server.objects == {"tenant-a/blob": b"abc"}
        assert scoped.list_blobs() == ["blob"]
        assert scoped.get_range("blob", 1, 1) == b"b"


class TestSigning:
    def test_unsigned_requests_without_credentials(self, store, s3_server):
        store.put("blob", b"x")
        store.get("blob")
        assert all(header is None for header in s3_server.seen_auth_headers)

    def test_signed_requests_carry_sigv4_authorization(self, s3_server):
        creds = S3Credentials(access_key="AKIDEXAMPLE", secret_key="secret")
        signed = S3ObjectStore(
            BUCKET, endpoint=_endpoint(s3_server), credentials=creds, region="eu-west-1"
        )
        signed.put("blob", b"x")
        assert signed.get("blob") == b"x"
        headers = [h for h in s3_server.seen_auth_headers if h]
        assert headers, "no Authorization header reached the server"
        for header in headers:
            assert header.startswith("AWS4-HMAC-SHA256 Credential=AKIDEXAMPLE/")
            assert "/eu-west-1/s3/aws4_request" in header
            assert "SignedHeaders=" in header and "Signature=" in header

    def test_credentials_read_from_environment(self, monkeypatch):
        monkeypatch.setenv("AWS_ACCESS_KEY_ID", "AKENV")
        monkeypatch.setenv("AWS_SECRET_ACCESS_KEY", "sekrit")
        monkeypatch.setenv("AWS_SESSION_TOKEN", "tok")
        creds = S3Credentials.from_env()
        assert creds == S3Credentials("AKENV", "sekrit", "tok")
        monkeypatch.delenv("AWS_ACCESS_KEY_ID")
        assert S3Credentials.from_env() is None

    def test_sign_v4_is_deterministic(self):
        from datetime import datetime, timezone

        creds = S3Credentials("AKIDEXAMPLE", "wJalrXUtnFEMI")
        now = datetime(2026, 7, 27, 12, 0, 0, tzinfo=timezone.utc)
        first = sign_v4(
            "GET", "http://h/bucket/key?list-type=2", "us-east-1", creds, "e3b0c442", now=now
        )
        second = sign_v4(
            "GET", "http://h/bucket/key?list-type=2", "us-east-1", creds, "e3b0c442", now=now
        )
        assert first == second
        assert first["x-amz-date"] == "20260727T120000Z"


class TestEndToEnd:
    def test_registry_resolves_s3_uri(self, s3_server):
        uri = f"s3://{BUCKET}/exports?endpoint={_endpoint(s3_server)}"
        store = open_store(uri)
        assert isinstance(store, S3ObjectStore)
        store.put("blob", b"via-registry")
        assert store.get("blob") == b"via-registry"

    def test_build_and_search_through_the_service(self, s3_server):
        uri = f"s3://{BUCKET}?endpoint={_endpoint(s3_server)}"
        service = AirphantService.from_uri(uri)
        service.store.put(
            "corpora/logs.txt",
            b"error disk full\ninfo started\nerror timeout\nwarn noise",
        )
        service.build_index(
            "logs", ["corpora/logs.txt"], sketch_config=SketchConfig(num_bins=64)
        )
        response = service.search(SearchRequest(query="error", index="logs"))
        assert response.num_results == 2
        assert all("error" in hit.text for hit in response.documents)
        # Discovery works because S3 (unlike plain HTTP) can list.
        assert [info.name for info in service.list_indexes()] == ["logs"]
        service.close()
