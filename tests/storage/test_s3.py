"""Tests for the S3-compatible adapter against the in-test S3 emulator.

The emulator lives in ``tests/harness/s3_emulator.py`` (shared with the
MinIO-style integration tests in ``tests/integration/test_s3_harness.py``)
and speaks just enough of the S3 REST protocol — path-style
GET/HEAD/PUT/DELETE plus paginated ListObjectsV2 XML — to exercise the
adapter end to end, including a full build → search round trip through the
service facade.
"""

import pytest

from repro.core.config import SketchConfig
from repro.service import AirphantService, SearchRequest
from repro.storage.base import BlobNotFoundError
from repro.storage.registry import open_store
from repro.storage.s3 import S3Credentials, S3ObjectStore, sign_v4


@pytest.fixture
def store(s3_emulator):
    return S3ObjectStore(
        s3_emulator.bucket, endpoint=s3_emulator.endpoint, credentials=None
    )


class TestCrud:
    def test_put_get_round_trip(self, store, s3_emulator):
        store.put("dir/blob.bin", b"payload-bytes")
        assert s3_emulator.objects["dir/blob.bin"] == b"payload-bytes"
        assert store.get("dir/blob.bin") == b"payload-bytes"

    def test_range_reads_are_served_with_206(self, store):
        blob = bytes(range(200))
        store.put("blob", blob)
        assert store.get_range("blob", 10, 20) == blob[10:30]
        assert store.get_range("blob", 190) == blob[190:]
        assert store.get_range("blob", 500, 10) == b""

    def test_size_exists_delete(self, store):
        store.put("blob", b"12345")
        assert store.size("blob") == 5
        assert store.exists("blob")
        store.delete("blob")
        assert not store.exists("blob")
        store.delete("blob")  # idempotent
        with pytest.raises(BlobNotFoundError):
            store.get("blob")

    def test_list_blobs_paginates(self, store):
        names = [f"idx/part-{i:02d}" for i in range(8)] + ["other/x"]
        for name in names:
            store.put(name, b"1")
        assert store.list_blobs("idx/") == sorted(n for n in names if n.startswith("idx/"))
        assert store.list_blobs() == sorted(names)
        assert store.total_bytes("idx/") == 8

    def test_prefix_scopes_all_operations(self, s3_emulator):
        scoped = S3ObjectStore(
            s3_emulator.bucket,
            prefix="tenant-a",
            endpoint=s3_emulator.endpoint,
            credentials=None,
        )
        scoped.put("blob", b"abc")
        assert s3_emulator.objects == {"tenant-a/blob": b"abc"}
        assert scoped.list_blobs() == ["blob"]
        assert scoped.get_range("blob", 1, 1) == b"b"


class TestSigning:
    def test_unsigned_requests_without_credentials(self, store, s3_emulator):
        store.put("blob", b"x")
        store.get("blob")
        assert all(header is None for header in s3_emulator.seen_auth_headers)

    def test_signed_requests_carry_sigv4_authorization(self, s3_emulator):
        creds = S3Credentials(access_key="AKIDEXAMPLE", secret_key="secret")
        signed = S3ObjectStore(
            s3_emulator.bucket,
            endpoint=s3_emulator.endpoint,
            credentials=creds,
            region="eu-west-1",
        )
        signed.put("blob", b"x")
        assert signed.get("blob") == b"x"
        headers = [h for h in s3_emulator.seen_auth_headers if h]
        assert headers, "no Authorization header reached the server"
        for header in headers:
            assert header.startswith("AWS4-HMAC-SHA256 Credential=AKIDEXAMPLE/")
            assert "/eu-west-1/s3/aws4_request" in header
            assert "SignedHeaders=" in header and "Signature=" in header

    def test_credentials_read_from_environment(self, monkeypatch):
        monkeypatch.setenv("AWS_ACCESS_KEY_ID", "AKENV")
        monkeypatch.setenv("AWS_SECRET_ACCESS_KEY", "sekrit")
        monkeypatch.setenv("AWS_SESSION_TOKEN", "tok")
        creds = S3Credentials.from_env()
        assert creds == S3Credentials("AKENV", "sekrit", "tok")
        monkeypatch.delenv("AWS_ACCESS_KEY_ID")
        assert S3Credentials.from_env() is None

    def test_sign_v4_is_deterministic(self):
        from datetime import datetime, timezone

        creds = S3Credentials("AKIDEXAMPLE", "wJalrXUtnFEMI")
        now = datetime(2026, 7, 27, 12, 0, 0, tzinfo=timezone.utc)
        first = sign_v4(
            "GET", "http://h/bucket/key?list-type=2", "us-east-1", creds, "e3b0c442", now=now
        )
        second = sign_v4(
            "GET", "http://h/bucket/key?list-type=2", "us-east-1", creds, "e3b0c442", now=now
        )
        assert first == second
        assert first["x-amz-date"] == "20260727T120000Z"


class TestEndToEnd:
    def test_registry_resolves_s3_uri(self, s3_emulator):
        store = open_store(s3_emulator.uri(prefix="exports"))
        assert isinstance(store, S3ObjectStore)
        store.put("blob", b"via-registry")
        assert store.get("blob") == b"via-registry"

    def test_build_and_search_through_the_service(self, s3_emulator):
        service = AirphantService.from_uri(s3_emulator.uri())
        service.store.put(
            "corpora/logs.txt",
            b"error disk full\ninfo started\nerror timeout\nwarn noise",
        )
        service.build_index(
            "logs", ["corpora/logs.txt"], sketch_config=SketchConfig(num_bins=64)
        )
        response = service.search(SearchRequest(query="error", index="logs"))
        assert response.num_results == 2
        assert all("error" in hit.text for hit in response.documents)
        # Discovery works because S3 (unlike plain HTTP) can list.
        assert [info.name for info in service.list_indexes()] == ["logs"]
        service.close()
