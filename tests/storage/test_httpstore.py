"""Tests for HTTPRangeStore against real stdlib HTTP servers.

Two server flavours cover both protocol paths:

* ``SimpleHTTPRequestHandler`` ignores ``Range`` and answers ``200`` with the
  full body — the store must slice client-side;
* a minimal range-aware handler answers ``206``/``416`` — the store must use
  the partial body as-is.
"""

import functools
import http.server
import threading

import pytest

from repro.storage.base import (
    BlobNotFoundError,
    ReadOnlyStoreError,
    TransientStoreError,
)
from repro.storage.httpstore import HTTPRangeStore

BLOB = bytes(range(256)) * 4


class _RangeHandler(http.server.BaseHTTPRequestHandler):
    """Static handler with real ``Range`` support (what nginx/S3 would do)."""

    blobs = {"data/blob.bin": BLOB, "plain.txt": b"hello world"}

    def log_message(self, *args):  # noqa: A002 - quiet test output
        pass

    def _lookup(self):
        return self.blobs.get(self.path.lstrip("/"))

    def _serve(self, include_body):
        if self.path.lstrip("/").startswith("private/"):
            self.send_error(403)
            return
        data = self._lookup()
        if data is None:
            self.send_error(404)
            return
        header = self.headers.get("Range")
        status, window = 200, data
        if header and header.startswith("bytes=") and include_body:
            spec = header[len("bytes="):]
            start_s, _, end_s = spec.partition("-")
            start = int(start_s)
            if start >= len(data):
                self.send_response(416)
                self.send_header("Content-Length", "0")
                self.end_headers()
                return
            end = int(end_s) if end_s else len(data) - 1
            window = data[start : end + 1]
            status = 206
        self.send_response(status)
        self.send_header("Content-Length", str(len(window)))
        self.end_headers()
        if include_body:
            self.wfile.write(window)

    def do_GET(self):  # noqa: N802 - http.server API
        self._serve(include_body=True)

    def do_HEAD(self):  # noqa: N802 - http.server API
        self._serve(include_body=False)


@pytest.fixture
def range_server():
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _RangeHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@pytest.fixture
def static_server(tmp_path):
    """A plain `python -m http.server` style directory server (no Range)."""
    (tmp_path / "data").mkdir()
    (tmp_path / "data" / "blob.bin").write_bytes(BLOB)
    (tmp_path / "plain.txt").write_bytes(b"hello world")
    handler = functools.partial(
        http.server.SimpleHTTPRequestHandler, directory=str(tmp_path)
    )
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@pytest.fixture(params=["range", "static"])
def store(request, range_server, static_server):
    """The same assertions must hold with and without server Range support."""
    url = range_server if request.param == "range" else static_server
    return HTTPRangeStore(url, timeout_s=5.0)


class TestReads:
    def test_get_whole_blob(self, store):
        assert store.get("data/blob.bin") == BLOB
        assert store.get("plain.txt") == b"hello world"

    def test_get_range_matches_slicing(self, store):
        assert store.get_range("data/blob.bin", 10, 20) == BLOB[10:30]
        assert store.get_range("data/blob.bin", 0, 1) == BLOB[:1]

    def test_open_ended_range_reads_to_end(self, store):
        assert store.get_range("data/blob.bin", len(BLOB) - 16) == BLOB[-16:]

    def test_range_past_end_truncates(self, store):
        assert store.get_range("data/blob.bin", len(BLOB) - 4, 100) == BLOB[-4:]
        assert store.get_range("data/blob.bin", len(BLOB) + 10, 4) == b""

    def test_zero_length_range_is_empty_without_a_request(self, store):
        assert store.get_range("data/blob.bin", 5, 0) == b""

    def test_size_via_head(self, store):
        assert store.size("data/blob.bin") == len(BLOB)
        assert store.size("plain.txt") == len(b"hello world")

    def test_exists(self, store):
        assert store.exists("plain.txt")
        assert not store.exists("no/such/blob")

    def test_missing_blob_raises_not_found(self, store):
        with pytest.raises(BlobNotFoundError):
            store.get("missing.bin")
        with pytest.raises(BlobNotFoundError):
            store.size("missing.bin")

    def test_read_many_pipeline_over_http(self, store):
        from repro.storage.base import RangeRead

        payloads = store.read_many(
            [RangeRead("data/blob.bin", 0, 8), RangeRead("data/blob.bin", 8, 8)]
        )
        assert payloads == [BLOB[:8], BLOB[8:16]]
        store.close()

    def test_list_blobs_is_empty_not_an_error(self, store):
        assert store.list_blobs() == []
        assert store.total_bytes() == 0


class TestWritesAndFailures:
    def test_put_against_static_server_raises_read_only(self, static_server):
        store = HTTPRangeStore(static_server)
        with pytest.raises(ReadOnlyStoreError):
            store.put("new.bin", b"data")

    def test_access_denied_is_definitive_not_transient(self, range_server):
        """Regression: 403 on reads used to be retried as 'transient'."""
        from repro.storage.base import StoreAccessError
        from repro.storage.resilient import ResilientStore

        store = HTTPRangeStore(range_server)
        with pytest.raises(StoreAccessError):
            store.get("private/secret.bin")
        # ...and the resilience layer must NOT retry it.
        resilient = ResilientStore(store, retries=5, backoff_ms=0.0)
        with pytest.raises(StoreAccessError):
            resilient.get("private/secret.bin")
        assert resilient.stats.attempts == 1
        assert resilient.stats.retries == 0

    def test_unreachable_host_raises_transient(self):
        # Port 9 (discard) on localhost is refused immediately.
        store = HTTPRangeStore("http://127.0.0.1:9", timeout_s=0.5)
        with pytest.raises(TransientStoreError):
            store.get("anything")

    def test_invalid_base_url_rejected(self):
        with pytest.raises(ValueError):
            HTTPRangeStore("ftp://host/dir")
        with pytest.raises(ValueError):
            HTTPRangeStore("http://host", timeout_s=0)

    def test_invalid_blob_names_rejected(self, static_server):
        store = HTTPRangeStore(static_server)
        for name in ("", "/absolute", "up/../escape"):
            with pytest.raises(ValueError):
                store.blob_url(name)
