"""Unit tests for the local-filesystem object store."""

import pytest

from repro.storage.base import BlobNotFoundError
from repro.storage.local import LocalObjectStore


@pytest.fixture
def store(tmp_path) -> LocalObjectStore:
    return LocalObjectStore(tmp_path / "bucket")


class TestBasicOperations:
    def test_put_and_get(self, store):
        store.put("doc.txt", b"content")
        assert store.get("doc.txt") == b"content"

    def test_nested_blob_names_create_directories(self, store):
        store.put("index/part/header.bin", b"abc")
        assert store.get("index/part/header.bin") == b"abc"
        assert (store.root / "index" / "part" / "header.bin").is_file()

    def test_get_missing_raises(self, store):
        with pytest.raises(BlobNotFoundError):
            store.get("missing.txt")

    def test_get_range(self, store):
        store.put("a", b"0123456789")
        assert store.get_range("a", 3, 4) == b"3456"

    def test_get_range_open_ended(self, store):
        store.put("a", b"0123456789")
        assert store.get_range("a", 6) == b"6789"

    def test_get_range_missing_raises(self, store):
        with pytest.raises(BlobNotFoundError):
            store.get_range("missing", 0, 1)

    def test_size_and_exists(self, store):
        store.put("a", b"12345")
        assert store.size("a") == 5
        assert store.exists("a")
        assert not store.exists("b")

    def test_size_missing_raises(self, store):
        with pytest.raises(BlobNotFoundError):
            store.size("missing")

    def test_delete(self, store):
        store.put("a", b"x")
        store.delete("a")
        assert not store.exists("a")
        store.delete("a")  # idempotent

    def test_list_blobs_recursive_sorted(self, store):
        store.put("z.txt", b"1")
        store.put("sub/a.txt", b"2")
        store.put("sub/deep/b.txt", b"3")
        assert store.list_blobs() == ["sub/a.txt", "sub/deep/b.txt", "z.txt"]
        assert store.list_blobs("sub/") == ["sub/a.txt", "sub/deep/b.txt"]

    def test_overwrite_existing(self, store):
        store.put("a", b"old")
        store.put("a", b"newer")
        assert store.get("a") == b"newer"


class TestNameValidation:
    def test_empty_name_rejected(self, store):
        with pytest.raises(ValueError):
            store.put("", b"x")

    def test_absolute_name_rejected(self, store):
        with pytest.raises(ValueError):
            store.put("/etc/passwd", b"x")

    def test_parent_traversal_rejected(self, store):
        with pytest.raises(ValueError):
            store.put("../escape", b"x")
