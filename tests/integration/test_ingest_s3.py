"""End-to-end live ingestion over emulated ``s3://``: ingest → flush → compact.

The acceptance flow of the ingestion subsystem against a real(istic)
backend: an HTTP query node over an S3 endpoint accepts appends (durable WAL
segments as S3 objects), serves them immediately in every query mode,
flushes them into a delta, compacts into a new base generation, and exposes
the whole lifecycle through ``/metrics``.  Like the S3 harness flow, set
``AIRPHANT_S3_TEST_ENDPOINT`` to run the identical test against a real
MinIO/S3 endpoint.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest
from harness.prometheus import parse_prometheus

from repro.core.config import SketchConfig
from repro.observability import MetricsRegistry
from repro.service import AirphantService, ServiceConfig, create_server
from repro.storage.registry import open_store

CORPUS = b"error disk full\ninfo service ok\nwarn slow response\n"


@pytest.fixture
def server(s3_emulator):
    config = ServiceConfig(ingest_interval_s=0, retries=1)
    service = AirphantService(
        config.wrap_store(open_store(s3_emulator.uri())),
        config,
        store_uri=s3_emulator.uri(),
        metrics=MetricsRegistry(),
    )
    service.store.put("corpora/events.txt", CORPUS)
    service.build_index(
        "events", ["corpora/events.txt"], sketch_config=SketchConfig(num_bins=64)
    )
    http_server = create_server(service)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    try:
        yield http_server
    finally:
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5)
        service.close()


def _post(url: str, payload: dict | None = None) -> dict:
    body = json.dumps(payload).encode("utf-8") if payload is not None else b""
    request = urllib.request.Request(url, data=body, method="POST")
    with urllib.request.urlopen(request, timeout=15.0) as response:
        return json.loads(response.read())


def _search(base: str, query: str, mode: str) -> list[str]:
    answer = _post(f"{base}/search", {"index": "events", "query": query, "mode": mode})
    return sorted(hit["text"] for hit in answer["documents"])


def test_ingest_flush_compact_flow_over_s3(server):
    base = server.url
    service = server.service

    appended = _post(
        f"{base}/indexes/events/docs",
        {"documents": ["error fresh outage", "info fresh deploy"]},
    )
    assert appended["appended"] == 2
    # The WAL segment is a real S3 object.
    assert service.store.exists(appended["wal_segment"])

    # Read-your-writes in every mode, before any flush.
    assert "error fresh outage" in _search(base, "error", "keyword")
    assert _search(base, "fresh AND (outage OR deploy)", "boolean") == [
        "error fresh outage",
        "info fresh deploy",
    ]
    assert _search(base, "fresh .*outage", "regex") == ["error fresh outage"]

    flushed = _post(f"{base}/indexes/events/flush")
    assert flushed["flushed"] == 2
    assert flushed["delta"] == "events/delta-0000"
    assert _search(base, "fresh", "keyword") == [
        "error fresh outage",
        "info fresh deploy",
    ]

    compacted = _post(f"{base}/indexes/events/compact")
    assert compacted["compacted"] is True
    assert compacted["base"] == "events/gen-00000001"
    assert _search(base, "fresh", "keyword") == [
        "error fresh outage",
        "info fresh deploy",
    ]

    # The lifecycle is fully observable on /metrics (valid exposition).
    with urllib.request.urlopen(f"{base}/metrics", timeout=15.0) as response:
        families = parse_prometheus(response.read().decode("utf-8"))
    assert families["airphant_ingest_documents_total"].value(index="events") == 2
    assert families["airphant_wal_segments_total"].value(index="events") == 1
    assert families["airphant_ingest_flushes_total"].value(index="events") >= 1
    assert families["airphant_ingest_compactions_total"].value(index="events") == 1
    assert families["airphant_memtable_documents"].value(index="events") == 0
    assert families["airphant_ingest_compact_seconds"].histogram_count() == 1
    assert families["airphant_open_indexes"].kind == "gauge"
    # All of it rode over genuine S3 HTTP traffic (the backend counters
    # record into the process-wide registry the store defaults to).
    from repro.observability import get_registry

    backend = get_registry().get("airphant_backend_requests_total")
    assert backend is not None
    assert any(key[0] == "s3" for key in backend.series())

    # /healthz reflects the drained write path.
    with urllib.request.urlopen(f"{base}/healthz", timeout=15.0) as response:
        health = json.loads(response.read())
    assert health["ingest"]["memtable_documents"] == 0
    assert health["ingest"]["wal_segments_active"] == 0
    assert health["ingest"]["delta_indexes"] == 0
