"""End-to-end integration tests across modules.

These tests exercise the full pipeline the paper describes: generate a
corpus on (simulated) cloud storage, build the index with the Builder, open a
fresh Searcher against the persisted blobs, and verify both correctness and
the latency properties that motivate the system.
"""

import pytest

from repro.baselines.lucene_like import LuceneLikeEngine
from repro.baselines.sqlite_like import SQLiteLikeEngine
from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.profiling.profiler import profile_documents
from repro.search.searcher import AirphantSearcher
from repro.storage.latency import AffineLatencyModel
from repro.storage.local import LocalObjectStore
from repro.storage.simulated import SimulatedCloudStore
from repro.workloads.logs import generate_log_corpus
from repro.workloads.queries import sample_query_words
from repro.workloads.synthetic import SyntheticSpec, generate_zipf


@pytest.fixture(scope="module")
def hdfs_setup():
    """A 3000-document HDFS-like corpus indexed by Airphant."""
    store = SimulatedCloudStore(latency_model=AffineLatencyModel(jitter_sigma=0.0, seed=1))
    corpus = generate_log_corpus(store, "hdfs", num_documents=3000, seed=11)
    config = SketchConfig(num_bins=512, target_false_positives=1.0, seed=4)
    builder = AirphantBuilder(store, config=config)
    built = builder.build_from_documents(corpus.documents, index_name="hdfs-index")
    searcher = AirphantSearcher.open(store, index_name="hdfs-index")
    return store, corpus, built, searcher


class TestEndToEndCorrectness:
    def test_perfect_recall_and_precision_over_sampled_queries(self, hdfs_setup):
        _, corpus, _, searcher = hdfs_setup
        profile = profile_documents(corpus.documents)
        truth = {}
        for document in corpus.documents:
            for word in set(document.text.split()):
                truth.setdefault(word, set()).add(document.ref)
        for word in sample_query_words(profile, 25, seed=3):
            result = searcher.search(word)
            assert {doc.ref for doc in result.documents} == truth[word]

    def test_false_positive_rate_respects_target(self, hdfs_setup):
        _, corpus, built, searcher = hdfs_setup
        profile = profile_documents(corpus.documents)
        words = sample_query_words(profile, 40, seed=5)
        total_false_positives = sum(
            searcher.search(word).false_positive_count for word in words
        )
        observed = total_false_positives / len(words)
        # Expected <= F0 = 1; Hoeffding slack keeps the test robust.
        assert observed <= built.config.target_false_positives + 3.0

    def test_query_of_absent_word_is_empty_after_filtering(self, hdfs_setup):
        _, _, _, searcher = hdfs_setup
        assert searcher.search("thiswordneverappears").documents == []

    def test_topk_queries_return_k_relevant_documents(self, hdfs_setup):
        _, corpus, _, searcher = hdfs_setup
        profile = profile_documents(corpus.documents)
        frequent_word = profile.most_common_words(1)[0]
        result = searcher.search(frequent_word, top_k=10)
        assert len(result.documents) == 10
        for document in result.documents:
            assert frequent_word in document.text.split()


class TestEndToEndLatency:
    def test_airphant_lookup_uses_one_batch_regardless_of_corpus(self, hdfs_setup):
        store, corpus, _, searcher = hdfs_setup
        profile = profile_documents(corpus.documents)
        for word in sample_query_words(profile, 10, seed=9):
            store.metrics.reset()
            searcher.lookup_postings(word)
            assert store.metrics.round_trips <= 1

    def test_airphant_faster_than_uncached_hierarchical_baselines(self, hdfs_setup):
        store, corpus, _, searcher = hdfs_setup
        lucene = LuceneLikeEngine(store, index_name="e2e/lucene", cache_bytes=0)
        lucene.build(corpus.documents)
        lucene.initialize()
        sqlite = SQLiteLikeEngine(store, index_name="e2e/sqlite", cache_bytes=0)
        sqlite.build(corpus.documents)
        sqlite.initialize()

        profile = profile_documents(corpus.documents)
        words = sample_query_words(profile, 10, seed=13)
        airphant_ms = sum(searcher.search(w, top_k=10).latency_ms for w in words)
        lucene_ms = sum(lucene.search(w, top_k=10).latency_ms for w in words)
        sqlite_ms = sum(sqlite.search(w, top_k=10).latency_ms for w in words)
        assert airphant_ms < lucene_ms
        assert airphant_ms < sqlite_ms

    def test_cross_region_slowdown_is_milder_for_airphant_than_lucene(self, hdfs_setup):
        store, corpus, _, _ = hdfs_setup
        profile = profile_documents(corpus.documents)
        words = sample_query_words(profile, 8, seed=17)

        def mean_latency(active_store, index_name, engine_cls=None):
            if engine_cls is None:
                searcher = AirphantSearcher.open(active_store, index_name="hdfs-index")
                return sum(searcher.search(w, top_k=10).latency_ms for w in words) / len(words)
            engine = engine_cls(active_store, index_name=index_name, cache_bytes=0)
            engine.build(corpus.documents)
            engine.initialize()
            return sum(engine.search(w, top_k=10).latency_ms for w in words) / len(words)

        asia_store = store.with_latency_model(
            AffineLatencyModel(jitter_sigma=0.0, seed=1).with_region("asia-southeast1")
        )
        airphant_local = mean_latency(store, None)
        airphant_far = mean_latency(asia_store, None)
        lucene_local = mean_latency(store, "xr/lucene-local", LuceneLikeEngine)
        lucene_far = mean_latency(asia_store, "xr/lucene-far", LuceneLikeEngine)

        airphant_slowdown = airphant_far / airphant_local
        lucene_slowdown = lucene_far / lucene_local
        assert airphant_slowdown < lucene_slowdown * 1.2  # Airphant degrades no worse


class TestLocalStoreIntegration:
    def test_full_pipeline_on_filesystem_store(self, tmp_path):
        backend = LocalObjectStore(tmp_path / "bucket")
        store = SimulatedCloudStore(backend=backend, latency_model=AffineLatencyModel(jitter_sigma=0.0))
        corpus = generate_zipf(store, SyntheticSpec(500, 200, 8), seed=2)
        builder = AirphantBuilder(store, config=SketchConfig(num_bins=128, seed=2))
        builder.build_from_documents(corpus.documents, index_name="fs-index")
        # A brand-new searcher (fresh process simulation) reads only the persisted blobs.
        fresh_store = SimulatedCloudStore(
            backend=LocalObjectStore(tmp_path / "bucket"),
            latency_model=AffineLatencyModel(jitter_sigma=0.0),
        )
        searcher = AirphantSearcher.open(fresh_store, index_name="fs-index")
        word = corpus.documents[0].text.split()[0]
        result = searcher.search(word)
        expected = {d.ref for d in corpus.documents if word in d.text.split()}
        assert {d.ref for d in result.documents} == expected
