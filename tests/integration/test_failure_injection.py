"""Failure-injection tests: damaged indexes and injected storage faults.

A production searcher must fail loudly and precisely when the persisted index
is damaged — not return silently wrong results.  And when the *storage layer*
(not the index) misbehaves, the resilience wrapper must both preserve answers
and account every retry, hedge, and timeout in its stats/registry counters —
that accounting is what operators alert on.
"""

import pytest

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.index.compaction import HEADER_BLOB_SUFFIX, SUPERPOST_BLOB_SUFFIX
from repro.observability import MetricsRegistry
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.search.searcher import AirphantSearcher
from repro.storage.base import BlobNotFoundError
from repro.storage.faults import FlakyStore
from repro.storage.memory import InMemoryObjectStore
from repro.storage.resilient import ResilientStore


@pytest.fixture
def index_blobs(built_small_index):
    return (
        f"{built_small_index.index_name}/{HEADER_BLOB_SUFFIX}",
        f"{built_small_index.index_name}/{SUPERPOST_BLOB_SUFFIX}",
    )


class TestMissingBlobs:
    def test_missing_header_fails_initialization(self, sim_store, built_small_index, index_blobs):
        header_blob, _ = index_blobs
        sim_store.delete(header_blob)
        with pytest.raises(BlobNotFoundError):
            AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)

    def test_opening_a_nonexistent_index_fails(self, sim_store):
        with pytest.raises(BlobNotFoundError):
            AirphantSearcher.open(sim_store, index_name="never-built")

    def test_missing_superpost_blob_fails_query_not_init(
        self, sim_store, built_small_index, index_blobs
    ):
        _, superpost_blob = index_blobs
        searcher = AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)
        sim_store.delete(superpost_blob)
        with pytest.raises(BlobNotFoundError):
            searcher.search("error")

    def test_missing_document_blob_fails_retrieval(self, sim_store, built_small_index):
        searcher = AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)
        sim_store.delete("corpus/small.txt")
        with pytest.raises(BlobNotFoundError):
            searcher.search("error")


class TestCorruptedBlobs:
    def test_corrupted_header_is_rejected(self, sim_store, built_small_index, index_blobs):
        header_blob, _ = index_blobs
        sim_store.put(header_blob, b"{ not json at all")
        with pytest.raises(Exception):
            AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)

    def test_header_of_wrong_format_is_rejected(self, sim_store, built_small_index, index_blobs):
        header_blob, _ = index_blobs
        sim_store.put(header_blob, b'{"magic": "something-else"}')
        with pytest.raises(ValueError):
            AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)

    def test_truncated_superposts_fail_decoding(self, sim_store, built_small_index, index_blobs):
        _, superpost_blob = index_blobs
        original = sim_store.backend.get(superpost_blob)
        sim_store.put(superpost_blob, original[: len(original) // 4])
        searcher = AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)
        with pytest.raises(ValueError):
            # Some queries may still hit intact prefixes; sweep several words
            # so at least one read crosses the truncation point.
            for word in ["error", "info", "warn", "node1", "node2", "node3", "beta", "alpha"]:
                searcher.search(word)

    def test_rebuilding_after_corruption_recovers(self, sim_store, small_documents, small_config):
        from repro.index.builder import AirphantBuilder

        builder = AirphantBuilder(sim_store, config=small_config)
        built = builder.build_from_documents(small_documents, index_name="recover-index")
        sim_store.put(built.header_blob, b"garbage")
        # Rebuild in place; a fresh searcher must work again.
        builder.build_from_documents(small_documents, index_name="recover-index")
        searcher = AirphantSearcher.open(sim_store, index_name="recover-index")
        assert len(searcher.search("error").documents) == 5


WALL_CLOCK_CORPUS = "\n".join(
    [
        "error disk full on node1",
        "info service started on node1",
        "error timeout connecting to node2",
        "warn retry after error on node3",
        "error disk failure on node3",
        "info heartbeat ok node2",
    ]
)


@pytest.fixture
def flaky_base() -> InMemoryObjectStore:
    """A wall-clock (in-memory) store with a small index already built."""
    base = InMemoryObjectStore()
    base.put("corpus/small.txt", WALL_CLOCK_CORPUS.encode("utf-8"))
    documents = list(LineDelimitedCorpusParser().parse(base, ["corpus/small.txt"]))
    AirphantBuilder(base, config=SketchConfig(num_bins=64, seed=7)).build_from_documents(
        documents, index_name="small-index"
    )
    return base


class TestResilienceCounters:
    """Injected faults must be visible in the retry/hedge/timeout counters."""

    def test_retries_absorb_injected_errors_and_are_counted(self, flaky_base):
        registry = MetricsRegistry()
        flaky = FlakyStore(flaky_base, error_rate=0.25, seed=3)
        store = ResilientStore(
            flaky, retries=6, backoff_ms=0.1, backoff_jitter=0.0, metrics=registry
        )
        searcher = AirphantSearcher.open(store, index_name="small-index")
        clean = AirphantSearcher.open(flaky_base, index_name="small-index")
        for word in ["error", "disk", "node3", "info"]:
            assert [d.text for d in searcher.search(word).documents] == [
                d.text for d in clean.search(word).documents
            ]
        searcher.close()
        clean.close()

        stats = store.stats
        assert flaky.injected_errors > 0
        assert stats.retries > 0
        assert stats.recoveries > 0
        assert stats.failures == 0
        # attempts = operations + retries, exactly — no lost updates even
        # though pool threads report concurrently.
        assert stats.attempts == stats.operations + stats.retries
        # The registry mirrors the stats: one accounting path, two views.
        assert (
            registry.counter("airphant_resilience_retries_total").value()
            == stats.retries
        )
        assert (
            registry.counter("airphant_resilience_recoveries_total").value()
            == stats.recoveries
        )
        store.close()

    def test_hedge_wins_when_a_slow_replica_is_injected(self, flaky_base):
        registry = MetricsRegistry()
        flaky = FlakyStore(flaky_base, slow_ms=250.0, seed=0)
        store = ResilientStore(flaky, retries=0, hedge_ms=10.0, metrics=registry)
        # Exactly one scripted straggler: the read that draws it sleeps
        # 250 ms, its hedge fires after the 10 ms floor, answers instantly,
        # and wins the race — deterministically, whichever of the query's
        # concurrent reads consumed the scripted outcome.
        flaky.script(["slow"])
        searcher = AirphantSearcher.open(store, index_name="small-index")
        result = searcher.search("error")
        assert len(result.documents) == 4
        searcher.close()

        assert flaky.injected_slow == 1
        assert store.stats.hedges == 1
        assert store.stats.hedge_wins == 1
        assert registry.counter("airphant_resilience_hedges_total").value() == 1
        assert registry.counter("airphant_resilience_hedge_wins_total").value() == 1
        store.close()

    def test_timeouts_are_counted_and_rescued_by_retry(self, flaky_base):
        registry = MetricsRegistry()
        flaky_base.put("blob", b"payload")
        flaky = FlakyStore(flaky_base, slow_ms=400.0, seed=0)
        store = ResilientStore(
            flaky, retries=1, backoff_ms=0.1, timeout_s=0.05, metrics=registry
        )
        flaky.script(["slow", "ok"])
        assert store.get("blob") == b"payload"
        assert store.stats.timeouts == 1
        assert store.stats.retries == 1
        assert store.stats.recoveries == 1
        assert store.stats.failures == 0
        assert registry.counter("airphant_resilience_timeouts_total").value() == 1
        store.close()
