"""Failure-injection tests: corrupted or missing index blobs.

A production searcher must fail loudly and precisely when the persisted index
is damaged — not return silently wrong results.
"""

import pytest

from repro.index.compaction import HEADER_BLOB_SUFFIX, SUPERPOST_BLOB_SUFFIX
from repro.search.searcher import AirphantSearcher
from repro.storage.base import BlobNotFoundError


@pytest.fixture
def index_blobs(built_small_index):
    return (
        f"{built_small_index.index_name}/{HEADER_BLOB_SUFFIX}",
        f"{built_small_index.index_name}/{SUPERPOST_BLOB_SUFFIX}",
    )


class TestMissingBlobs:
    def test_missing_header_fails_initialization(self, sim_store, built_small_index, index_blobs):
        header_blob, _ = index_blobs
        sim_store.delete(header_blob)
        with pytest.raises(BlobNotFoundError):
            AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)

    def test_opening_a_nonexistent_index_fails(self, sim_store):
        with pytest.raises(BlobNotFoundError):
            AirphantSearcher.open(sim_store, index_name="never-built")

    def test_missing_superpost_blob_fails_query_not_init(
        self, sim_store, built_small_index, index_blobs
    ):
        _, superpost_blob = index_blobs
        searcher = AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)
        sim_store.delete(superpost_blob)
        with pytest.raises(BlobNotFoundError):
            searcher.search("error")

    def test_missing_document_blob_fails_retrieval(self, sim_store, built_small_index):
        searcher = AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)
        sim_store.delete("corpus/small.txt")
        with pytest.raises(BlobNotFoundError):
            searcher.search("error")


class TestCorruptedBlobs:
    def test_corrupted_header_is_rejected(self, sim_store, built_small_index, index_blobs):
        header_blob, _ = index_blobs
        sim_store.put(header_blob, b"{ not json at all")
        with pytest.raises(Exception):
            AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)

    def test_header_of_wrong_format_is_rejected(self, sim_store, built_small_index, index_blobs):
        header_blob, _ = index_blobs
        sim_store.put(header_blob, b'{"magic": "something-else"}')
        with pytest.raises(ValueError):
            AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)

    def test_truncated_superposts_fail_decoding(self, sim_store, built_small_index, index_blobs):
        _, superpost_blob = index_blobs
        original = sim_store.backend.get(superpost_blob)
        sim_store.put(superpost_blob, original[: len(original) // 4])
        searcher = AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)
        with pytest.raises(ValueError):
            # Some queries may still hit intact prefixes; sweep several words
            # so at least one read crosses the truncation point.
            for word in ["error", "info", "warn", "node1", "node2", "node3", "beta", "alpha"]:
                searcher.search(word)

    def test_rebuilding_after_corruption_recovers(self, sim_store, small_documents, small_config):
        from repro.index.builder import AirphantBuilder

        builder = AirphantBuilder(sim_store, config=small_config)
        built = builder.build_from_documents(small_documents, index_name="recover-index")
        sim_store.put(built.header_blob, b"garbage")
        # Rebuild in place; a fresh searcher must work again.
        builder.build_from_documents(small_documents, index_name="recover-index")
        searcher = AirphantSearcher.open(sim_store, index_name="recover-index")
        assert len(searcher.search("error").documents) == 5
