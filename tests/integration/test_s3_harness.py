"""MinIO-style integration: build → shard → search → metrics over ``s3://``.

By default the whole flow runs against the in-process S3 emulator from
``tests/harness`` (ephemeral port, no external service).  Set
``AIRPHANT_S3_TEST_ENDPOINT`` to a real S3-compatible endpoint (a local
MinIO, Ceph RGW, or a sandbox bucket) to run the identical flow against it:

.. code-block:: console

    $ export AIRPHANT_S3_TEST_ENDPOINT=http://127.0.0.1:9000
    $ export AIRPHANT_S3_TEST_BUCKET=airphant-it      # default: test-bucket
    $ export AWS_ACCESS_KEY_ID=... AWS_SECRET_ACCESS_KEY=...   # if signed
    $ PYTHONPATH=src python -m pytest tests/integration/test_s3_harness.py

The real-endpoint mode writes under a dedicated ``airphant-it/`` key prefix
and deletes what it wrote.
"""

from __future__ import annotations

import os
import re

import pytest
from harness.prometheus import parse_prometheus

from repro.core.config import SketchConfig
from repro.observability import MetricsRegistry
from repro.service import AirphantService, SearchRequest, ServiceConfig
from repro.storage.registry import open_store

REAL_ENDPOINT = os.environ.get("AIRPHANT_S3_TEST_ENDPOINT", "")
REAL_BUCKET = os.environ.get("AIRPHANT_S3_TEST_BUCKET", "test-bucket")

CORPUS = "\n".join(
    f"{level} node{i % 7} event-{i:04d} {'disk' if i % 3 else 'net'}"
    for i, level in enumerate(
        ["error", "info", "warn", "info", "error", "debug"] * 40
    )
).encode("utf-8")


@pytest.fixture
def s3_uri(s3_emulator):
    """An ``s3://`` URI — the emulator's, or the operator-provided endpoint."""
    if REAL_ENDPOINT:
        yield f"s3://{REAL_BUCKET}/airphant-it?endpoint={REAL_ENDPOINT}"
        # Clean up everything the flow wrote to the real bucket.
        store = open_store(f"s3://{REAL_BUCKET}/airphant-it?endpoint={REAL_ENDPOINT}")
        for blob in store.list_blobs():
            store.delete(blob)
        store.close()
    else:
        yield s3_emulator.uri()


class TestS3EndToEnd:
    def test_build_shard_search_metrics_flow(self, s3_uri):
        metrics = MetricsRegistry()
        config = ServiceConfig(retries=1, coalesce_gap=4096)
        service = AirphantService(
            config.wrap_store(open_store(s3_uri)),
            config,
            store_uri=s3_uri,
            metrics=metrics,
        )
        service.store.put("corpora/events.txt", CORPUS)

        # Build sharded: 3 shards, hash partitioning.
        info = service.build_index(
            "events",
            ["corpora/events.txt"],
            sketch_config=SketchConfig(num_bins=128),
            num_shards=3,
        )
        assert info.num_shards == 3
        assert info.num_documents == 240

        # Search all three modes across the sharded layout.
        keyword = service.search(SearchRequest(query="error", index="events"))
        assert keyword.num_results == 80
        boolean = service.search(
            SearchRequest(query="error AND disk", index="events", mode="boolean")
        )
        assert 0 < boolean.num_results < keyword.num_results
        pattern = r"error\s+node3"
        regex = service.search(
            SearchRequest(query=pattern, index="events", mode="regex")
        )
        expected = sum(
            1 for line in CORPUS.decode("utf-8").split("\n") if re.search(pattern, line)
        )
        assert regex.num_results == expected > 0

        # Catalog discovery over ListObjectsV2 sees the sharded index.
        assert [entry.name for entry in service.list_indexes()] == ["events"]

        # Facade accounting landed in the private registry and renders as
        # valid Prometheus exposition.
        families = parse_prometheus(metrics.to_prometheus())
        queries = families["airphant_queries_total"]
        assert queries.value(mode="keyword", index="events") == 1
        assert queries.value(mode="boolean", index="events") == 1
        assert queries.value(mode="regex", index="events") == 1
        assert families["airphant_builds_total"].total() == 1
        latency = families["airphant_query_seconds"]
        assert latency.histogram_count(mode="keyword", index="events") == 1
        assert latency.histogram_count(mode="boolean", index="events") == 1
        assert latency.histogram_count(mode="regex", index="events") == 1

        service.close()

    def test_healthz_reports_backend_traffic(self, s3_uri):
        service = AirphantService.from_uri(s3_uri)
        service.store.put("corpora/tiny.txt", b"error a\ninfo b")
        service.build_index("tiny", ["corpora/tiny.txt"], sketch_config=SketchConfig(num_bins=32))
        service.search(SearchRequest(query="error", index="tiny"))
        health = service.health()
        assert health["status"] == "ok"
        summary = health["metrics"]
        # Real S3 traffic shows up in the backend request counters.
        assert summary["airphant_backend_requests_total"] > 0
        assert summary["airphant_backend_request_seconds"]["count"] > 0
        assert summary["airphant_queries_total"] >= 1
        service.close()
