"""An in-process S3 emulator for integration tests.

A stdlib ``http.server`` speaking just enough of the S3 REST protocol
(path-style object GET/HEAD/PUT/DELETE plus paginated ListObjectsV2 XML) to
exercise :class:`repro.storage.s3.S3ObjectStore` end to end — the same
surface a MinIO container would provide, without needing one.  Promoted out
of ``tests/storage/test_s3.py`` so every test (and the CI integration job)
can spin one up via the ``s3_emulator`` fixture in ``tests/conftest.py``.

The emulator binds an ephemeral port on 127.0.0.1 and keeps objects in a
plain dict (``emulator.objects``), which tests may inspect or pre-seed
directly.  ``Authorization`` headers of every request are collected in
``emulator.seen_auth_headers`` for SigV4 assertions.
"""

from __future__ import annotations

import http.server
import threading
import urllib.parse
from xml.sax.saxutils import escape

#: Objects returned per ListObjectsV2 page — tiny so listing more than a
#: handful of blobs always exercises the continuation-token path.
LIST_PAGE_SIZE = 3


class _S3Handler(http.server.BaseHTTPRequestHandler):
    """Minimal path-style S3 endpoint backed by a dict on the server."""

    protocol_version = "HTTP/1.1"

    def log_message(self, *args):  # noqa: A002 - quiet test output
        pass

    # -- helpers -----------------------------------------------------------------

    def _parse(self):
        parts = urllib.parse.urlsplit(self.path)
        segments = parts.path.lstrip("/").split("/", 1)
        bucket = segments[0]
        key = urllib.parse.unquote(segments[1]) if len(segments) > 1 else ""
        query = dict(urllib.parse.parse_qsl(parts.query, keep_blank_values=True))
        return bucket, key, query

    def _respond(self, status, body=b"", content_type="application/octet-stream"):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _record_auth(self):
        self.server.seen_auth_headers.append(self.headers.get("Authorization"))

    # -- verbs -------------------------------------------------------------------

    def do_GET(self):  # noqa: N802 - http.server API
        self._record_auth()
        bucket, key, query = self._parse()
        if bucket != self.server.bucket:
            self._respond(404)
            return
        if not key and query.get("list-type") == "2":
            self._list(query)
            return
        data = self.server.objects.get(key)
        if data is None:
            self._respond(404)
            return
        header = self.headers.get("Range")
        if header and header.startswith("bytes="):
            start_s, _, end_s = header[len("bytes="):].partition("-")
            start = int(start_s)
            if start >= len(data):
                self._respond(416)
                return
            end = int(end_s) if end_s else len(data) - 1
            self._respond(206, data[start : end + 1])
            return
        self._respond(200, data)

    def do_HEAD(self):  # noqa: N802 - http.server API
        self._record_auth()
        _, key, _ = self._parse()
        data = self.server.objects.get(key)
        if data is None:
            self._respond(404)
        else:
            self._respond(200, data)  # body suppressed for HEAD

    def do_PUT(self):  # noqa: N802 - http.server API
        self._record_auth()
        _, key, _ = self._parse()
        length = int(self.headers.get("Content-Length") or 0)
        self.server.objects[key] = self.rfile.read(length)
        self._respond(200)

    def do_DELETE(self):  # noqa: N802 - http.server API
        self._record_auth()
        _, key, _ = self._parse()
        self.server.objects.pop(key, None)
        self._respond(204)

    def _list(self, query):
        prefix = query.get("prefix", "")
        token = query.get("continuation-token", "")
        keys = sorted(k for k in self.server.objects if k.startswith(prefix))
        start = int(token) if token else 0
        page = keys[start : start + LIST_PAGE_SIZE]
        truncated = start + LIST_PAGE_SIZE < len(keys)
        contents = "".join(
            f"<Contents><Key>{escape(key)}</Key></Contents>" for key in page
        )
        next_token = (
            f"<NextContinuationToken>{start + LIST_PAGE_SIZE}</NextContinuationToken>"
            if truncated
            else ""
        )
        body = (
            '<?xml version="1.0" encoding="UTF-8"?>'
            '<ListBucketResult xmlns="http://s3.amazonaws.com/doc/2006-03-01/">'
            f"<IsTruncated>{'true' if truncated else 'false'}</IsTruncated>"
            f"{contents}{next_token}</ListBucketResult>"
        )
        self._respond(200, body.encode("utf-8"), content_type="application/xml")


class S3Emulator:
    """A started-on-demand S3 endpoint on an ephemeral 127.0.0.1 port.

    Usable as a context manager or via explicit :meth:`start`/:meth:`stop`;
    the ``s3_emulator`` fixture in ``tests/conftest.py`` wraps the former.

    Attributes
    ----------
    bucket:
        The only bucket the emulator answers for (object requests against
        other buckets get 404, like a real endpoint without that bucket).
    objects:
        Key → bytes backing dict; inspect or pre-seed freely.
    seen_auth_headers:
        The ``Authorization`` header (or ``None``) of every request served.
    """

    def __init__(self, bucket: str = "test-bucket") -> None:
        self.bucket = bucket
        self.objects: dict[str, bytes] = {}
        self.seen_auth_headers: list[str | None] = []
        self._server: http.server.ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "S3Emulator":
        """Bind an ephemeral port and serve in a daemon thread."""
        if self._server is not None:
            return self
        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _S3Handler)
        server.bucket = self.bucket
        server.objects = self.objects
        server.seen_auth_headers = self.seen_auth_headers
        self._server = server
        self._thread = threading.Thread(target=server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5)

    def __enter__(self) -> "S3Emulator":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def endpoint(self) -> str:
        """Base URL of the running emulator (requires :meth:`start`)."""
        assert self._server is not None, "emulator not started"
        return f"http://127.0.0.1:{self._server.server_address[1]}"

    def uri(self, prefix: str = "") -> str:
        """A registry-resolvable ``s3://`` URI pointing at this emulator."""
        path = f"{self.bucket}/{prefix}" if prefix else self.bucket
        return f"s3://{path}?endpoint={self.endpoint}"
