"""Unit tests for the rank-metric helpers in :mod:`harness.relevance`."""

from __future__ import annotations

import pytest

from harness.relevance import (
    average_precision,
    dcg_at_k,
    evaluate_rankings,
    ndcg_at_k,
    precision_at_k,
)

JUDGMENTS = {1: 4, 2: 2, 3: 1}


class TestNdcg:
    def test_ideal_ordering_scores_one(self):
        assert ndcg_at_k([1, 2, 3], JUDGMENTS, k=10) == pytest.approx(1.0)

    def test_reversed_ordering_scores_below_one(self):
        value = ndcg_at_k([3, 2, 1], JUDGMENTS, k=10)
        assert 0.0 < value < 1.0

    def test_irrelevant_results_score_zero(self):
        assert ndcg_at_k([7, 8, 9], JUDGMENTS, k=10) == 0.0

    def test_no_relevant_judgments_scores_zero(self):
        assert ndcg_at_k([1, 2], {1: 0, 2: 0}, k=10) == 0.0

    def test_higher_gains_earlier_always_wins(self):
        better = ndcg_at_k([1, 3, 2], JUDGMENTS, k=10)
        worse = ndcg_at_k([2, 3, 1], JUDGMENTS, k=10)
        assert better > worse

    def test_dcg_uses_exponential_gains(self):
        # Gain 2 at rank 1: (2^2 - 1) / log2(2) = 3.
        assert dcg_at_k([2], JUDGMENTS, k=1) == pytest.approx(3.0)


class TestPrecision:
    def test_counts_relevant_in_prefix(self):
        assert precision_at_k([1, 7, 2, 8], JUDGMENTS, k=4) == pytest.approx(0.5)

    def test_short_result_lists_are_penalized(self):
        # 3 relevant results against k=10 is 0.3, not 1.0.
        assert precision_at_k([1, 2, 3], JUDGMENTS, k=10) == pytest.approx(0.3)


class TestAveragePrecision:
    def test_perfect_ranking_is_one(self):
        assert average_precision([1, 2, 3], JUDGMENTS) == pytest.approx(1.0)

    def test_missing_relevant_documents_cost_score(self):
        assert average_precision([1], JUDGMENTS) == pytest.approx(1 / 3)

    def test_no_relevant_judgments_is_zero(self):
        assert average_precision([1, 2], {}) == 0.0


class TestEvaluateRankings:
    def test_averages_across_queries(self):
        metrics = evaluate_rankings(
            [[1, 2, 3], [3, 2, 1]], [JUDGMENTS, JUDGMENTS], k=3
        )
        assert metrics["ndcg@3"] == pytest.approx(
            (ndcg_at_k([1, 2, 3], JUDGMENTS, 3) + ndcg_at_k([3, 2, 1], JUDGMENTS, 3)) / 2
        )
        assert metrics["p@3"] == pytest.approx(1.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            evaluate_rankings([[1]], [JUDGMENTS, JUDGMENTS])

    def test_empty_batch_is_all_zero(self):
        assert evaluate_rankings([], [], k=5) == {"ndcg@5": 0.0, "p@5": 0.0, "map": 0.0}
