"""Reusable integration-test harness for the Airphant reproduction.

Importable from any test module (``tests/conftest.py`` puts the ``tests/``
directory on ``sys.path``):

* :mod:`harness.s3_emulator` — an in-process, ephemeral-port S3 endpoint
  (path-style GET/HEAD/PUT/DELETE + paginated ListObjectsV2) for MinIO-style
  end-to-end tests without a real service;
* :mod:`harness.prometheus` — a strict parser for the Prometheus text
  exposition format, used to assert ``GET /metrics`` payloads are valid;
* :mod:`harness.stores` — counting/observing store wrappers for asserting
  exactly what traffic reached a backend;
* :mod:`harness.crashpoints` — a fault-point store wrapper that simulates
  process death at exact WAL/flush/compaction mutation points, for
  crash-consistency tests of the mutable-document lifecycle.
"""

from harness.crashpoints import FaultPoint, FaultPointStore, SimulatedCrash
from harness.prometheus import MetricFamily, parse_prometheus
from harness.s3_emulator import S3Emulator
from harness.stores import CountingStore

__all__ = [
    "CountingStore",
    "FaultPoint",
    "FaultPointStore",
    "MetricFamily",
    "S3Emulator",
    "SimulatedCrash",
    "parse_prometheus",
]
