"""Shared test corpora.

Importable as ``harness.corpora`` from any test (the tests directory is on
``sys.path``), unlike ``conftest`` whose module name is ambiguous when the
full suite collects ``benchmarks/conftest.py`` too.
"""

#: A small log-like corpus with known term/document relationships, used by
#: most unit and integration tests.  One document per line.
SMALL_CORPUS_TEXT = "\n".join(
    [
        "error disk full on node1",
        "info service started on node1",
        "error timeout connecting to node2",
        "warn retry after error on node3",
        "info heartbeat ok node2",
        "error disk failure on node3",
        "debug cache miss for key alpha",
        "info snapshot completed node1",
        "error timeout reading block beta",
        "warn slow response from node2",
    ]
)
