"""Observing store wrappers for exact-traffic assertions.

:class:`CountingStore` wraps any :class:`~repro.storage.base.ObjectStore`
and counts what actually reaches the backend — read calls and bytes
returned — so tests can assert that pipeline/resilience metrics are *exactly
consistent* with observed store traffic, not merely plausible.
"""

from __future__ import annotations

import threading

from repro.storage.base import ObjectStore


class CountingStore(ObjectStore):
    """Pass-through wrapper counting the reads that reach the backend."""

    def __init__(self, backend: ObjectStore) -> None:
        self._backend = backend
        self._lock = threading.Lock()
        #: get() calls served.
        self.get_calls = 0
        #: get_range() calls served.
        self.range_calls = 0
        #: Total bytes returned across get()/get_range().
        self.bytes_returned = 0

    @property
    def backend(self) -> ObjectStore:
        return self._backend

    @property
    def read_calls(self) -> int:
        """All read calls (whole-object plus range) served."""
        return self.get_calls + self.range_calls

    def reset_counts(self) -> None:
        with self._lock:
            self.get_calls = 0
            self.range_calls = 0
            self.bytes_returned = 0

    # -- ObjectStore interface ---------------------------------------------------

    def put(self, name: str, data: bytes) -> None:
        self._backend.put(name, data)

    def get(self, name: str) -> bytes:
        data = self._backend.get(name)
        with self._lock:
            self.get_calls += 1
            self.bytes_returned += len(data)
        return data

    def get_range(self, name: str, offset: int, length: int | None = None) -> bytes:
        data = self._backend.get_range(name, offset, length)
        with self._lock:
            self.range_calls += 1
            self.bytes_returned += len(data)
        return data

    def size(self, name: str) -> int:
        return self._backend.size(name)

    def exists(self, name: str) -> bool:
        return self._backend.exists(name)

    def delete(self, name: str) -> None:
        self._backend.delete(name)

    def list_blobs(self, prefix: str = "") -> list[str]:
        return self._backend.list_blobs(prefix)

    def close(self) -> None:
        super().close()
        self._backend.close()
