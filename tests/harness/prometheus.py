"""A strict parser for the Prometheus text exposition format (0.0.4).

The ``/metrics`` acceptance criterion is "returns *valid* Prometheus text
exposition", so the tests need an independent implementation of the format
to check the server's output against — this module is that implementation.
It parses ``# HELP`` / ``# TYPE`` headers and sample lines (with full label
unescaping) and *validates* the structural rules a real scraper relies on:

* sample names must match the metric-name grammar;
* ``TYPE`` must be declared before (and at most once for) a family's samples;
* histogram families must carry, per label set: cumulative, non-decreasing
  ``_bucket`` series ending in ``le="+Inf"``, plus ``_sum`` and ``_count``
  with ``count == +Inf bucket``.

Any violation raises :class:`ValueError` with the offending line.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_LINE = re.compile(
    rf"^(?P<name>{_NAME})(?:\{{(?P<labels>.*)\}})?\s+(?P<value>\S+)$"
)
_HELP_LINE = re.compile(rf"^# HELP (?P<name>{_NAME}) (?P<help>.*)$")
_TYPE_LINE = re.compile(
    rf"^# TYPE (?P<name>{_NAME}) (?P<kind>counter|gauge|histogram|summary|untyped)$"
)
_LABEL = re.compile(rf'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


@dataclass
class Sample:
    """One parsed sample line."""

    name: str
    labels: dict[str, str]
    value: float


@dataclass
class MetricFamily:
    """All samples sharing one declared metric family."""

    name: str
    kind: str
    help: str = ""
    samples: list[Sample] = field(default_factory=list)

    def value(self, **labels: str) -> float:
        """The single sample value matching ``labels`` exactly."""
        matches = [s for s in self.samples if s.labels == labels and s.name == self.name]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} samples of {self.name} match {labels}")
        return matches[0].value

    def total(self) -> float:
        """Sum over every plain (non ``_bucket``/``_sum``/``_count``) sample."""
        return sum(s.value for s in self.samples if s.name == self.name)

    def histogram_count(self, **labels: str) -> float:
        """The ``_count`` of the histogram series matching ``labels``."""
        matches = [
            s
            for s in self.samples
            if s.name == f"{self.name}_count" and s.labels == labels
        ]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} _count samples of {self.name} match {labels}")
        return matches[0].value


_ESCAPE = re.compile(r"\\(.)")
_UNESCAPES = {"n": "\n", '"': '"', "\\": "\\"}


def _unescape_label(value: str) -> str:
    # Process escapes left to right in one pass: sequential str.replace
    # calls would misdecode e.g. '\\\\n' (escaped backslash + literal 'n')
    # as backslash + newline.
    return _ESCAPE.sub(lambda match: _UNESCAPES.get(match.group(1), match.group(0)), value)


def _parse_labels(raw: str, line: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    rest = raw
    while rest:
        match = _LABEL.match(rest)
        if not match:
            raise ValueError(f"malformed label block in line: {line!r}")
        labels[match.group("name")] = _unescape_label(match.group("value"))
        rest = rest[match.end() :]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise ValueError(f"malformed label separator in line: {line!r}")
    return labels


def _parse_value(raw: str, line: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"malformed sample value in line: {line!r}") from None


def _family_of(sample_name: str, kinds: dict[str, str]) -> str:
    """Map a sample name to its declared family (histogram suffixes fold)."""
    if sample_name in kinds:
        return sample_name
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if kinds.get(base) == "histogram":
                return base
    raise ValueError(f"sample {sample_name!r} has no preceding # TYPE declaration")


def _validate_histogram(family: MetricFamily) -> None:
    by_labelset: dict[tuple[tuple[str, str], ...], dict[str, object]] = {}
    for sample in family.samples:
        labels = dict(sample.labels)
        le = labels.pop("le", None)
        key = tuple(sorted(labels.items()))
        state = by_labelset.setdefault(key, {"buckets": [], "sum": None, "count": None})
        if sample.name == f"{family.name}_bucket":
            if le is None:
                raise ValueError(f"{sample.name} sample without an le label")
            bound = math.inf if le == "+Inf" else float(le)
            state["buckets"].append((bound, sample.value))
        elif sample.name == f"{family.name}_sum":
            state["sum"] = sample.value
        elif sample.name == f"{family.name}_count":
            state["count"] = sample.value
        else:
            raise ValueError(f"unexpected sample {sample.name!r} in histogram family")
    for key, state in by_labelset.items():
        buckets = sorted(state["buckets"])
        if not buckets or buckets[-1][0] != math.inf:
            raise ValueError(f"histogram {family.name}{dict(key)} lacks an le=\"+Inf\" bucket")
        cumulative = [count for _, count in buckets]
        if any(b < a for a, b in zip(cumulative, cumulative[1:])):
            raise ValueError(f"histogram {family.name}{dict(key)} buckets are not cumulative")
        if state["sum"] is None or state["count"] is None:
            raise ValueError(f"histogram {family.name}{dict(key)} lacks _sum or _count")
        if state["count"] != cumulative[-1]:
            raise ValueError(
                f"histogram {family.name}{dict(key)}: _count {state['count']} != "
                f"+Inf bucket {cumulative[-1]}"
            )


def parse_prometheus(text: str) -> dict[str, MetricFamily]:
    """Parse and validate one exposition payload.

    Returns the metric families keyed by name; raises :class:`ValueError`
    on any formatting or structural violation.
    """
    families: dict[str, MetricFamily] = {}
    kinds: dict[str, str] = {}
    helps: dict[str, str] = {}
    for line in text.split("\n"):
        if not line:
            continue
        if line.startswith("#"):
            help_match = _HELP_LINE.match(line)
            if help_match:
                helps[help_match.group("name")] = help_match.group("help")
                continue
            type_match = _TYPE_LINE.match(line)
            if type_match:
                name = type_match.group("name")
                if name in kinds:
                    raise ValueError(f"duplicate # TYPE for {name!r}")
                kinds[name] = type_match.group("kind")
                families[name] = MetricFamily(
                    name=name, kind=kinds[name], help=helps.get(name, "")
                )
                continue
            raise ValueError(f"malformed comment line: {line!r}")
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"malformed sample line: {line!r}")
        sample = Sample(
            name=match.group("name"),
            labels=_parse_labels(match.group("labels") or "", line),
            value=_parse_value(match.group("value"), line),
        )
        families[_family_of(sample.name, kinds)].samples.append(sample)
    for family in families.values():
        if family.kind == "histogram":
            _validate_histogram(family)
    return families
