"""Ranking-quality metrics against graded relevance judgments.

The reusable evaluation half of the Cranfield methodology: given a ranked
list of document identifiers and a ``{doc_id: gain}`` judgment map (see
:func:`repro.workloads.cranfield.load_qrels` /
:func:`~repro.workloads.cranfield.generate_judged_queries`), compute the
standard rank metrics — nDCG@k, Precision@k, and (Mean) Average Precision.
Used by the relevance regression tests and the ranking benchmark, so a
quality floor asserted in CI and a number reported in RESULTS.md are always
the same computation.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def dcg_at_k(ranked_ids: Sequence[int], judgments: Mapping[int, int], k: int) -> float:
    """Discounted cumulative gain of the first ``k`` ranked documents."""
    total = 0.0
    for position, doc_id in enumerate(ranked_ids[:k]):
        gain = judgments.get(doc_id, 0)
        if gain > 0:
            total += (2**gain - 1) / math.log2(position + 2)
    return total


def ndcg_at_k(ranked_ids: Sequence[int], judgments: Mapping[int, int], k: int = 10) -> float:
    """Normalized DCG@k in [0, 1] (1.0 = the ideal ordering; 0.0 if nothing
    relevant is judged)."""
    ideal_gains = sorted(judgments.values(), reverse=True)
    ideal = 0.0
    for position, gain in enumerate(ideal_gains[:k]):
        if gain > 0:
            ideal += (2**gain - 1) / math.log2(position + 2)
    if ideal == 0.0:
        return 0.0
    return dcg_at_k(ranked_ids, judgments, k) / ideal


def precision_at_k(
    ranked_ids: Sequence[int], judgments: Mapping[int, int], k: int = 10
) -> float:
    """Fraction of the first ``k`` results that are relevant (gain > 0).

    The denominator is ``k`` even when fewer results were returned — an
    engine that finds 3 relevant documents out of a possible 10 scores 0.3
    whether it padded the list or not.
    """
    if k <= 0:
        return 0.0
    relevant = sum(1 for doc_id in ranked_ids[:k] if judgments.get(doc_id, 0) > 0)
    return relevant / k


def average_precision(ranked_ids: Sequence[int], judgments: Mapping[int, int]) -> float:
    """Average of precision values at each relevant rank (AP).

    Normalized by the total number of relevant documents in the judgments,
    so leaving relevant documents unretrieved costs score.
    """
    num_relevant = sum(1 for gain in judgments.values() if gain > 0)
    if num_relevant == 0:
        return 0.0
    hits = 0
    total = 0.0
    for position, doc_id in enumerate(ranked_ids):
        if judgments.get(doc_id, 0) > 0:
            hits += 1
            total += hits / (position + 1)
    return total / num_relevant


def evaluate_rankings(
    rankings: Sequence[Sequence[int]],
    judgment_maps: Sequence[Mapping[int, int]],
    k: int = 10,
) -> dict[str, float]:
    """Mean nDCG@k / P@k / MAP over a batch of (ranking, judgments) pairs."""
    if len(rankings) != len(judgment_maps):
        raise ValueError(
            f"got {len(rankings)} rankings but {len(judgment_maps)} judgment maps"
        )
    if not rankings:
        return {f"ndcg@{k}": 0.0, f"p@{k}": 0.0, "map": 0.0}
    count = len(rankings)
    return {
        f"ndcg@{k}": sum(
            ndcg_at_k(ranked, judgments, k)
            for ranked, judgments in zip(rankings, judgment_maps)
        )
        / count,
        f"p@{k}": sum(
            precision_at_k(ranked, judgments, k)
            for ranked, judgments in zip(rankings, judgment_maps)
        )
        / count,
        "map": sum(
            average_precision(ranked, judgments)
            for ranked, judgments in zip(rankings, judgment_maps)
        )
        / count,
    }
