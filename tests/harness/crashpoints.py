"""Fault-point store wrapper for crash-consistency tests.

Every durable transition in the ingest lifecycle is one store mutation —
a WAL segment PUT, the ingest-manifest commit PUT, a delta header PUT, the
append-only index-manifest swap PUT, a retired-blob DELETE.  A crash test
therefore reduces to: kill the process at exactly one of those mutations,
"restart" by opening a fresh service over the same backend, and assert the
recovered state.  :class:`FaultPointStore` provides the kill switch — it
passes everything through to a backend until an armed :class:`FaultPoint`
matches, then raises :class:`SimulatedCrash` either *before* the mutation
reaches the backend (the write is lost) or *after* it (the write is durable
but the caller never learns of it).

Typical use::

    store = FaultPointStore(InMemoryObjectStore())
    store.arm("put", "ingest.json", when="before")   # die at commit point
    with pytest.raises(SimulatedCrash):
        live.append(["doc one", "doc two"])
    store.disarm()
    # "restart": reopen over the same backend and assert recovery
    reopened = LiveIndex(store, "idx")

Fault points are one-shot (each fires once, then disarms itself) and matched
in arming order; ``skip`` skips the first N matching calls, which targets
"the second manifest PUT of this operation" style kill points.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.storage.base import ObjectStore

__all__ = ["FaultPoint", "FaultPointStore", "SimulatedCrash"]


class SimulatedCrash(BaseException):
    """An injected process death at a store fault point.

    Deliberately a ``BaseException`` subclass: a real ``kill -9`` is not
    catchable, so recovery code under test must not be able to swallow it
    with ``except Exception`` cleanup/undo paths — any state it leaves
    behind must be repaired by *replay*, exactly as after a power cut.
    """

    def __init__(self, op: str, blob: str, when: str) -> None:
        super().__init__(f"simulated crash {when} {op} {blob!r}")
        self.op = op
        self.blob = blob
        self.when = when


@dataclass
class FaultPoint:
    """One armed kill point: die on the matching store mutation.

    ``op`` is the store method name (``"put"`` or ``"delete"``); ``pattern``
    is a substring of the blob name; ``when`` selects whether the backend
    sees the mutation (``"after"``) or not (``"before"``); ``skip`` ignores
    the first N matching calls.
    """

    op: str
    pattern: str
    when: str = "before"
    skip: int = 0
    #: Whether this point has fired (it disarms itself after firing).
    fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.op not in ("put", "delete"):
            raise ValueError(f"op must be 'put' or 'delete', got {self.op!r}")
        if self.when not in ("before", "after"):
            raise ValueError(f"when must be 'before' or 'after', got {self.when!r}")
        if self.skip < 0:
            raise ValueError(f"skip must be non-negative, got {self.skip}")

    def matches(self, op: str, blob: str) -> bool:
        return op == self.op and self.pattern in blob


class FaultPointStore(ObjectStore):
    """Pass-through store that dies at armed mutation points.

    Reads are never faulted — a crashed process stops issuing them, so
    killing a read adds no coverage beyond killing the mutation before it.
    Thread-safe: the ingest background worker may mutate concurrently with
    the test thread arming points.
    """

    def __init__(self, backend: ObjectStore) -> None:
        self._backend = backend
        self._lock = threading.Lock()
        self._points: list[FaultPoint] = []
        #: Every mutation that reached this wrapper, as (op, blob) tuples —
        #: fired-before mutations included (the *attempt* happened).
        self.mutation_log: list[tuple[str, str]] = []

    @property
    def backend(self) -> ObjectStore:
        return self._backend

    # -- arming ---------------------------------------------------------------------

    def arm(self, op: str, pattern: str, when: str = "before", skip: int = 0) -> FaultPoint:
        """Arm a one-shot kill point and return it (its ``fired`` flag is
        how a test asserts the crash actually happened where intended)."""
        point = FaultPoint(op=op, pattern=pattern, when=when, skip=skip)
        with self._lock:
            self._points.append(point)
        return point

    def disarm(self) -> None:
        """Drop every armed point (fired or not)."""
        with self._lock:
            self._points.clear()

    def armed(self) -> list[FaultPoint]:
        with self._lock:
            return [point for point in self._points if not point.fired]

    def _check(self, op: str, blob: str) -> FaultPoint | None:
        """Record the mutation; return the point to fire, if any."""
        with self._lock:
            self.mutation_log.append((op, blob))
            for point in self._points:
                if point.fired or not point.matches(op, blob):
                    continue
                if point.skip > 0:
                    point.skip -= 1
                    continue
                point.fired = True
                return point
        return None

    # -- ObjectStore interface -------------------------------------------------------

    def put(self, name: str, data: bytes) -> None:
        point = self._check("put", name)
        if point is not None and point.when == "before":
            raise SimulatedCrash("put", name, "before")
        self._backend.put(name, data)
        if point is not None:
            raise SimulatedCrash("put", name, "after")

    def delete(self, name: str) -> None:
        point = self._check("delete", name)
        if point is not None and point.when == "before":
            raise SimulatedCrash("delete", name, "before")
        self._backend.delete(name)
        if point is not None:
            raise SimulatedCrash("delete", name, "after")

    def get(self, name: str) -> bytes:
        return self._backend.get(name)

    def get_range(self, name: str, offset: int, length: int | None = None) -> bytes:
        return self._backend.get_range(name, offset, length)

    def size(self, name: str) -> int:
        return self._backend.size(name)

    def exists(self, name: str) -> bool:
        return self._backend.exists(name)

    def list_blobs(self, prefix: str = "") -> list[str]:
        return self._backend.list_blobs(prefix)

    def close(self) -> None:
        super().close()
        self._backend.close()
