"""Property: any mutable-document history ≡ a fresh rebuild over survivors.

The acceptance criterion of the tombstone lifecycle: for any interleaving of
appends, deletes, updates, flushes, compactions, and snapshot/restore pairs,
the live combined view answers every query mode with exactly what a
from-scratch index over the *surviving* documents returns — same references,
same text, and (for ranked retrieval) the same scores in the same order.

The model is a ``{ref: text}`` map mutated alongside the service; restore
rewinds it to the snapshotted copy.  The reference index is built directly
from the model's ``Document`` objects, so its postings are identical to the
live view's by construction and byte-identical comparison is meaningful.
"""

from __future__ import annotations

from harness.crashpoints import FaultPointStore, SimulatedCrash
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.observability import MetricsRegistry
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.parsing.documents import Document, Posting
from repro.search.regexsearch import RegexSearcher
from repro.search.searcher import AirphantSearcher
from repro.service import AirphantService, SearchRequest, ServiceConfig
from repro.storage.memory import InMemoryObjectStore

#: Small vocabulary so documents share words (intersections, ranking ties).
WORDS = ["error", "info", "warn", "disk", "net", "cpu", "node1", "node2", "retry"]

QUERIES = [
    ("error", "keyword"),
    ("error disk", "keyword"),
    ("error OR warn", "boolean"),
    ("(error OR info) AND disk", "boolean"),
    ("error .*disk", "regex"),
]

RANKED_QUERIES = ["error", "error disk", "warn retry"]

documents_strategy = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=5).map(" ".join),
    min_size=1,
    max_size=6,
)

#: One lifecycle step: (action, batch for append/update, target selector).
#: Actions: 0 = append, 1 = delete, 2 = update, 3 = flush, 4 = compact,
#: 5 = snapshot, 6 = restore.
steps_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        documents_strategy,
        st.integers(min_value=0, max_value=999),
    ),
    min_size=0,
    max_size=6,
)


def _pick(model: dict[Posting, str], selector: int) -> Posting:
    refs = sorted(model)
    return refs[selector % len(refs)]


def _assert_equivalent(service, store, model: dict[Posting, str], sketch) -> None:
    """The live view over ``store`` ≡ a fresh rebuild over ``model``."""
    reference_documents = [
        Document(ref=ref, text=text) for ref, text in sorted(model.items())
    ]
    AirphantBuilder(store, config=sketch).build_from_documents(
        reference_documents, index_name="reference"
    )
    reference = AirphantSearcher.open(store, index_name="reference")

    for query, mode in QUERIES:
        live_result = service.execute(SearchRequest(query=query, index="live", mode=mode))
        if mode == "boolean":
            expected = reference.search_boolean(query)
        elif mode == "regex":
            expected = RegexSearcher(reference).search(query)
        else:
            expected = reference.search(query)
        live_docs = {(d.blob, d.offset, d.length, d.text) for d in live_result.documents}
        expected_docs = {(d.blob, d.offset, d.length, d.text) for d in expected.documents}
        assert live_docs == expected_docs, f"divergence on {mode} query {query!r}"

    # Ranked retrieval must be byte-identical *including order and scores*:
    # the pruned/merged statistics equal the rebuild's, so BM25 agrees
    # exactly, not just set-wise.
    for query in RANKED_QUERIES:
        live_result = service.execute(
            SearchRequest(query=query, index="live", mode="topk_bm25", top_k=5)
        )
        expected = reference.search_topk(query, k=5)
        live_ranked = [
            ((d.blob, d.offset, d.length), round(score, 9))
            for d, score in zip(live_result.documents, live_result.scores or [])
        ]
        expected_ranked = [
            ((d.blob, d.offset, d.length), round(score, 9))
            for d, score in zip(expected.documents, expected.scores or [])
        ]
        assert live_ranked == expected_ranked, f"ranking divergence on {query!r}"

    reference.close()


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(initial=documents_strategy, steps=steps_strategy)
def test_lifecycle_history_equals_rebuild_over_survivors(initial, steps):
    store = InMemoryObjectStore()
    sketch = SketchConfig(num_bins=64, seed=11)
    service = AirphantService(
        store, ServiceConfig(ingest_interval_s=0), metrics=MetricsRegistry()
    )
    store.put("corpus/base.txt", ("\n".join(initial) + "\n").encode("utf-8"))
    service.build_index("live", ["corpus/base.txt"], sketch_config=sketch)

    model: dict[Posting, str] = {
        document.ref: document.text
        for document in LineDelimitedCorpusParser().parse(store, ["corpus/base.txt"])
    }
    snapshot_model: dict[Posting, str] | None = None

    for action, batch, selector in steps:
        if action == 0:
            outcome = service.append_documents("live", batch)
            for ref_dict, text in zip(outcome["refs"], batch):
                model[Posting(**ref_dict)] = text
        elif action == 1 and model:
            ref = _pick(model, selector)
            service.delete_documents("live", [ref])
            del model[ref]
        elif action == 2 and model:
            ref = _pick(model, selector)
            outcome = service.update_document("live", ref, batch[0])
            del model[ref]
            model[Posting(**outcome["ref"])] = batch[0]
        elif action == 3:
            service.flush_index("live")
        elif action == 4:
            service.compact_index("live")
        elif action == 5:
            service.create_snapshot("live", "checkpoint")
            snapshot_model = dict(model)
        elif action == 6 and snapshot_model is not None:
            service.restore_snapshot("live", "checkpoint")
            model = dict(snapshot_model)

    # The reference: a from-scratch single index over exactly the surviving
    # documents, with their original references preserved as postings.
    _assert_equivalent(service, store, model, sketch)
    service.close()


#: Which lifecycle operation to kill, and on which side of its commit point.
crash_strategy = st.tuples(
    st.integers(min_value=0, max_value=4),  # 0=append 1=delete 2=update 3=flush 4=compact
    st.booleans(),  # True = die after the commit-point PUT (op is acked)
    st.integers(min_value=0, max_value=999),
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(initial=documents_strategy, steps=steps_strategy, crash=crash_strategy)
def test_lifecycle_property_holds_under_crash_injection(initial, steps, crash):
    """Kill one final operation at its commit point; recovery ≡ rebuild.

    An operation killed *before* its commit-point PUT must leave no trace; one
    killed *after* must survive in full.  Either way the restarted service's
    answers equal a fresh rebuild over the surviving documents the model
    predicts — at every kill point the WAL matrix covers.
    """
    backend = InMemoryObjectStore()
    store = FaultPointStore(backend)
    sketch = SketchConfig(num_bins=64, seed=11)
    service = AirphantService(
        store, ServiceConfig(ingest_interval_s=0), metrics=MetricsRegistry()
    )
    store.put("corpus/base.txt", ("\n".join(initial) + "\n").encode("utf-8"))
    service.build_index("live", ["corpus/base.txt"], sketch_config=sketch)

    model: dict[Posting, str] = {
        document.ref: document.text
        for document in LineDelimitedCorpusParser().parse(store, ["corpus/base.txt"])
    }
    for action, batch, selector in steps:
        if action == 0:
            outcome = service.append_documents("live", batch)
            for ref_dict, text in zip(outcome["refs"], batch):
                model[Posting(**ref_dict)] = text
        elif action == 1 and model:
            ref = _pick(model, selector)
            service.delete_documents("live", [ref])
            del model[ref]
        elif action == 2 and model:
            ref = _pick(model, selector)
            outcome = service.update_document("live", ref, batch[0])
            del model[ref]
            model[Posting(**outcome["ref"])] = batch[0]
        elif action == 3:
            service.flush_index("live")
        elif action == 4:
            service.compact_index("live")

    operation, acked, selector = crash
    when = "after" if acked else "before"
    crashed = False
    if operation == 0:
        store.arm("put", "ingest/ingest.json", when=when)
        try:
            service.append_documents("live", ["error crash probe"])
        except SimulatedCrash:
            crashed = True
        if acked and crashed:
            segments = store.backend.list_blobs(prefix="live/ingest/seg-")
            last = sorted(segments)[-1]
            model[Posting(blob=last, offset=0, length=17)] = "error crash probe"
    elif operation == 1 and model:
        ref = _pick(model, selector)
        store.arm("put", "ingest/ingest.json", when=when)
        try:
            service.delete_documents("live", [ref])
        except SimulatedCrash:
            crashed = True
        if acked and crashed:
            del model[ref]
    elif operation == 2 and model:
        ref = _pick(model, selector)
        store.arm("put", "ingest/ingest.json", when=when)
        try:
            service.update_document("live", ref, "warn crash probe")
        except SimulatedCrash:
            crashed = True
        if acked and crashed:
            del model[ref]
            segments = store.backend.list_blobs(prefix="live/ingest/seg-")
            last = sorted(segments)[-1]
            model[Posting(blob=last, offset=0, length=16)] = "warn crash probe"
    elif operation == 3:
        # Kill the flush at the delta build: queries never see half a flush.
        store.arm("put", "live/delta-")
        try:
            service.flush_index("live")
        except SimulatedCrash:
            crashed = True
    elif operation == 4:
        # Kill the compaction at the generation swap; the model is untouched
        # either way (compaction only reorganizes surviving documents).
        store.arm("put", "live/manifest.json", when=when)
        try:
            service.compact_index("live")
        except SimulatedCrash:
            crashed = True

    store.disarm()
    service.close()
    # "Restart": a fresh service over the same bytes replays the WAL.
    recovered = AirphantService(
        store, ServiceConfig(ingest_interval_s=0), metrics=MetricsRegistry()
    )
    _assert_equivalent(recovered, store, model, sketch)
    recovered.close()
