"""Property-based tests for serialization codecs and the storage substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.superpost import Superpost
from repro.index.serialization import (
    FORMAT_V1,
    FORMAT_V2,
    StringTable,
    decode_superpost,
    decode_varint,
    encode_superpost,
    encode_varint,
)
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.parsing.documents import Posting
from repro.storage.memory import InMemoryObjectStore


class TestVarintProperties:
    @given(value=st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, value):
        decoded, consumed = decode_varint(encode_varint(value))
        assert decoded == value
        assert consumed == len(encode_varint(value))

    @given(values=st.lists(st.integers(min_value=0, max_value=2**40), max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_concatenated_stream_decodes_in_order(self, values):
        data = b"".join(encode_varint(value) for value in values)
        position = 0
        decoded = []
        for _ in values:
            value, position = decode_varint(data, position)
            decoded.append(value)
        assert decoded == values
        assert position == len(data)

    @given(smaller=st.integers(0, 2**30), larger=st.integers(0, 2**30))
    @settings(max_examples=100, deadline=None)
    def test_encoding_length_is_monotone_in_magnitude(self, smaller, larger):
        low, high = sorted((smaller, larger))
        assert len(encode_varint(low)) <= len(encode_varint(high))


postings_strategy = st.sets(
    st.builds(
        Posting,
        blob=st.sampled_from(["a", "b", "corpus/with/long/name.txt"]),
        offset=st.integers(min_value=0, max_value=2**32),
        length=st.integers(min_value=0, max_value=2**20),
    ),
    max_size=30,
)


class TestSuperpostCodecProperties:
    @given(postings=postings_strategy)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_preserves_postings(self, postings):
        table = StringTable()
        encoded = encode_superpost(Superpost(postings), table)
        assert decode_superpost(encoded, table).postings == postings

    @given(postings=postings_strategy)
    @settings(max_examples=50, deadline=None)
    def test_encoding_deterministic(self, postings):
        assert encode_superpost(Superpost(postings), StringTable()) == encode_superpost(
            Superpost(postings), StringTable()
        )

    @given(batches=st.lists(postings_strategy, min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_shared_string_table_round_trips_many_superposts(self, batches):
        table = StringTable()
        encoded = [encode_superpost(Superpost(postings), table) for postings in batches]
        for data, postings in zip(encoded, batches):
            assert decode_superpost(data, table).postings == postings


#: Offsets up to 2**62 (pathological for delta coding: enormous gaps, equal
#: offsets with different lengths, zero-length postings).
pathological_postings_strategy = st.sets(
    st.builds(
        Posting,
        blob=st.sampled_from(["a", "b", "corpus/with/long/name.txt"]),
        offset=st.one_of(
            st.integers(min_value=0, max_value=8),
            st.integers(min_value=0, max_value=2**62),
        ),
        length=st.integers(min_value=0, max_value=2**20),
    ),
    max_size=30,
)


class TestV2CodecProperties:
    """The delta codec must be a pure re-encoding of v1's semantics."""

    @given(postings=postings_strategy | pathological_postings_strategy)
    @settings(max_examples=150, deadline=None)
    def test_v2_round_trip_preserves_postings(self, postings):
        table = StringTable()
        encoded = encode_superpost(Superpost(postings), table, FORMAT_V2)
        assert decode_superpost(encoded, table, FORMAT_V2).postings == postings

    @given(postings=postings_strategy | pathological_postings_strategy)
    @settings(max_examples=150, deadline=None)
    def test_v2_decodes_identically_to_v1(self, postings):
        superpost = Superpost(postings)
        table_v1, table_v2 = StringTable(), StringTable()
        from_v1 = decode_superpost(
            encode_superpost(superpost, table_v1, FORMAT_V1), table_v1, FORMAT_V1
        )
        from_v2 = decode_superpost(
            encode_superpost(superpost, table_v2, FORMAT_V2), table_v2, FORMAT_V2
        )
        assert from_v1.postings == from_v2.postings == postings
        assert from_v1.sorted_postings() == from_v2.sorted_postings()

    @given(postings=postings_strategy)
    @settings(max_examples=50, deadline=None)
    def test_v2_encoding_deterministic(self, postings):
        assert encode_superpost(
            Superpost(postings), StringTable(), FORMAT_V2
        ) == encode_superpost(Superpost(postings), StringTable(), FORMAT_V2)

    @given(postings=postings_strategy)
    @settings(max_examples=100, deadline=None)
    def test_v2_never_larger_than_v1_plus_group_overhead(self, postings):
        # Per blob group v2 spends one count varint v1 doesn't, but saves the
        # per-posting blob key and shortens every offset varint; with < 128
        # postings per group the count costs 1 byte, so the worst case is
        # exactly one byte per distinct blob.
        superpost = Superpost(postings)
        v1 = encode_superpost(superpost, StringTable(), FORMAT_V1)
        v2 = encode_superpost(superpost, StringTable(), FORMAT_V2)
        num_groups = len({posting.blob for posting in postings})
        assert len(v2) <= len(v1) + num_groups

    @given(postings=postings_strategy)
    @settings(max_examples=50, deadline=None)
    def test_decode_yields_presorted_superpost(self, postings):
        # The decode hot path hands sorted postings to Superpost.from_sorted;
        # the memoized order must match a from-scratch sort.
        table = StringTable()
        for version in (FORMAT_V1, FORMAT_V2):
            encoded = encode_superpost(Superpost(postings), table, version)
            decoded = decode_superpost(encoded, table, version)
            assert decoded.sorted_postings() == sorted(postings)

    def test_empty_superpost_round_trips_in_both_formats(self):
        table = StringTable()
        for version in (FORMAT_V1, FORMAT_V2):
            encoded = encode_superpost(Superpost(), table, version)
            assert decode_superpost(encoded, table, version).postings == set()

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            encode_superpost(Superpost(), StringTable(), 99)
        with pytest.raises(ValueError):
            decode_superpost(b"\x00", StringTable(), 99)


class TestCorpusParsingProperties:
    lines_strategy = st.lists(
        st.text(
            alphabet=st.characters(blacklist_characters="\n", blacklist_categories=("Cs",)),
            min_size=1,
            max_size=40,
        ).filter(lambda line: line.strip() != ""),
        min_size=1,
        max_size=20,
    )

    @given(lines=lines_strategy)
    @settings(max_examples=100, deadline=None)
    def test_every_document_range_read_returns_its_text(self, lines):
        store = InMemoryObjectStore()
        data = "\n".join(lines).encode("utf-8")
        store.put("c.txt", data)
        parser = LineDelimitedCorpusParser()
        documents = list(parser.parse(store, ["c.txt"]))
        assert [document.text for document in documents] == lines
        for document in documents:
            fetched = store.get_range(document.blob, document.offset, document.length)
            assert fetched.decode("utf-8") == document.text
