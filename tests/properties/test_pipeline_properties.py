"""Property-based tests: the read pipeline is invisible except in metrics.

Two seeded Hypothesis properties over random range-read workloads:

* **Transparency** — whatever mix of duplicate, overlapping, adjacent,
  zero-length, open-ended, and past-end-of-blob ranges a query batch
  contains, and whatever coalescing gap / cache budget the pipeline runs
  with, callers receive byte-for-byte what a raw
  :class:`~repro.storage.parallel.ParallelFetcher` would return.
* **Accounting exactness** — the pipeline's reported metrics are not merely
  plausible but *exactly* consistent with the traffic a counting wrapper
  observed reaching the store (physical request count, bytes transferred),
  with the workload itself (logical requests, requested bytes), and with
  the mirrored registry counters.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from harness.stores import CountingStore

from repro.observability import MetricsRegistry
from repro.storage.base import RangeRead
from repro.storage.memory import InMemoryObjectStore
from repro.storage.parallel import ParallelFetcher
from repro.storage.pipeline import ReadPipeline

#: Fixed blob layout: an empty blob, a small one, and one spanning several
#: typical coalescing windows.  Offsets/lengths are drawn past the ends on
#: purpose — truncation must behave identically to raw fetching.
BLOB_SIZES = {"empty.bin": 0, "small.bin": 37, "large.bin": 300}


def _make_store() -> InMemoryObjectStore:
    store = InMemoryObjectStore()
    for name, size in BLOB_SIZES.items():
        store.put(name, bytes(i % 251 for i in range(size)))
    return store


request_strategy = st.builds(
    RangeRead,
    blob=st.sampled_from(sorted(BLOB_SIZES)),
    offset=st.integers(min_value=0, max_value=350),
    length=st.one_of(st.none(), st.integers(min_value=0, max_value=120)),
)

workload_strategy = st.lists(
    st.lists(request_strategy, max_size=25), min_size=1, max_size=4
)


@settings(max_examples=60, deadline=None)
@given(
    batches=workload_strategy,
    max_gap=st.integers(min_value=0, max_value=64),
    cache_bytes=st.sampled_from([0, 128, 8192]),
)
def test_pipeline_is_byte_identical_to_raw_fetching_and_exactly_accounted(
    batches, max_gap, cache_bytes
):
    counting = CountingStore(_make_store())
    registry = MetricsRegistry()
    raw = ParallelFetcher(_make_store(), max_concurrency=4)
    pipeline = ReadPipeline.for_store(
        counting,
        max_concurrency=4,
        max_gap=max_gap,
        cache_bytes=cache_bytes,
        metrics=registry,
    )
    try:
        for batch in batches:
            assert pipeline.fetch(batch).payloads == raw.fetch(batch).payloads

        stats = pipeline.stats.snapshot()
        requests = [request for batch in batches for request in batch]

        # Logical-side accounting matches the workload exactly.
        assert stats["requests_in"] == len(requests)
        assert stats["bytes_requested"] == sum(
            request.length for request in requests if request.length is not None
        )
        assert stats["cache_hits"] + stats["cache_misses"] == sum(
            1 for request in requests if request.length != 0
        )
        if cache_bytes == 0:
            assert stats["cache_hits"] == 0

        # Physical-side accounting matches what the store actually saw.
        assert stats["requests_out"] == counting.read_calls
        assert stats["bytes_fetched"] == counting.bytes_returned
        assert stats["requests_out"] <= stats["requests_in"]
        assert stats["requests_saved"] >= 0
        # Gap-free coalescing never transfers more than raw fetching would
        # (bridged gaps may, by at most the gap per merge).  Open-ended
        # reads are excluded: they transfer to end-of-blob but carry no
        # requested-byte count.
        if max_gap == 0 and all(request.length is not None for request in requests):
            assert stats["bytes_fetched"] <= stats["bytes_requested"]

        # The mirrored registry counters agree with the stats object: one
        # accounting path, two views.
        assert (
            registry.counter("airphant_pipeline_physical_requests_total").value()
            == stats["requests_out"]
        )
        assert (
            registry.counter("airphant_pipeline_logical_requests_total").value()
            == stats["requests_in"]
        )
        assert (
            registry.counter("airphant_pipeline_bytes_fetched_total").value()
            == stats["bytes_fetched"]
        )
        assert (
            registry.counter("airphant_pipeline_cache_hits_total").value()
            == stats["cache_hits"]
        )
    finally:
        pipeline.close()
        raw.close()


@settings(max_examples=30, deadline=None)
@given(batch=st.lists(request_strategy, min_size=1, max_size=25))
def test_repeating_a_batch_with_cache_serves_bounded_reads_from_memory(batch):
    """Second replay of an identical batch must not re-fetch bounded ranges."""
    counting = CountingStore(_make_store())
    pipeline = ReadPipeline.for_store(
        counting, max_concurrency=4, cache_bytes=1 << 20, metrics=MetricsRegistry()
    )
    try:
        first = pipeline.fetch(batch).payloads
        calls_after_first = counting.read_calls
        second = pipeline.fetch(batch).payloads
        assert first == second
        open_ended = sum(1 for request in batch if request.length is None)
        # Only open-ended reads (never cached) may hit the store again.
        assert counting.read_calls - calls_after_first == open_ended
    finally:
        pipeline.close()
