"""Property-based tests (hypothesis) for the IoU Sketch core invariants.

The two invariants the whole system rests on:

* **No false negatives** — for any corpus and any sketch structure, querying
  a word returns a superset of its true postings list.
* **Monotone accuracy** — the analytical false-positive probability behaves
  as Lemmas 1-3 predict.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    expected_false_positives,
    false_positive_probability,
    lemma1_lower_bound,
)
from repro.core.sketch import IoUSketch
from repro.core.superpost import Superpost
from repro.parsing.documents import Posting


# -- strategies ---------------------------------------------------------------------

words_strategy = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=8
)

postings_strategy = st.sets(
    st.builds(
        Posting,
        blob=st.sampled_from(["blob-a", "blob-b"]),
        offset=st.integers(min_value=0, max_value=10_000),
        length=st.integers(min_value=1, max_value=200),
    ),
    min_size=1,
    max_size=8,
)

corpus_strategy = st.dictionaries(words_strategy, postings_strategy, min_size=1, max_size=40)

structure_strategy = st.tuples(
    st.integers(min_value=1, max_value=6),  # layers
    st.integers(min_value=6, max_value=64),  # total bins
)


class TestNoFalseNegativesProperty:
    @given(corpus=corpus_strategy, structure=structure_strategy, seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_query_is_always_a_superset_of_true_postings(self, corpus, structure, seed):
        num_layers, total_bins = structure
        sketch = IoUSketch.build(
            num_layers=num_layers, total_bins=max(total_bins, num_layers), seed=seed
        )
        for word, postings in corpus.items():
            sketch.insert(word, postings)
        for word, postings in corpus.items():
            assert postings <= sketch.query(word).postings

    @given(corpus=corpus_strategy, seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_single_layer_bin_contains_union_of_its_words(self, corpus, seed):
        sketch = IoUSketch.build(num_layers=1, total_bins=8, seed=seed)
        for word, postings in corpus.items():
            sketch.insert(word, postings)
        for word, postings in corpus.items():
            (superpost,) = sketch.layer_superposts(word)
            assert postings <= superpost.postings


class TestSuperpostAlgebraProperties:
    @given(
        sets=st.lists(
            st.sets(st.integers(min_value=0, max_value=50), max_size=10), min_size=1, max_size=5
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_intersect_all_equals_python_set_intersection(self, sets):
        superposts = [Superpost({Posting("b", value, 1) for value in s}) for s in sets]
        expected = set.intersection(*[{Posting("b", value, 1) for value in s} for s in sets])
        assert Superpost.intersect_all(superposts).postings == expected

    @given(
        sets=st.lists(
            st.sets(st.integers(min_value=0, max_value=50), max_size=10), min_size=0, max_size=5
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_union_all_equals_python_set_union(self, sets):
        superposts = [Superpost({Posting("b", value, 1) for value in s}) for s in sets]
        expected = set().union(*[{Posting("b", value, 1) for value in s} for s in sets])
        assert Superpost.union_all(superposts).postings == expected

    @given(
        left=st.sets(st.integers(0, 30), max_size=10),
        right=st.sets(st.integers(0, 30), max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_intersection_is_subset_of_both_operands(self, left, right):
        a = Superpost({Posting("b", value, 1) for value in left})
        b = Superpost({Posting("b", value, 1) for value in right})
        result = a.intersect(b).postings
        assert result <= a.postings
        assert result <= b.postings


class TestAnalysisProperties:
    @given(
        num_bins=st.integers(min_value=2, max_value=5000),
        distinct_words=st.integers(min_value=0, max_value=500),
        num_layers=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=150, deadline=None)
    def test_probability_always_in_unit_interval(self, num_bins, distinct_words, num_layers):
        if num_layers > num_bins:
            num_layers = num_bins
        value = false_positive_probability(num_layers, num_bins, distinct_words)
        assert 0.0 <= value <= 1.0

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=30),
        num_bins=st.integers(min_value=16, max_value=2048),
    )
    @settings(max_examples=80, deadline=None)
    def test_lemma1_bound_never_exceeds_objective(self, sizes, num_bins):
        bound = lemma1_lower_bound(num_bins, sizes)
        for num_layers in (1, 2, 4, 8, min(16, num_bins)):
            assert expected_false_positives(num_layers, num_bins, sizes) >= bound - 1e-9

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=30),
        num_bins=st.integers(min_value=8, max_value=1024),
    )
    @settings(max_examples=80, deadline=None)
    def test_expectation_never_exceeds_document_count(self, sizes, num_bins):
        value = expected_false_positives(1, num_bins, sizes)
        assert value <= len(sizes) + 1e-9
