"""Property: the live combined view ≡ a fresh full rebuild (byte-identical).

The acceptance criterion of the ingestion subsystem: for any split of a
corpus into an initial build plus a sequence of ingested batches — with any
interleaving of flushes and compactions — the memtable ∪ deltas ∪ base view
answers every query mode with exactly the documents a from-scratch index
over the same document set returns, text and ``(blob, offset, length)``
references alike.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SketchConfig
from repro.service import AirphantService, SearchRequest, ServiceConfig
from repro.index.builder import AirphantBuilder
from repro.observability import MetricsRegistry
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.search.searcher import AirphantSearcher
from repro.storage.memory import InMemoryObjectStore

#: Small vocabulary so documents share words (intersections, false positives).
WORDS = ["error", "info", "warn", "disk", "net", "cpu", "node1", "node2", "retry"]

#: Queries spanning every mode, chosen to hit single words, ANDs, ORs, and a
#: regex whose literal filter goes through the Boolean path.
QUERIES = [
    ("error", "keyword"),
    ("error disk", "keyword"),
    ("error OR warn", "boolean"),
    ("(error OR info) AND disk", "boolean"),
    ("error .*disk", "regex"),
]

documents_strategy = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=5).map(" ".join),
    min_size=1,
    max_size=12,
)

#: Per-batch action after appending: 0 = nothing, 1 = flush, 2 = compact.
actions_strategy = st.lists(st.integers(min_value=0, max_value=2), min_size=0, max_size=3)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    initial=documents_strategy,
    batches=st.lists(documents_strategy, min_size=0, max_size=3),
    actions=actions_strategy,
    data=st.data(),
)
def test_combined_view_equals_full_rebuild(initial, batches, actions, data):
    store = InMemoryObjectStore()
    config = ServiceConfig(ingest_interval_s=0)
    service = AirphantService(store, config, metrics=MetricsRegistry())
    sketch = SketchConfig(num_bins=64, seed=11)

    store.put("corpus/base.txt", ("\n".join(initial) + "\n").encode("utf-8"))
    service.build_index("live", ["corpus/base.txt"], sketch_config=sketch)

    for position, batch in enumerate(batches):
        service.append_documents("live", batch)
        action = actions[position] if position < len(actions) else 0
        if action == 1:
            service.flush_index("live")
        elif action == 2:
            service.compact_index("live")

    # The reference: a from-scratch single index over the *same* documents —
    # the initial corpus blob plus every WAL segment blob, which is exactly
    # where the ingested documents' bytes live.
    parser = LineDelimitedCorpusParser()
    blobs = ["corpus/base.txt"] + sorted(store.list_blobs(prefix="live/ingest/seg-"))
    reference_documents = list(parser.parse(store, blobs))
    AirphantBuilder(store, config=sketch).build_from_documents(
        reference_documents, index_name="reference"
    )
    reference = AirphantSearcher.open(store, index_name="reference")

    for query, mode in QUERIES:
        live_result = service.execute(
            SearchRequest(query=query, index="live", mode=mode)
        )
        if mode == "boolean":
            expected = reference.search_boolean(query)
        elif mode == "regex":
            from repro.search.regexsearch import RegexSearcher

            expected = RegexSearcher(reference).search(query)
        else:
            expected = reference.search(query)
        live_docs = {(d.blob, d.offset, d.length, d.text) for d in live_result.documents}
        expected_docs = {
            (d.blob, d.offset, d.length, d.text) for d in expected.documents
        }
        assert live_docs == expected_docs, f"divergence on {mode} query {query!r}"

    reference.close()
    service.close()
