"""Property-based tests of the build-then-search pipeline.

For arbitrary small corpora and sketch structures, a persisted index opened
by a fresh Searcher must return exactly the documents containing the query
word — the false-positive filtering restores perfect precision and the
sketch guarantees perfect recall.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.config import SketchConfig
from repro.core.optimizer import InfeasibleConfigurationError
from repro.index.builder import AirphantBuilder
from repro.search.searcher import AirphantSearcher
from repro.storage.latency import AffineLatencyModel
from repro.storage.simulated import SimulatedCloudStore

#: Small vocabulary so hypothesis generates corpora with heavy term sharing
#: (the interesting regime for false positives).
vocabulary = ["error", "warn", "info", "disk", "net", "cpu", "node1", "node2", "retry", "ok"]

documents_strategy = st.lists(
    st.lists(st.sampled_from(vocabulary), min_size=1, max_size=6).map(" ".join),
    min_size=1,
    max_size=30,
)

config_strategy = st.builds(
    SketchConfig,
    num_bins=st.integers(min_value=8, max_value=128),
    num_layers=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
    seed=st.integers(min_value=0, max_value=50),
    common_word_fraction=st.sampled_from([0.0, 0.01, 0.1]),
)


def _build_index(store: SimulatedCloudStore, lines: list[str], config: SketchConfig) -> None:
    """Build the property-test index, discarding infeasible (tiny-B) configs.

    Algorithm 1 legitimately rejects configurations whose bin budget cannot
    meet the accuracy target; those are not interesting counterexamples.
    """
    store.put("corpus.txt", "\n".join(lines).encode("utf-8"))
    builder = AirphantBuilder(store, config=config)
    try:
        builder.build_from_blobs(["corpus.txt"], index_name="prop-index")
    except InfeasibleConfigurationError:
        assume(False)


class TestBuildSearchRoundTrip:
    @given(lines=documents_strategy, config=config_strategy)
    @settings(max_examples=40, deadline=None)
    def test_search_returns_exactly_the_matching_documents(self, lines, config):
        store = SimulatedCloudStore(latency_model=AffineLatencyModel(jitter_sigma=0.0))
        _build_index(store, lines, config)
        searcher = AirphantSearcher.open(store, index_name="prop-index")
        for word in vocabulary:
            expected = {line for line in lines if word in line.split()}
            result = searcher.search(word)
            assert {document.text for document in result.documents} == expected

    @given(lines=documents_strategy, config=config_strategy, k=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_top_k_returns_min_of_k_and_matches(self, lines, config, k):
        store = SimulatedCloudStore(latency_model=AffineLatencyModel(jitter_sigma=0.0))
        _build_index(store, lines, config)
        searcher = AirphantSearcher.open(store, index_name="prop-index")
        word = vocabulary[0]
        matches = sum(1 for line in lines if word in line.split())
        result = searcher.search(word, top_k=k)
        assert len(result.documents) == min(k, matches)
