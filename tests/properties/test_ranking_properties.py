"""Property-based tests (hypothesis) for BM25 ranked retrieval.

The contract ``mode="topk_bm25"`` must uphold for *any* corpus:

* scores always land in ``[0, 1]`` and come back in descending order;
* the BM25 scoring function is monotone in term frequency;
* rankings are deterministic — identical across repeated runs and across
  independently rebuilt indexes;
* the top-k set is a subset of the conjunctive membership result.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.parsing.documents import Posting
from repro.search.ranking import BM25Params, score_posting
from repro.search.searcher import AirphantSearcher
from repro.storage.memory import InMemoryObjectStore


# -- strategies ---------------------------------------------------------------------

# A tiny closed vocabulary keeps the corpora dense enough that conjunctive
# queries actually match while still exercising varied tf/df/length shapes.
_VOCAB = ["alpha", "beta", "gamma", "delta", "omega"]

documents_strategy = st.lists(
    st.lists(st.sampled_from(_VOCAB), min_size=1, max_size=12).map(" ".join),
    min_size=1,
    max_size=15,
)

query_strategy = st.lists(st.sampled_from(_VOCAB), min_size=1, max_size=3, unique=True).map(
    " ".join
)


# An explicit layer count skips the (slow) optimizer — hypothesis runs
# hundreds of builds, and the ranking contract is independent of the layout.
_CONFIG = SketchConfig(num_bins=32, num_layers=2, seed=3)


def _build_searcher(lines: list[str]) -> AirphantSearcher:
    store = InMemoryObjectStore()
    store.put("corpus/p.txt", "\n".join(lines).encode())
    offset = 0
    documents = []
    from repro.parsing.documents import Document

    for line in lines:
        ref = Posting(blob="corpus/p.txt", offset=offset, length=len(line))
        documents.append(Document(ref=ref, text=line))
        offset += len(line) + 1
    AirphantBuilder(store, config=_CONFIG).build_from_documents(documents, index_name="prop")
    return AirphantSearcher.open(store, index_name="prop")


class TestScoreRangeProperty:
    @given(lines=documents_strategy, query=query_strategy, k=st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_scores_in_unit_interval_and_descending(self, lines, query, k):
        searcher = _build_searcher(lines)
        result = searcher.search_topk(query, k=k)
        assert len(result.scores) == result.num_results <= k
        assert all(0.0 <= score <= 1.0 for score in result.scores)
        assert result.scores == sorted(result.scores, reverse=True)

    @given(lines=documents_strategy, query=query_strategy)
    @settings(max_examples=40, deadline=None)
    def test_topk_set_is_subset_of_membership(self, lines, query):
        searcher = _build_searcher(lines)
        ranked = searcher.search_topk(query, k=50)
        membership = searcher.search(query)
        ranked_refs = {document.ref for document in ranked.documents}
        member_refs = {document.ref for document in membership.documents}
        assert ranked_refs <= member_refs


class TestDeterminismProperty:
    @given(lines=documents_strategy, query=query_strategy)
    @settings(max_examples=25, deadline=None)
    def test_identical_across_runs_and_rebuilds(self, lines, query):
        first = _build_searcher(lines)
        second = _build_searcher(lines)
        a1 = first.search_topk(query, k=20)
        a2 = first.search_topk(query, k=20)
        b = second.search_topk(query, k=20)
        ranking_a1 = [(d.ref, s) for d, s in zip(a1.documents, a1.scores)]
        ranking_a2 = [(d.ref, s) for d, s in zip(a2.documents, a2.scores)]
        ranking_b = [(d.ref, s) for d, s in zip(b.documents, b.scores)]
        assert ranking_a1 == ranking_a2 == ranking_b


class TestMonotonicityProperty:
    @given(
        tf_low=st.integers(min_value=1, max_value=30),
        tf_delta=st.integers(min_value=1, max_value=30),
        doc_length=st.integers(min_value=30, max_value=200),
        avg_doc_length=st.floats(min_value=5.0, max_value=200.0),
        idf_value=st.floats(min_value=0.01, max_value=10.0),
        k1=st.floats(min_value=0.0, max_value=3.0),
        b=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_score_is_monotone_in_tf(
        self, tf_low, tf_delta, doc_length, avg_doc_length, idf_value, k1, b
    ):
        # Two documents identical in every respect except the query term's
        # frequency: the one with more occurrences never scores lower.
        params = BM25Params(k1=k1, b=b)
        low = Posting("b", 0, doc_length)
        high = Posting("b", 1000, doc_length)
        term_frequencies = {"w": {low: tf_low, high: tf_low + tf_delta}}
        doc_lengths = {low: doc_length, high: doc_length}
        idf_by_word = {"w": idf_value}
        weights = {"w": 1.0}
        max_score = idf_value * (params.k1 + 1.0)
        common = dict(
            words=["w"],
            term_frequencies=term_frequencies,
            doc_lengths=doc_lengths,
            idf_by_word=idf_by_word,
            weights=weights,
            params=params,
            avg_doc_length=avg_doc_length,
            max_score=max_score,
        )
        score_low = score_posting(low, **common)
        score_high = score_posting(high, **common)
        assert score_low is not None and score_high is not None
        # At k1 = 0 the saturation term is exactly 1 for any tf, so the two
        # scores are mathematically equal and may differ by float rounding;
        # allow an ulp-scale slack on the comparison.
        assert score_high >= score_low - 1e-12
        assert 0.0 <= score_low <= 1.0
        assert 0.0 <= score_high <= 1.0

    @given(
        tf=st.integers(min_value=1, max_value=30),
        short_length=st.integers(min_value=10, max_value=100),
        extra_length=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_longer_document_never_outscores_shorter_at_equal_tf(
        self, tf, short_length, extra_length
    ):
        params = BM25Params()
        short = Posting("b", 0, short_length)
        longer = Posting("b", 1000, short_length + extra_length)
        common = dict(
            words=["w"],
            term_frequencies={"w": {short: tf, longer: tf}},
            doc_lengths={short: short_length, longer: short_length + extra_length},
            idf_by_word={"w": 1.0},
            weights={"w": 1.0},
            params=params,
            avg_doc_length=50.0,
            max_score=params.k1 + 1.0,
        )
        assert score_posting(short, **common) >= score_posting(longer, **common)
