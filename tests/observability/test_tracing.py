"""Unit tests for the zero-dependency tracing module.

Covers the span tree itself (building, serialization, grafting), ambient
contextvar propagation (including across pool threads via ``attach``), the
bounded trace ring, the tracer's keep/drop decisions (force, deterministic
sampling, slow-query capture), and the explain-payload helpers.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.observability.tracing import (
    NOOP_SPAN,
    PARENT_SPAN_HEADER,
    TRACE_ID_HEADER,
    Span,
    TraceStore,
    Tracer,
    attach,
    current_span,
    explain_payload,
    new_id,
    render_trace,
    span,
    summarize_trace,
)


class TestSpan:
    def test_child_inherits_trace_id_and_links_parent(self):
        root = Span("query")
        child = root.child("search.lookup", words=2)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.attrs == {"words": 2}
        assert root.children == [child]

    def test_set_and_inc(self):
        node = Span("pipeline.fetch")
        node.set(requests=3)
        node.inc(requests=2, bytes_fetched=100)
        node.inc(bytes_fetched=28)
        assert node.attrs == {"requests": 5, "bytes_fetched": 128}

    def test_finish_is_idempotent(self):
        node = Span("query")
        first = node.finish().duration_ms
        assert first is not None
        assert node.finish().duration_ms == first

    def test_span_count_and_walk(self):
        root = Span("query")
        lookup = root.child("search.lookup")
        lookup.child("pipeline.fetch")
        root.child("search.retrieve")
        assert root.span_count() == 4
        assert [node.name for node in root.walk()] == [
            "query",
            "search.lookup",
            "pipeline.fetch",
            "search.retrieve",
        ]

    def test_to_dict_from_dict_round_trip(self):
        root = Span("query", attrs={"index": "logs"})
        root.child("search.lookup", words=1).finish()
        root.finish()
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.name == "query"
        assert rebuilt.trace_id == root.trace_id
        assert rebuilt.span_id == root.span_id
        assert rebuilt.attrs == {"index": "logs"}
        assert len(rebuilt.children) == 1
        assert rebuilt.children[0].name == "search.lookup"
        assert rebuilt.children[0].parent_id == root.span_id
        assert rebuilt.to_dict() == root.to_dict()

    def test_graft_reparents_external_tree(self):
        node_span = Span("router.node")
        peer_root = Span.from_dict(Span("query", trace_id=node_span.trace_id).to_dict())
        node_span.graft(peer_root)
        assert peer_root.parent_id == node_span.span_id
        assert node_span.children == [peer_root]

    def test_from_dict_tolerates_malformed_children(self):
        rebuilt = Span.from_dict(
            {"name": "query", "children": ["junk", {"name": "ok"}, 7]}
        )
        assert [child.name for child in rebuilt.children] == ["ok"]


class TestAmbientPropagation:
    def test_span_without_ambient_parent_is_noop(self):
        assert current_span() is None
        with span("search.lookup", words=1) as node:
            assert node is NOOP_SPAN
        # The noop accepts the whole Span surface.
        NOOP_SPAN.set(a=1)
        NOOP_SPAN.inc(b=2)
        assert NOOP_SPAN.child("x") is NOOP_SPAN
        assert NOOP_SPAN.finish() is NOOP_SPAN

    def test_span_nests_under_attached_root(self):
        root = Span("query")
        with attach(root):
            with span("search.lookup") as lookup:
                assert current_span() is lookup
                with span("pipeline.fetch") as fetch:
                    fetch.set(requests=2)
            assert current_span() is root
        assert current_span() is None
        assert root.span_count() == 3
        assert root.children[0].children[0].attrs == {"requests": 2}
        # Exiting the context finished the children.
        assert root.children[0].duration_ms is not None

    def test_pool_threads_need_explicit_attach(self):
        root = Span("query")

        def traced():
            with attach(root):
                with span("store.attempt", operation="read"):
                    pass
            return True

        def untraced():
            # No attach: contextvars do not cross the pool boundary.
            return current_span()

        with attach(root):
            with ThreadPoolExecutor(max_workers=2) as pool:
                assert pool.submit(untraced).result() is None
                assert pool.submit(traced).result() is True
        assert [child.name for child in root.children] == ["store.attempt"]


class TestTraceStore:
    def _finished(self, name="query"):
        return Span(name).finish()

    def test_ring_evicts_oldest(self):
        store = TraceStore(capacity=2)
        first, second, third = (self._finished() for _ in range(3))
        for root in (first, second, third):
            store.add(root)
        assert len(store) == 2
        assert store.get(first.trace_id) is None
        assert store.get(second.trace_id) is second
        assert store.get(third.trace_id) is third

    def test_list_is_newest_first_and_limited(self):
        store = TraceStore(capacity=8)
        roots = [self._finished() for _ in range(4)]
        for root in roots:
            store.add(root)
        summaries = store.list(limit=3)
        assert [entry["trace_id"] for entry in summaries] == [
            roots[3].trace_id,
            roots[2].trace_id,
            roots[1].trace_id,
        ]
        assert summaries[0]["spans"] == 1
        assert summaries[0]["duration_ms"] is not None

    def test_clear(self):
        store = TraceStore(capacity=4)
        store.add(self._finished())
        store.clear()
        assert len(store) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestTracer:
    def test_disabled_tracer_begins_nothing(self):
        tracer = Tracer(enabled=False, sample_rate=1.0)
        assert tracer.begin("query") is None
        assert current_span() is None

    def test_begin_makes_root_ambient_and_finish_detaches(self):
        tracer = Tracer(sample_rate=1.0)
        handle = tracer.begin("query", index="logs")
        assert current_span() is handle.root
        root = handle.finish()
        assert current_span() is None
        assert root.duration_ms is not None
        assert tracer.store.get(handle.trace_id) is root
        # finish is idempotent: no double-add.
        handle.finish()
        assert len(tracer.store) == 1

    def test_propagated_context_lands_on_root(self):
        tracer = Tracer()
        handle = tracer.begin(
            "query", trace_id="cafe" * 4, parent_span_id="beef1234", force=True
        )
        assert handle.root.trace_id == "cafe" * 4
        assert handle.root.parent_id == "beef1234"
        handle.finish()
        assert tracer.store.get("cafe" * 4) is handle.root

    def test_unsampled_trace_is_dropped_unless_forced(self):
        tracer = Tracer(sample_rate=0.0)
        tracer.begin("query").finish()
        assert len(tracer.store) == 0
        tracer.begin("query", force=True).finish()
        assert len(tracer.store) == 1

    def test_sampling_is_deterministic(self):
        tracer = Tracer(sample_rate=0.5)
        for _ in range(10):
            tracer.begin("query").finish()
        # Every round(1/rate)-th request is kept: the 1st, 3rd, 5th, ...
        assert len(tracer.store) == 5

    def test_slow_query_always_kept_and_logged(self):
        lines: list[str] = []
        tracer = Tracer(sample_rate=0.0, slow_query_ms=0.000001, slow_log=lines.append)
        handle = tracer.begin("query", index="logs")
        root = handle.finish()
        assert root.attrs["slow"] is True
        assert tracer.store.get(handle.trace_id) is root
        (line,) = lines
        record = json.loads(line)
        assert record["event"] == "slow_query"
        assert record["trace_id"] == handle.trace_id
        assert record["threshold_ms"] == 0.000001
        assert record["attrs"]["index"] == "logs"

    def test_slow_capture_disabled_at_zero_threshold(self):
        lines: list[str] = []
        tracer = Tracer(sample_rate=0.0, slow_query_ms=0.0, slow_log=lines.append)
        tracer.begin("query").finish()
        assert lines == []
        assert len(tracer.store) == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(slow_query_ms=-1.0)


class TestExplainHelpers:
    def _sample_tree(self) -> Span:
        root = Span("query", attrs={"index": "logs"})
        lookup = root.child("search.lookup", words=2)
        lookup.child(
            "pipeline.fetch",
            requests=2,
            physical_requests=1,
            bytes_requested=64,
            bytes_fetched=64,
            cache_hits=0,
            cache_misses=2,
        ).finish()
        lookup.finish()
        retrieve = root.child("search.retrieve", candidates=3, refunded_bytes=10)
        fetch = retrieve.child(
            "pipeline.fetch",
            requests=3,
            physical_requests=3,
            bytes_requested=90,
            bytes_fetched=90,
            cache_hits=1,
            cache_misses=2,
        )
        attempt = fetch.child("store.attempt", operation="read_many")
        attempt.set(retry=True)
        attempt.finish()
        fetch.child("store.attempt", operation="read_many", hedged=True).finish()
        fetch.finish()
        retrieve.finish()
        root.finish()
        return root

    def test_summarize_trace_totals_and_waves(self):
        summary = summarize_trace(self._sample_tree().to_dict())
        assert len(summary["waves"]) == 2
        assert summary["waves"][0]["requests"] == 2
        totals = summary["totals"]
        assert totals["requests"] == 5
        assert totals["physical_requests"] == 4
        assert totals["bytes_requested"] == 154
        assert totals["bytes_fetched"] == 154
        assert totals["cache_hits"] == 1
        assert totals["refunded_bytes"] == 10
        assert totals["attempts"] == 2
        assert totals["retries"] == 1
        assert totals["hedges"] == 1
        assert totals["timeouts"] == 0
        assert totals["spans"] == 7
        assert totals["waves"] == 2

    def test_explain_payload_shape(self):
        root = self._sample_tree()
        payload = explain_payload(root)
        assert payload["trace_id"] == root.trace_id
        assert payload["duration_ms"] == root.to_dict()["duration_ms"]
        assert payload["spans"]["name"] == "query"
        assert payload["summary"]["totals"]["spans"] == 7

    def test_render_trace_is_indented_and_attributed(self):
        text = render_trace(self._sample_tree().to_dict())
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert "[index=logs]" in lines[0]
        assert lines[1].startswith("  └─ search.lookup")
        assert any("store.attempt" in line for line in lines)

    def test_new_id_and_headers(self):
        assert len(new_id()) == 16
        assert len(new_id(4)) == 8
        assert TRACE_ID_HEADER == "X-Airphant-Trace-Id"
        assert PARENT_SPAN_HEADER == "X-Airphant-Parent-Span"
