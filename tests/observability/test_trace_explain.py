"""Exactness of explain traces: span attrs mirror ``PipelineStats`` deltas.

The pipeline commits each fetch wave's accounting to its ``PipelineStats``
and sets the very same numbers on the wave's ``pipeline.fetch`` span, so an
explain response's summary must equal the stats deltas *exactly* — on every
backend (``mem://``, ``sim://``, and the emulated ``s3://`` endpoint), with
and without the block cache.  Also covers the tombstone pre-exclusion path:
a membership query over an index with pending deletes never fetches the
condemned documents' bytes, and the trace shows them as refunded.
"""

from __future__ import annotations

import pytest

from repro.core.config import SketchConfig
from repro.parsing.documents import Posting
from repro.service import AirphantService, SearchRequest, ServiceConfig
from repro.storage.latency import AffineLatencyModel
from repro.storage.memory import InMemoryObjectStore
from repro.storage.registry import open_store
from repro.storage.simulated import SimulatedCloudStore

CORPUS = "\n".join(
    [
        "error disk full on node7",
        "info request served",
        "error timeout contacting node3",
        "warn retry scheduled",
        "error checksum mismatch block9",
        "info heartbeat ok",
        "debug cache warmup done",
        "error disk failing smart alert",
    ]
)

INDEX = "explain-index"
BLOB = "corpus/explain.txt"

#: The pipeline counters an explain summary must mirror, per open member.
STAT_FIELDS = (
    "requests_in",
    "requests_out",
    "bytes_requested",
    "bytes_fetched",
    "cache_hits",
    "cache_misses",
)


def _build_service(store, **config_overrides) -> AirphantService:
    store.put(BLOB, CORPUS.encode("utf-8"))
    service = AirphantService(store, ServiceConfig(**config_overrides))
    service.build_index(
        INDEX, [BLOB], SketchConfig(num_bins=64, target_false_positives=1.0, seed=7)
    )
    # Open the searcher up front so the before/after snapshots bracket only
    # the query itself, not the header reads of the first open.
    service.catalog.open(INDEX)
    return service


def _stats_snapshot(service: AirphantService) -> dict[str, int]:
    """Pipeline counters summed over every member of the open index."""
    totals = dict.fromkeys(STAT_FIELDS, 0)
    for member in service.catalog.open(INDEX).searchers:
        stats = member.pipeline.stats.snapshot()
        for field in STAT_FIELDS:
            totals[field] += stats[field]
    return totals


def _explain(service: AirphantService, query: str) -> tuple[dict, dict[str, int]]:
    """Run one explain query, returning its trace and the stats delta."""
    before = _stats_snapshot(service)
    response = service.search(SearchRequest(query=query, index=INDEX, explain=True))
    after = _stats_snapshot(service)
    assert response.trace is not None
    return response.trace, {k: after[k] - before[k] for k in STAT_FIELDS}


def _assert_exact(trace: dict, delta: dict[str, int]) -> None:
    totals = trace["summary"]["totals"]
    assert totals["requests"] == delta["requests_in"]
    assert totals["physical_requests"] == delta["requests_out"]
    assert totals["bytes_requested"] == delta["bytes_requested"]
    assert totals["bytes_fetched"] == delta["bytes_fetched"]
    assert totals["cache_hits"] == delta["cache_hits"]
    # The waves decompose the same totals.
    assert sum(w["requests"] for w in trace["summary"]["waves"]) == totals["requests"]
    assert (
        sum(w["cache_misses"] for w in trace["summary"]["waves"])
        == delta["cache_misses"]
    )


@pytest.fixture(params=["mem", "sim", "s3"])
def backend_store(request):
    """The same corpus store on all three backends of the acceptance test."""
    if request.param == "mem":
        yield InMemoryObjectStore()
    elif request.param == "sim":
        yield SimulatedCloudStore(
            latency_model=AffineLatencyModel(jitter_sigma=0.0, seed=0)
        )
    else:
        emulator = request.getfixturevalue("s3_emulator")
        yield open_store(emulator.uri())


class TestExplainExactness:
    def test_totals_match_pipeline_stat_deltas(self, backend_store):
        with _build_service(backend_store) as service:
            trace, delta = _explain(service, "error")
            _assert_exact(trace, delta)
            # The query really did hit the store: a lookup wave plus a
            # document-retrieval wave.
            assert trace["summary"]["totals"]["waves"] >= 2
            assert delta["requests_in"] > 0
            assert delta["bytes_fetched"] > 0

    def test_cache_hits_match_on_repeat_query(self, backend_store):
        with _build_service(backend_store, read_cache_bytes=1 << 20) as service:
            first_trace, first_delta = _explain(service, "error")
            _assert_exact(first_trace, first_delta)
            assert first_trace["summary"]["totals"]["cache_hits"] == 0
            # Identical query again: every block now comes from the read
            # cache, and the trace reports exactly the counted hits.
            second_trace, second_delta = _explain(service, "error")
            _assert_exact(second_trace, second_delta)
            assert second_trace["summary"]["totals"]["cache_hits"] > 0
            assert second_delta["cache_hits"] > 0
            assert second_delta["requests_out"] == 0


class TestMembershipPreExclusion:
    def test_condemned_bytes_are_never_fetched_and_show_as_refunded(self):
        with _build_service(InMemoryObjectStore()) as service:
            baseline_trace, baseline_delta = _explain(service, "error")
            _assert_exact(baseline_trace, baseline_delta)
            assert baseline_trace["summary"]["totals"]["refunded_bytes"] == 0
            hit = service.search(
                SearchRequest(query="error", index=INDEX)
            ).documents[0]
            ref = Posting(blob=hit.blob, offset=hit.offset, length=hit.length)
            service.delete_documents(INDEX, [ref])

            trace, delta = _explain(service, "error")
            _assert_exact(trace, delta)
            totals = trace["summary"]["totals"]
            # The condemned candidate was dropped before the fetch wave: its
            # bytes are refunded in the trace and missing from the wire.
            assert totals["refunded_bytes"] == ref.length
            assert (
                delta["bytes_fetched"]
                == baseline_delta["bytes_fetched"] - ref.length
            )
            assert delta["requests_in"] == baseline_delta["requests_in"] - 1
            # And the deleted document is gone from the results.
            response = service.search(SearchRequest(query="error", index=INDEX))
            assert all(
                (d.blob, d.offset, d.length) != (ref.blob, ref.offset, ref.length)
                for d in response.documents
            )

    def test_retrieve_span_carries_the_exclusion(self):
        with _build_service(InMemoryObjectStore()) as service:
            hit = service.search(
                SearchRequest(query="error", index=INDEX)
            ).documents[0]
            service.delete_documents(
                INDEX, [Posting(blob=hit.blob, offset=hit.offset, length=hit.length)]
            )
            trace, _ = _explain(service, "error")

            def spans_named(node, name):
                found = [node] if node.get("name") == name else []
                for child in node.get("children") or []:
                    found.extend(spans_named(child, name))
                return found

            retrieves = spans_named(trace["spans"], "search.retrieve")
            assert retrieves, "membership query must open a retrieve span"
            excluded = [
                s for s in retrieves if (s.get("attrs") or {}).get("excluded")
            ]
            assert len(excluded) == 1
            attrs = excluded[0]["attrs"]
            assert attrs["excluded"] == 1
            assert attrs["refunded_bytes"] == hit.length
            # The tombstone filter wrapper is visible in the same tree.
            assert spans_named(trace["spans"], "visibility.filter")
