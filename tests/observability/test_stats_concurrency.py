"""Thread-safety of the stats objects mutated from pool threads.

``PipelineStats`` and ``ResilienceStats`` are updated by fetcher workers,
hedge-pool workers, and HTTP server threads simultaneously.  These tests
hammer both the raw :meth:`add` path and the real components under heavy
thread contention and assert the counts are *exact* — a lost update shows
up as an off-by-N immediately.
"""

from __future__ import annotations

import threading

from harness.stores import CountingStore

from repro.observability import MetricsRegistry
from repro.storage.base import RangeRead, TransientStoreError
from repro.storage.faults import FlakyStore
from repro.storage.memory import InMemoryObjectStore
from repro.storage.pipeline import PipelineStats, ReadPipeline
from repro.storage.resilient import ResilientStore
from repro.storage.resilient import RetriesExhaustedError
from repro.storage.parallel import ParallelFetcher


def _hammer(worker, threads: int) -> None:
    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


class TestRawAddAtomicity:
    def test_pipeline_stats_add_loses_no_updates(self):
        registry = MetricsRegistry()
        stats = PipelineStats().bind(registry)
        threads, iterations = 8, 5_000

        def worker():
            for _ in range(iterations):
                stats.add(requests_in=3, requests_out=1, bytes_fetched=10)

        _hammer(worker, threads)
        assert stats.requests_in == 3 * threads * iterations
        assert stats.requests_out == threads * iterations
        assert stats.bytes_fetched == 10 * threads * iterations
        assert (
            registry.counter("airphant_pipeline_logical_requests_total").value()
            == stats.requests_in
        )

    def test_resilience_stats_add_loses_no_updates(self):
        registry = MetricsRegistry()
        stats = ResilientStore(InMemoryObjectStore(), metrics=registry).stats
        threads, iterations = 8, 5_000

        def worker():
            for _ in range(iterations):
                stats.add(attempts=1, retries=1)

        _hammer(worker, threads)
        assert stats.attempts == threads * iterations
        assert stats.retries == threads * iterations
        assert (
            registry.counter("airphant_resilience_attempts_total").value()
            == stats.attempts
        )


class TestConcurrentComponents:
    def test_concurrent_pipeline_fetches_account_exactly(self):
        base = InMemoryObjectStore()
        base.put("blob", bytes(i % 251 for i in range(4096)))
        counting = CountingStore(base)
        pipeline = ReadPipeline.for_store(
            counting, max_concurrency=8, cache_bytes=0, metrics=MetricsRegistry()
        )
        threads, batches_per_thread, batch_size = 8, 40, 5

        def worker():
            for i in range(batches_per_thread):
                requests = [
                    RangeRead("blob", (i * 64 + j * 16) % 4000, 16)
                    for j in range(batch_size)
                ]
                payloads = pipeline.fetch(requests).payloads
                assert [len(p) for p in payloads] == [16] * batch_size

        _hammer(worker, threads)
        stats = pipeline.stats.snapshot()
        assert stats["requests_in"] == threads * batches_per_thread * batch_size
        assert stats["batches"] == threads * batches_per_thread
        # Physical accounting matches what the store actually served, even
        # with every batch planned and committed from a different thread.
        assert stats["requests_out"] == counting.read_calls
        assert stats["bytes_fetched"] == counting.bytes_returned
        assert stats["cache_hits"] + stats["cache_misses"] == stats["requests_in"]
        pipeline.close()

    def test_concurrent_resilient_reads_account_exactly(self):
        base = InMemoryObjectStore()
        base.put("blob", b"x" * 512)
        flaky = FlakyStore(base, error_rate=0.2, seed=11)
        store = ResilientStore(
            flaky, retries=4, backoff_ms=0.05, backoff_jitter=0.0, metrics=MetricsRegistry()
        )
        threads, reads_per_thread = 16, 60
        failures = []

        def worker():
            for i in range(reads_per_thread):
                try:
                    assert store.get_range("blob", i % 256, 8) == b"x" * 8
                except RetriesExhaustedError:
                    failures.append(1)

        _hammer(worker, threads)
        stats = store.stats
        total = threads * reads_per_thread
        assert stats.operations == total
        # The defining identities hold exactly under contention: every
        # operation's first attempt plus every retry, no lost updates.
        assert stats.attempts == stats.operations + stats.retries
        assert stats.failures == len(failures)
        assert stats.recoveries <= stats.retries
        assert flaky.injected_errors == stats.attempts - (total - stats.failures)
        store.close()

    def test_fetcher_pool_reads_through_resilient_store_stay_consistent(self):
        """The full stack: fetcher pool -> resilient wrapper -> flaky store."""
        base = InMemoryObjectStore()
        base.put("blob", bytes(range(256)))
        flaky = FlakyStore(base, error_rate=0.15, seed=5)
        store = ResilientStore(
            flaky, retries=5, backoff_ms=0.05, backoff_jitter=0.0, metrics=MetricsRegistry()
        )
        fetcher = ParallelFetcher(store, max_concurrency=8)
        for _ in range(20):
            result = fetcher.fetch([RangeRead("blob", i * 8, 8) for i in range(16)])
            assert result.payloads == [bytes(range(i * 8, i * 8 + 8)) for i in range(16)]
        fetcher.close()
        assert store.stats.operations == 20 * 16
        assert store.stats.attempts == store.stats.operations + store.stats.retries
        assert store.stats.failures == 0
        store.close()

    def test_transient_error_type_is_what_flaky_injects(self):
        flaky = FlakyStore(InMemoryObjectStore(), error_rate=1.0)
        flaky.backend.put("blob", b"x")
        try:
            flaky.get("blob")
        except TransientStoreError:
            pass
        else:  # pragma: no cover - defends the fixture's assumption
            raise AssertionError("FlakyStore should raise TransientStoreError")
