"""Unit tests for the metrics registry, histograms, and exposition format."""

from __future__ import annotations

import threading

import pytest
from harness.prometheus import parse_prometheus

from repro.observability import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    get_registry,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("airphant_test_total", "help text")
        counter.inc()
        counter.inc(41)
        assert counter.value() == 42
        assert counter.total == 42

    def test_labeled_series_are_independent(self, registry):
        counter = registry.counter("airphant_test_total", label_names=("mode",))
        counter.inc(mode="keyword")
        counter.inc(2, mode="regex")
        assert counter.value(mode="keyword") == 1
        assert counter.value(mode="regex") == 2
        assert counter.value(mode="boolean") == 0
        assert counter.total == 3

    def test_counters_never_decrease(self, registry):
        counter = registry.counter("airphant_test_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_labels_are_rejected(self, registry):
        counter = registry.counter("airphant_test_total", label_names=("mode",))
        with pytest.raises(ValueError):
            counter.inc(other="x")
        with pytest.raises(ValueError):
            counter.inc()

    def test_registration_is_idempotent_but_typed(self, registry):
        first = registry.counter("airphant_test_total")
        assert registry.counter("airphant_test_total") is first
        with pytest.raises(ValueError):
            registry.histogram("airphant_test_total")

    def test_label_schema_conflicts_fail_at_registration(self, registry):
        registry.counter("airphant_test_total", label_names=("mode",))
        # Even an *empty* schema mismatch must fail here, not later inside
        # .inc() on the record hot path.
        with pytest.raises(ValueError):
            registry.counter("airphant_test_total")
        with pytest.raises(ValueError):
            registry.counter("airphant_test_total", label_names=("other",))

    def test_histogram_bucket_conflicts_fail_at_registration(self, registry):
        registry.histogram("airphant_test_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("airphant_test_seconds", buckets=(0.2, 1.0))
        assert (
            registry.histogram("airphant_test_seconds", buckets=(0.1, 1.0)).buckets
            == (0.1, 1.0)
        )

    def test_invalid_names_are_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("0bad")
        with pytest.raises(ValueError):
            registry.counter("ok_total", label_names=("bad-label",))


class TestHistogram:
    def test_quantiles_from_buckets(self, registry):
        histogram = registry.histogram(
            "airphant_test_seconds", buckets=(0.01, 0.1, 1.0)
        )
        for value in [0.005] * 50 + [0.05] * 40 + [0.5] * 8 + [5.0] * 2:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["min"] == 0.005
        assert summary["max"] == 5.0
        # p50 falls in the first bucket, p95 in the third, p99 in +Inf.
        assert summary["p50"] <= 0.01
        assert 0.1 < summary["p95"] <= 1.0
        assert summary["p99"] > 1.0

    def test_empty_histogram_summary_is_zero(self, registry):
        histogram = registry.histogram("airphant_test_seconds")
        assert histogram.summary()["count"] == 0
        assert histogram.quantile(0.99) == 0.0

    def test_merged_summary_spans_label_sets(self, registry):
        histogram = registry.histogram(
            "airphant_test_seconds", label_names=("mode",), buckets=DEFAULT_BUCKETS
        )
        histogram.observe(0.002, mode="a")
        histogram.observe(0.2, mode="b")
        merged = histogram.merged_summary()
        assert merged["count"] == 2
        assert merged["min"] == 0.002
        assert merged["max"] == 0.2

    def test_buckets_must_increase(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("airphant_bad_seconds", buckets=(1.0, 1.0))


class TestExposition:
    def test_round_trips_through_the_validating_parser(self, registry):
        counter = registry.counter(
            "airphant_test_total", 'tricky "help" with \\ and\nnewline', ("status",)
        )
        counter.inc(3, status='20"0\\x')
        histogram = registry.histogram(
            "airphant_test_seconds", "latency", ("mode",), buckets=(0.01, 1.0)
        )
        histogram.observe(0.005, mode="keyword")
        histogram.observe(2.0, mode="keyword")
        # A literal backslash followed by 'n' (NOT a newline): renders as
        # '\\n' and must round-trip back to backslash + 'n'.
        counter.inc(7, status="C:\\new")
        families = parse_prometheus(registry.to_prometheus())
        assert families["airphant_test_total"].value(status='20"0\\x') == 3
        assert families["airphant_test_total"].value(status="C:\\new") == 7
        assert families["airphant_test_seconds"].histogram_count(mode="keyword") == 2

    def test_unobserved_families_are_omitted(self, registry):
        registry.counter("airphant_never_total", "registered but never incremented")
        assert registry.to_prometheus() == ""

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("airphant_x_total{unclosed 1\n")
        with pytest.raises(ValueError):
            parse_prometheus("no_type_declared_total 1\n")
        with pytest.raises(ValueError):
            parse_prometheus(
                "# TYPE h histogram\n"
                'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\nh_sum 1\nh_count 3\n'
            )  # non-cumulative buckets


class TestRegistry:
    def test_snapshot_and_summary(self, registry):
        registry.counter("airphant_a_total").inc(2)
        registry.histogram("airphant_b_seconds").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["airphant_a_total"]["total"] == 2
        assert snapshot["histograms"]["airphant_b_seconds"]["values"][0]["count"] == 1
        summary = registry.summary()
        assert summary["airphant_a_total"] == 2
        assert summary["airphant_b_seconds"]["count"] == 1

    def test_reset_keeps_registrations_alive(self, registry):
        counter = registry.counter("airphant_a_total")
        counter.inc(5)
        registry.reset()
        assert counter.value() == 0
        counter.inc()  # the held reference still works and lands in the registry
        assert registry.counter("airphant_a_total").value() == 1

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("airphant_a_total")
        histogram = registry.histogram("airphant_b_seconds")
        counter.inc(10)
        histogram.observe(1.0)
        assert counter.value() == 0
        assert histogram.summary()["count"] == 0
        registry.enable()
        counter.inc()
        assert counter.value() == 1

    def test_null_registry_is_permanently_disabled(self):
        assert not NULL_REGISTRY.enabled
        # It is shared by every metrics_enabled=False service in the
        # process, so it must refuse to be switched on.
        with pytest.raises(RuntimeError):
            NULL_REGISTRY.enable()
        assert not NULL_REGISTRY.enabled

    def test_get_registry_is_a_stable_singleton(self):
        assert get_registry() is get_registry()

    def test_concurrent_increments_are_exact(self, registry):
        counter = registry.counter("airphant_hammer_total", label_names=("worker",))
        histogram = registry.histogram("airphant_hammer_seconds")
        threads = 8
        per_thread = 2_000

        def hammer(worker: int) -> None:
            for i in range(per_thread):
                counter.inc(worker=str(worker % 2))
                histogram.observe(i / per_thread)

        pool = [threading.Thread(target=hammer, args=(t,)) for t in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.total == threads * per_thread
        assert histogram.summary()["count"] == threads * per_thread
