"""Tests for the Gauge metric kind and the service occupancy gauges."""

from __future__ import annotations

import pytest

from repro.core.config import SketchConfig
from repro.observability import MetricsRegistry, NULL_REGISTRY
from repro.service import AirphantService, SearchRequest, ServiceConfig
from repro.storage.memory import InMemoryObjectStore

from harness.prometheus import parse_prometheus


class TestGauge:
    def test_set_inc_dec_and_series(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "a gauge", label_names=("shard",))
        gauge.set(5, shard="a")
        gauge.inc(2, shard="a")
        gauge.dec(3, shard="a")
        gauge.set(1, shard="b")
        assert gauge.value(shard="a") == 4
        assert gauge.total == 5
        assert gauge.series() == {("a",): 4.0, ("b",): 1.0}
        gauge.remove(shard="b")
        assert gauge.value(shard="b") == 0

    def test_function_bound_gauge_evaluates_at_read_time(self):
        registry = MetricsRegistry()
        state = {"value": 3}
        gauge = registry.gauge("g", "computed")
        gauge.set_function(lambda: state["value"])
        assert gauge.value() == 3
        state["value"] = 8
        assert gauge.value() == 8
        assert gauge.series() == {(): 8.0}
        # A function-bound gauge refuses stored updates.
        with pytest.raises(ValueError):
            gauge.set(1)
        with pytest.raises(ValueError):
            gauge.inc()

    def test_function_binding_requires_unlabeled(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", label_names=("x",))
        with pytest.raises(ValueError):
            gauge.set_function(lambda: 1)

    def test_disabled_registry_gauges_stay_silent(self):
        registry = MetricsRegistry(enabled=False)
        stored = registry.gauge("stored")
        stored.set(5)
        assert stored.value() == 0
        computed = registry.gauge("computed")
        computed.set_function(lambda: 42)
        # The callable is not even evaluated: no series, empty exposition.
        assert computed.series() == {}
        assert computed.total == 0
        assert registry.to_prometheus() == ""

    def test_null_registry_rejects_nothing_but_records_nothing(self):
        gauge = NULL_REGISTRY.gauge("airphant_test_null_gauge")
        gauge.set(9)
        assert gauge.value() == 0

    def test_registration_conflicts_fail_loudly(self):
        registry = MetricsRegistry()
        registry.gauge("g", label_names=("a",))
        with pytest.raises(ValueError):
            registry.gauge("g", label_names=("b",))
        with pytest.raises(ValueError):
            registry.counter("g")

    def test_prometheus_rendering_and_snapshot(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("airphant_things", "things right now", label_names=("kind",))
        gauge.set(2, kind="open")
        text = registry.to_prometheus()
        assert "# TYPE airphant_things gauge" in text
        assert 'airphant_things{kind="open"} 2' in text
        families = parse_prometheus(text)
        assert families["airphant_things"].kind == "gauge"
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["airphant_things"]["total"] == 2
        assert registry.summary()["airphant_things"] == 2


class TestServiceOccupancyGauges:
    def test_open_indexes_and_read_cache_gauges_track_the_catalog(self):
        registry = MetricsRegistry()
        store = InMemoryObjectStore()
        config = ServiceConfig(ingest_interval_s=0, read_cache_bytes=1 << 16)
        service = AirphantService(store, config, metrics=registry)
        store.put("corpus/a.txt", b"error disk\ninfo ok\n")
        service.build_index("idx", ["corpus/a.txt"], sketch_config=SketchConfig(num_bins=32))

        open_gauge = registry.gauge("airphant_open_indexes")
        cache_gauge = registry.gauge("airphant_read_cache_bytes_used")
        assert open_gauge.value() == 0
        service.execute(SearchRequest(query="error", index="idx"))
        assert open_gauge.value() == 1
        # The query's superpost/document reads populated the block cache.
        assert cache_gauge.value() > 0
        # Both ride the healthz metrics summary and the exposition.
        assert service.health()["metrics"]["airphant_open_indexes"] == 1
        assert "airphant_open_indexes 1" in registry.to_prometheus()
        service.close()
        assert open_gauge.value() == 0
        assert cache_gauge.value() == 0
