"""End-to-end tests of the three metrics export surfaces.

* ``GET /metrics`` — valid Prometheus exposition with pipeline, resilience,
  backend, facade, and simulated-store families populated after builds and
  searches over ``mem://``, ``sim://``, and the emulated ``s3://`` harness
  (the PR's acceptance criterion);
* ``GET /healthz`` — the compact ``metrics`` summary block;
* ``airphant stats`` — the CLI snapshot, in both local-probe and scrape
  modes.
"""

from __future__ import annotations

import http.server
import json
import threading
import urllib.error
import urllib.request

import pytest
from harness.prometheus import parse_prometheus

from repro.cli import main
from repro.core.config import SketchConfig
from repro.observability import MetricsRegistry
from repro.service import AirphantService, SearchRequest, ServiceConfig, ServiceError
from repro.service.http import create_server
from repro.storage.registry import open_store

CORPUS = b"error disk full\ninfo started\nerror timeout\nwarn noise"


def _drive(service: AirphantService) -> None:
    """Build a tiny index and run one query of every mode through ``service``."""
    service.store.put("corpora/logs.txt", CORPUS)
    service.build_index("logs", ["corpora/logs.txt"], sketch_config=SketchConfig(num_bins=64))
    assert service.search(SearchRequest(query="error", index="logs")).num_results == 2
    service.search(SearchRequest(query="error AND disk", index="logs", mode="boolean"))
    service.close()


@pytest.fixture
def server():
    """An HTTP server over a mem:// service (resilience wrapper on)."""
    service = AirphantService.from_uri("mem://", ServiceConfig(retries=1))
    http_server = create_server(service)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    try:
        yield http_server
    finally:
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5)
        service.close()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return response.status, response.headers, response.read().decode("utf-8")


class TestMetricsEndpoint:
    def test_exposition_is_valid_and_populated_across_backends(
        self, server, s3_emulator
    ):
        # Drive traffic through all three backend families first: the plain
        # in-memory one behind the server, a simulated store (virtual-clock
        # accounting), and the emulated S3 endpoint (real HTTP requests).
        _drive(AirphantService.from_uri("sim://", ServiceConfig(retries=1)))
        _drive(AirphantService.from_uri(s3_emulator.uri()))
        _drive(server.service)

        status, headers, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        families = parse_prometheus(body)  # raises on any format violation

        # Pipeline, resilience, backend, facade, and simulated-store
        # families all populated on the one shared exposition page.
        assert families["airphant_pipeline_logical_requests_total"].total() > 0
        assert families["airphant_pipeline_physical_requests_total"].total() > 0
        assert families["airphant_resilience_operations_total"].total() > 0
        assert families["airphant_resilience_attempts_total"].total() > 0
        backend = families["airphant_backend_requests_total"]
        assert any(s.labels.get("backend") == "s3" for s in backend.samples)
        assert families["airphant_backend_request_seconds"].samples
        assert families["airphant_queries_total"].total() > 0
        assert (
            families["airphant_query_seconds"].histogram_count(
                mode="keyword", index="logs"
            )
            > 0
        )
        assert families["airphant_builds_total"].total() > 0
        assert families["airphant_sim_round_trips_total"].total() > 0

    def test_metrics_monotonically_increase_with_traffic(self, server):
        _drive(server.service)
        first = parse_prometheus(_get(f"{server.url}/metrics")[2])
        before = first["airphant_queries_total"].total()
        _drive(server.service)
        second = parse_prometheus(_get(f"{server.url}/metrics")[2])
        assert second["airphant_queries_total"].total() >= before + 2

    def test_metrics_disabled_answers_404(self):
        service = AirphantService.from_uri(
            "mem://", ServiceConfig(metrics_enabled=False)
        )
        http_server = create_server(service)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{http_server.url}/metrics")
            assert excinfo.value.code == 404
            assert json.loads(excinfo.value.read())["error"] == "metrics_disabled"
        finally:
            http_server.shutdown()
            http_server.server_close()
            thread.join(timeout=5)
            service.close()


class TestErrorAccounting:
    def test_lookup_failures_land_in_the_error_counter(self):
        registry = MetricsRegistry()
        service = AirphantService(open_store("mem://"), metrics=registry)
        with pytest.raises(ServiceError):
            service.lookup_postings("missing", "word")
        errors = registry.counter("airphant_query_errors_total", label_names=("error",))
        assert errors.value(error="index_not_found") == 1
        service.close()

    def test_untyped_failures_count_as_internal_error(self):
        """A corrupted/deleted index blob (HTTP 500 class) must not be a
        flat line in the error counters."""
        registry = MetricsRegistry()
        service = AirphantService(open_store("mem://"), metrics=registry)
        service.store.put("corpora/logs.txt", CORPUS)
        service.build_index(
            "logs", ["corpora/logs.txt"], sketch_config=SketchConfig(num_bins=64)
        )
        service.store.delete("corpora/logs.txt")  # document retrieval will 500
        with pytest.raises(Exception):
            service.search(SearchRequest(query="error", index="logs"))
        errors = registry.counter("airphant_query_errors_total", label_names=("error",))
        assert errors.value(error="internal_error") == 1
        service.close()


class TestHealthzMetricsBlock:
    def test_healthz_carries_a_metrics_summary(self, server):
        _drive(server.service)
        _, _, body = _get(f"{server.url}/healthz")
        payload = json.loads(body)
        assert payload["config"]["metrics_enabled"] is True
        summary = payload["metrics"]
        assert summary["airphant_queries_total"] >= 2
        assert summary["airphant_query_seconds"]["count"] >= 2
        assert {"p50", "p95", "p99"} <= set(summary["airphant_query_seconds"])

    def test_disabled_metrics_drop_the_block(self):
        service = AirphantService.from_uri(
            "mem://", ServiceConfig(metrics_enabled=False)
        )
        assert "metrics" not in service.health()
        # The facade records nothing either: the registry stays silent.
        service.store.put("corpora/logs.txt", CORPUS)
        service.build_index(
            "logs", ["corpora/logs.txt"], sketch_config=SketchConfig(num_bins=64)
        )
        service.search(SearchRequest(query="error", index="logs"))
        assert service.metrics.to_prometheus() == ""
        service.close()


class TestStatsCLI:
    @pytest.fixture
    def bucket(self, tmp_path):
        path = tmp_path / "bucket"
        path.mkdir()
        (path / "corpora").mkdir()
        (path / "corpora" / "logs.txt").write_bytes(CORPUS)
        assert (
            main(
                [
                    "build",
                    "--bucket",
                    str(path),
                    "--blobs",
                    "corpora/logs.txt",
                    "--index",
                    "logs",
                    "--bins",
                    "64",
                ]
            )
            == 0
        )
        return path

    def test_local_probe_replays_a_query_and_prints_json(self, bucket, capsys):
        code = main(
            [
                "stats",
                "--bucket",
                str(bucket),
                "--index",
                "logs",
                "--query",
                "error",
                "--repeat",
                "3",
            ]
        )
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["airphant_queries_total"]["total"] >= 3
        assert "airphant_query_seconds" in snapshot["histograms"]

    def test_local_probe_prometheus_format_is_valid(self, bucket, capsys):
        code = main(
            [
                "stats",
                "--bucket",
                str(bucket),
                "--index",
                "logs",
                "--query",
                "error",
                "--format",
                "prometheus",
            ]
        )
        assert code == 0
        families = parse_prometheus(capsys.readouterr().out)
        assert (
            families["airphant_queries_total"].value(mode="keyword", index="logs") >= 1
        )

    def test_query_without_index_is_rejected(self, bucket, capsys):
        assert main(["stats", "--bucket", str(bucket), "--query", "error"]) == 2
        assert "--index" in capsys.readouterr().err

    def test_replay_flags_are_rejected_in_scrape_mode(self, capsys):
        # Scrape mode cannot replay queries on the remote node; accepting
        # these flags silently would fake a replay that never happened.
        assert (
            main(["stats", "--url", "http://127.0.0.1:9", "--query", "error"]) == 2
        )
        assert "cannot be combined with --url" in capsys.readouterr().err

    def test_scrape_mode_reads_a_live_node(self, server, capsys):
        _drive(server.service)
        assert main(["stats", "--url", server.url]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["airphant_queries_total"] >= 2

        assert main(["stats", "--url", server.url, "--format", "prometheus"]) == 0
        families = parse_prometheus(capsys.readouterr().out)
        assert families["airphant_queries_total"].total() >= 2

    def test_scrape_mode_reports_unreachable_nodes(self, capsys):
        assert main(["stats", "--url", "http://127.0.0.1:9", "--format", "json"]) == 2
        assert "could not scrape" in capsys.readouterr().err

    def test_scrape_mode_rejects_non_json_answers(self, capsys):
        class _Splash(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                body = b"<html>totally not airphant</html>"
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # noqa: A002
                pass

        splash = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _Splash)
        thread = threading.Thread(target=splash.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{splash.server_address[1]}"
            assert main(["stats", "--url", url]) == 2
            assert "did not answer JSON" in capsys.readouterr().err
        finally:
            splash.shutdown()
            splash.server_close()
            thread.join(timeout=5)
