"""Tests for the index catalog: discovery, lazy open, reuse, invalidation."""

import pytest

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.index.updates import AppendOnlyIndexManager
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.service.catalog import IndexCatalog
from repro.service.config import ServiceConfig


@pytest.fixture
def catalog(sim_store, built_small_index) -> IndexCatalog:
    return IndexCatalog(sim_store, ServiceConfig())


class TestDiscovery:
    def test_finds_built_indexes(self, catalog, sim_store, small_documents):
        AirphantBuilder(sim_store, config=SketchConfig(num_bins=32, seed=1)).build_from_documents(
            small_documents, index_name="second-index"
        )
        assert catalog.names() == ["second-index", "small-index"]

    def test_delta_indexes_are_not_catalog_entries(self, sim_store, small_documents):
        manager = AppendOnlyIndexManager(
            sim_store, base_index="managed", config=SketchConfig(num_bins=32, seed=1)
        )
        manager.build_base(small_documents)
        manager.append(small_documents[:2])
        catalog = IndexCatalog(sim_store)
        assert catalog.names() == ["managed"]
        assert not catalog.contains("managed/delta-0000")
        # ...but the delta is folded into the base index's searcher.
        searcher = catalog.open("managed")
        assert searcher.index_names == ["managed", "managed/delta-0000"]

    def test_contains(self, catalog):
        assert catalog.contains("small-index")
        assert not catalog.contains("missing-index")


class TestLazyOpen:
    def test_not_open_until_first_use(self, catalog):
        assert not catalog.is_open("small-index")
        catalog.open("small-index")
        assert catalog.is_open("small-index")

    def test_open_reuses_the_same_searcher(self, catalog):
        first = catalog.open("small-index")
        second = catalog.open("small-index")
        assert first is second

    def test_open_unknown_index_raises_key_error(self, catalog):
        with pytest.raises(KeyError):
            catalog.open("missing-index")

    def test_open_applies_service_config(self, sim_store, built_small_index):
        catalog = IndexCatalog(
            sim_store,
            ServiceConfig(query_cache_size=4, max_concurrency=8, top_k_delta=0.01),
        )
        searcher = catalog.open("small-index")
        inner = searcher.searchers[0]
        assert inner._query_cache_size == 4
        assert inner._top_k_delta == 0.01

    def test_invalidate_forces_reopen(self, catalog):
        first = catalog.open("small-index")
        catalog.invalidate("small-index")
        assert not catalog.is_open("small-index")
        assert catalog.open("small-index") is not first

    def test_invalidate_all(self, catalog):
        catalog.open("small-index")
        catalog.invalidate()
        assert not catalog.is_open("small-index")


class TestInfo:
    def test_info_without_opening(self, catalog, built_small_index):
        info = catalog.info("small-index")
        assert info.name == "small-index"
        assert info.num_documents == built_small_index.metadata.num_documents
        assert info.storage_bytes > 0
        assert not info.is_open
        # Inspecting must not have opened the index.
        assert not catalog.is_open("small-index")

    def test_info_after_open_reports_open(self, catalog):
        catalog.open("small-index")
        assert catalog.info("small-index").is_open

    def test_info_unknown_index_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.info("missing-index")

    def test_info_lists_deltas(self, sim_store, small_documents):
        manager = AppendOnlyIndexManager(
            sim_store, base_index="managed", config=SketchConfig(num_bins=32, seed=1)
        )
        manager.build_base(small_documents)
        manager.append(small_documents[:2])
        info = IndexCatalog(sim_store).info("managed")
        assert info.delta_indexes == ("managed/delta-0000",)

    def test_list_infos_covers_all_names(self, catalog):
        infos = catalog.list_infos()
        assert [info.name for info in infos] == catalog.names()
