"""End-to-end tests of the JSON HTTP API on an ephemeral port.

The server runs in a background thread over a temporary directory bucket
(:class:`LocalObjectStore`), exactly as ``airphant serve --bucket ...`` does;
requests go through the real socket with ``urllib``.
"""

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import AirphantService, ServiceConfig, create_server
from repro.storage.local import LocalObjectStore

CORPUS = b"\n".join(
    [
        b"error disk full on node1",
        b"info service started on node1",
        b"error timeout connecting to node2",
        b"warn retry after error on node3",
        b"info heartbeat ok node2",
    ]
)


@pytest.fixture
def server(tmp_path):
    store = LocalObjectStore(str(tmp_path / "bucket"))
    store.put("corpora/logs.txt", CORPUS)
    service = AirphantService(store, ServiceConfig(query_cache_size=8))
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _get(server, path):
    try:
        with urllib.request.urlopen(f"{server.url}{path}", timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(server, path, body):
    data = body if isinstance(body, bytes) else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"{server.url}{path}",
        data=data,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _build_index(server, name="logs-index"):
    return _post(
        server, f"/indexes/{name}/build", {"blobs": ["corpora/logs.txt"], "num_bins": 64}
    )


class TestHealthz:
    def test_healthz_reports_status_and_catalog(self, server):
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["indexes"] == 0
        assert payload["config"]["query_cache_size"] == 8

    def test_healthz_counts_built_indexes(self, server):
        _build_index(server)
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload["indexes"] == 1

    def test_query_string_is_ignored_by_routing(self, server):
        status, payload = _get(server, "/healthz?verbose=1")
        assert status == 200
        assert payload["status"] == "ok"


class TestIndexes:
    def test_empty_bucket_lists_nothing(self, server):
        status, payload = _get(server, "/indexes")
        assert status == 200
        assert payload == {"indexes": []}

    def test_build_then_list(self, server):
        status, built = _build_index(server)
        assert status == 200
        assert built["name"] == "logs-index"
        assert built["num_documents"] == 5
        assert built["storage_bytes"] > 0

        status, payload = _get(server, "/indexes")
        assert status == 200
        assert [info["name"] for info in payload["indexes"]] == ["logs-index"]

    def test_get_single_index(self, server):
        _build_index(server)
        status, payload = _get(server, "/indexes/logs-index")
        assert status == 200
        assert payload["num_documents"] == 5

    def test_get_unknown_index_is_404(self, server):
        status, payload = _get(server, "/indexes/missing")
        assert status == 404
        assert payload["error"] == "index_not_found"
        assert payload["status"] == 404

    def test_build_with_missing_blob_is_404(self, server):
        status, payload = _post(
            server, "/indexes/x/build", {"blobs": ["corpora/nothere.txt"]}
        )
        assert status == 404
        assert payload["error"] == "blob_not_found"

    def test_build_without_blobs_is_400(self, server):
        status, payload = _post(server, "/indexes/x/build", {"num_bins": 64})
        assert status == 400
        assert payload["error"] == "bad_build_request"


class TestSearch:
    def test_keyword_search_end_to_end(self, server):
        _build_index(server)
        status, payload = _post(
            server, "/search", {"index": "logs-index", "query": "error", "top_k": 10}
        )
        assert status == 200
        assert payload["mode"] == "keyword"
        assert payload["num_results"] == 3
        assert all("error" in doc["text"] for doc in payload["documents"])
        assert payload["false_positive_count"] >= 0
        assert payload["latency"]["round_trips"] >= 2
        assert "total_ms" in payload["latency"]

    def test_boolean_search(self, server):
        _build_index(server)
        status, payload = _post(
            server,
            "/search",
            {"index": "logs-index", "query": "error AND (disk OR timeout)", "mode": "boolean"},
        )
        assert status == 200
        assert payload["num_results"] == 2

    def test_regex_search(self, server):
        _build_index(server)
        status, payload = _post(
            server,
            "/search",
            {"index": "logs-index", "query": r"error .* node\d", "mode": "regex"},
        )
        assert status == 200
        assert payload["num_results"] >= 1
        assert all("error" in doc["text"] for doc in payload["documents"])

    def test_include_text_false_returns_references_only(self, server):
        _build_index(server)
        status, payload = _post(
            server,
            "/search",
            {"index": "logs-index", "query": "error", "include_text": False},
        )
        assert status == 200
        assert payload["num_results"] == 3
        for doc in payload["documents"]:
            assert "text" not in doc
            assert doc["blob"] == "corpora/logs.txt"

    def test_ranked_search_end_to_end(self, server):
        _build_index(server)
        status, payload = _post(
            server,
            "/search",
            {"index": "logs-index", "query": "error", "mode": "topk_bm25", "top_k": 2},
        )
        assert status == 200
        assert payload["mode"] == "topk_bm25"
        assert payload["num_results"] == 2
        scores = [doc["score"] for doc in payload["documents"]]
        assert all(0.0 <= score <= 1.0 for score in scores)
        assert scores == sorted(scores, reverse=True)
        assert all("error" in doc["text"] for doc in payload["documents"])

    def test_ranked_search_defaults_k_when_omitted(self, server):
        _build_index(server)
        status, payload = _post(
            server, "/search", {"index": "logs-index", "query": "error", "mode": "topk_bm25"}
        )
        assert status == 200
        # All three matches fit under the default k of 10.
        assert payload["num_results"] == 3

    def test_ranked_search_accepts_weights(self, server):
        _build_index(server)
        status, payload = _post(
            server,
            "/search",
            {
                "index": "logs-index",
                "query": "error timeout",
                "mode": "topk_bm25",
                "weights": {"timeout": 3.0},
            },
        )
        assert status == 200
        assert payload["documents"][0]["text"] == "error timeout connecting to node2"

    def test_bad_weights_are_400(self, server):
        _build_index(server)
        status, payload = _post(
            server,
            "/search",
            {
                "index": "logs-index",
                "query": "error",
                "mode": "topk_bm25",
                "weights": {"error": -2.0},
            },
        )
        assert status == 400
        assert payload["error"] == "bad_request"

    def test_ranked_search_without_stats_blob_is_typed_400(self, server, tmp_path):
        _build_index(server)
        (tmp_path / "bucket" / "logs-index" / "stats.json").unlink()
        status, payload = _post(
            server, "/search", {"index": "logs-index", "query": "error", "mode": "topk_bm25"}
        )
        assert status == 400
        assert payload["error"] == "ranking_unavailable"
        assert "rebuild" in payload["message"]

    def test_search_unknown_index_is_404(self, server):
        status, payload = _post(server, "/search", {"index": "missing", "query": "error"})
        assert status == 404
        assert payload["error"] == "index_not_found"

    def test_bad_mode_is_400(self, server):
        _build_index(server)
        status, payload = _post(
            server, "/search", {"index": "logs-index", "query": "x", "mode": "fuzzy"}
        )
        assert status == 400
        assert payload["error"] == "bad_request"

    def test_malformed_json_body_is_400(self, server):
        status, payload = _post(server, "/search", b"{not json")
        assert status == 400
        assert payload["error"] == "bad_request"

    def test_malformed_boolean_query_is_400(self, server):
        _build_index(server)
        status, payload = _post(
            server,
            "/search",
            {"index": "logs-index", "query": "error AND (disk", "mode": "boolean"},
        )
        assert status == 400
        assert payload["error"] == "bad_query"

    def test_unknown_route_is_404(self, server):
        status, payload = _get(server, "/nothing/here")
        assert status == 404
        assert payload["error"] == "not_found"

    def test_non_string_query_is_400(self, server):
        _build_index(server)
        status, payload = _post(server, "/search", {"index": "logs-index", "query": 5})
        assert status == 400
        assert payload["error"] == "bad_request"

    def test_keep_alive_survives_an_early_error_response(self, server):
        # A POST whose body is never consumed by the handler (404 before the
        # body is read) must not desync the next request on the same
        # persistent connection.
        _build_index(server)
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            body = json.dumps({"query": "error", "padding": "x" * 4096})
            connection.request(
                "POST", "/searches", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            connection.request(
                "POST",
                "/search",
                body=json.dumps({"index": "logs-index", "query": "error"}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["num_results"] == 3
        finally:
            connection.close()

    def test_concurrent_requests(self, server):
        _build_index(server)
        results = []

        def query():
            results.append(
                _post(server, "/search", {"index": "logs-index", "query": "error"})
            )

        threads = [threading.Thread(target=query) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(results) == 8
        assert all(status == 200 and payload["num_results"] == 3 for status, payload in results)


class TestStoreFailures:
    """Backend failures must surface as typed JSON errors, not 500s."""

    @pytest.fixture
    def flaky_server(self, tmp_path):
        from repro.storage.faults import FlakyStore
        from repro.storage.local import LocalObjectStore
        from repro.storage.resilient import ResilientStore

        inner = LocalObjectStore(str(tmp_path / "bucket"))
        inner.put("corpora/logs.txt", CORPUS)
        flaky = FlakyStore(inner)
        store = ResilientStore(flaky, retries=1, backoff_ms=0.0)
        service = AirphantService(store, ServiceConfig(query_cache_size=8))
        server = create_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server, flaky
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_retry_exhaustion_surfaces_as_503_store_unavailable(self, flaky_server):
        server, flaky = flaky_server
        status, _ = _build_index(server)
        assert status == 200
        # From now on every read fails; 1 retry cannot save the query.
        flaky.error_rate = 1.0
        status, payload = _post(
            server, "/search", {"index": "logs-index", "query": "error"}
        )
        assert status == 503
        assert payload["error"] == "store_unavailable"
        assert payload["status"] == 503
        assert "attempt" in payload["message"]

    def test_transient_faults_are_retried_transparently(self, flaky_server):
        server, flaky = flaky_server
        assert _build_index(server)[0] == 200
        # Exactly one fault per wave of reads: a single retry always rescues.
        flaky.script(["error"])
        status, payload = _post(
            server, "/search", {"index": "logs-index", "query": "error"}
        )
        assert status == 200
        assert payload["num_results"] == 3

    def test_healthz_reports_resilient_store(self, flaky_server):
        server, _ = flaky_server
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload["store"]["type"] == "ResilientStore"

    def test_listing_during_outage_is_typed_503(self, flaky_server):
        """GET /indexes honours the same error contract as POST /search."""
        server, flaky = flaky_server
        assert _build_index(server)[0] == 200

        def listing_fails(prefix=""):
            from repro.storage.base import TransientStoreError

            raise TransientStoreError("injected listing outage")

        flaky.list_blobs = listing_fails
        status, payload = _get(server, "/indexes")
        assert status == 503
        assert payload["error"] == "store_unavailable"

    def test_healthz_degrades_instead_of_failing_during_outage(self, flaky_server):
        server, flaky = flaky_server

        def listing_fails(prefix=""):
            from repro.storage.base import TransientStoreError

            raise TransientStoreError("injected listing outage")

        flaky.list_blobs = listing_fails
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "degraded"
        assert "outage" in payload["store_error"]
        assert "indexes" not in payload

    def test_missing_container_is_typed_404_and_degraded_health(self, flaky_server):
        """An s3:// URI naming a nonexistent bucket answers 404 on listing;
        that must be a typed error / degraded health, never a 500."""
        server, flaky = flaky_server

        def listing_404(prefix=""):
            from repro.storage.base import BlobNotFoundError

            raise BlobNotFoundError("<list>")

        flaky.list_blobs = listing_404
        status, payload = _get(server, "/indexes")
        assert status == 404
        assert payload["error"] == "store_not_found"
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "degraded"


class TestTracesEndpoints:
    def test_explain_trace_is_retained_and_served(self, server):
        _build_index(server)
        status, body = _post(
            server, "/search", {"query": "error", "index": "logs-index", "explain": True}
        )
        assert status == 200
        trace_id = body["trace"]["trace_id"]
        status, listing = _get(server, "/traces")
        assert status == 200
        assert any(entry["trace_id"] == trace_id for entry in listing["traces"])
        status, payload = _get(server, f"/traces/{trace_id}")
        assert status == 200
        assert payload["trace_id"] == trace_id
        assert payload["spans"]["name"] == "query"
        assert payload["summary"]["totals"]["requests"] > 0

    def test_plain_search_attaches_no_trace(self, server):
        _build_index(server)
        status, body = _post(server, "/search", {"query": "error", "index": "logs-index"})
        assert status == 200
        assert "trace" not in body

    def test_unknown_trace_is_404(self, server):
        status, payload = _get(server, "/traces/deadbeefdeadbeef")
        assert status == 404
        assert payload["error"] == "trace_not_found"

    def test_bad_limit_is_400(self, server):
        for limit in ("0", "junk"):
            status, payload = _get(server, f"/traces?limit={limit}")
            assert status == 400
            assert payload["error"] == "bad_request"

    def test_traces_404_when_tracing_disabled(self, tmp_path):
        store = LocalObjectStore(str(tmp_path / "bucket"))
        service = AirphantService(store, ServiceConfig(tracing_enabled=False))
        server = create_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, payload = _get(server, "/traces")
            assert status == 404
            assert payload["error"] == "tracing_disabled"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestJsonRequestLog:
    def _capture_server(self, tmp_path, monkeypatch):
        import io

        store = LocalObjectStore(str(tmp_path / "bucket"))
        store.put("corpora/logs.txt", CORPUS)
        service = AirphantService(store)
        buffer = io.StringIO()
        monkeypatch.setattr("sys.stderr", buffer)
        server = create_server(service, quiet=False, log_format="json")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return server, thread, buffer

    @staticmethod
    def _wait_lines(buffer, count, timeout=5.0):
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            lines = [line for line in buffer.getvalue().splitlines() if line.strip()]
            if len(lines) >= count:
                return lines
            time.sleep(0.01)
        return [line for line in buffer.getvalue().splitlines() if line.strip()]

    def test_one_structured_line_per_request(self, tmp_path, monkeypatch):
        server, thread, buffer = self._capture_server(tmp_path, monkeypatch)
        try:
            _get(server, "/healthz")
            _post(server, "/search", {"query": "error", "index": "missing"})
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        lines = self._wait_lines(buffer, 2)
        records = [json.loads(line) for line in lines]
        assert [r["event"] for r in records] == ["request", "request"]
        health, search = records
        assert health["method"] == "GET"
        assert health["path"] == "/healthz"
        assert health["status"] == 200
        assert health["duration_ms"] >= 0
        assert "trace_id" not in health
        # The search line correlates with the query's trace even on errors.
        assert search["method"] == "POST"
        assert search["path"] == "/search"
        assert search["status"] == 404
        assert len(search["trace_id"]) == 16

    def test_unknown_log_format_is_rejected(self, tmp_path):
        store = LocalObjectStore(str(tmp_path / "bucket"))
        service = AirphantService(store)
        with pytest.raises(ValueError, match="log_format"):
            create_server(service, log_format="xml")
