"""Service-level tests for deletes, updates, and ingest backpressure.

Read-your-writes for the mutable lifecycle at every searcher tier the
facade composes: the memtable, a flushed delta, the (optionally sharded)
base, and a scatter-gather cluster router — plus the typed 429 overload
answer and the HTTP wire format of ``/docs/delete`` and ``/docs/update``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.parsing.documents import Posting
from repro.service.api import SearchRequest, ServiceError
from repro.service.config import ServiceConfig
from repro.service.facade import AirphantService
from repro.service.http import create_server
from repro.storage.memory import InMemoryObjectStore

CORPUS = b"error disk full\ninfo service ok\nwarn slow response\n"

BASE_REF = Posting(blob="corpus/base.txt", offset=0, length=15)


def _service(store=None, num_shards: int = 1, **config) -> AirphantService:
    store = store if store is not None else InMemoryObjectStore()
    if not store.exists("corpus/base.txt"):
        store.put("corpus/base.txt", CORPUS)
    service = AirphantService(store, ServiceConfig(ingest_interval_s=0, **config))
    service.build_index("live", ["corpus/base.txt"], num_shards=num_shards)
    return service


def _texts(service, query, mode="keyword", top_k=None, index="live") -> set[str]:
    result = service.search(
        SearchRequest(index=index, query=query, mode=mode, top_k=top_k)
    )
    return {d["text"] for d in result.to_dict()["documents"]}


class TestDeleteReadYourWrites:
    def test_base_tier(self):
        service = _service()
        service.delete_documents("live", [BASE_REF])
        assert "error disk full" not in _texts(service, "error")
        service.close()

    def test_sharded_base_tier(self):
        service = _service(num_shards=3)
        service.delete_documents("live", [BASE_REF])
        assert "error disk full" not in _texts(service, "error")
        assert "error disk full" not in _texts(service, "error OR info", mode="boolean")
        service.close()

    def test_memtable_tier(self):
        service = _service()
        refs = service.append_documents("live", ["error fresh event"])["refs"]
        service.delete_documents("live", [Posting(**refs[0])])
        assert "error fresh event" not in _texts(service, "fresh")
        service.close()

    def test_delta_tier(self):
        service = _service()
        refs = service.append_documents("live", ["error fresh event"])["refs"]
        service.flush_index("live")
        service.delete_documents("live", [Posting(**refs[0])])
        assert "error fresh event" not in _texts(service, "fresh")
        service.close()

    def test_every_query_mode_filters(self):
        service = _service()
        service.delete_documents("live", [BASE_REF])
        assert "error disk full" not in _texts(service, "error")
        assert "error disk full" not in _texts(service, "error OR warn", mode="boolean")
        assert "error disk full" not in _texts(service, "error .*full", mode="regex")
        assert "error disk full" not in _texts(
            service, "error", mode="topk_bm25", top_k=5
        )
        service.close()

    def test_delete_survives_service_reopen(self):
        store = InMemoryObjectStore()
        service = _service(store)
        service.delete_documents("live", [BASE_REF])
        service.close()
        reopened = AirphantService(store, ServiceConfig(ingest_interval_s=0))
        result = reopened.search(SearchRequest(index="live", query="error"))
        assert "error disk full" not in {
            d["text"] for d in result.to_dict()["documents"]
        }
        reopened.close()

    def test_facade_errors(self):
        service = _service()
        with pytest.raises(ServiceError) as excinfo:
            service.delete_documents("live", [])
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            service.delete_documents("ghost", [BASE_REF])
        assert excinfo.value.status == 404
        service.close()


class TestUpdateReadYourWrites:
    def test_update_swaps_text_at_query_time(self):
        service = _service()
        outcome = service.update_document("live", BASE_REF, "error replacement text")
        assert outcome["ref"]["blob"].startswith("live/ingest/seg-")
        visible = _texts(service, "error")
        assert "error replacement text" in visible
        assert "error disk full" not in visible
        service.close()

    def test_update_then_flush_then_compact_stays_replaced(self):
        service = _service()
        service.update_document("live", BASE_REF, "error replacement text")
        service.flush_index("live")
        assert "error disk full" not in _texts(service, "error")
        service.compact_index("live")
        visible = _texts(service, "error")
        assert "error replacement text" in visible
        assert "error disk full" not in visible
        service.close()

    def test_update_errors(self):
        service = _service()
        with pytest.raises(ServiceError) as excinfo:
            service.update_document("live", BASE_REF, "bad\nnewline")
        assert excinfo.value.status == 400
        service.close()


class TestRankingUnderDeletes:
    def test_bm25_equals_rebuild_over_survivors(self):
        from repro.core.config import SketchConfig
        from repro.index.builder import AirphantBuilder
        from repro.parsing.corpus import LineDelimitedCorpusParser
        from repro.search.searcher import AirphantSearcher

        store = InMemoryObjectStore()
        service = _service(store)
        service.delete_documents("live", [BASE_REF])
        live = service.search(
            SearchRequest(index="live", query="error", mode="topk_bm25", top_k=5)
        )

        survivors = [
            d
            for d in LineDelimitedCorpusParser().parse(store, ["corpus/base.txt"])
            if d.ref != BASE_REF
        ]
        AirphantBuilder(store, config=SketchConfig(num_bins=64)).build_from_documents(
            survivors, index_name="reference"
        )
        reference = AirphantSearcher.open(store, index_name="reference")
        expected = reference.search_topk("error", k=5)
        live_ranked = [
            ((d["blob"], d["offset"], d["length"]), round(d["score"], 12))
            for d in live.to_dict()["documents"]
        ]
        expected_ranked = [
            ((d.blob, d.offset, d.length), round(s, 12))
            for d, s in zip(expected.documents, expected.scores)
        ]
        assert live_ranked == expected_ranked
        reference.close()
        service.close()


class TestBackpressure:
    def test_overload_is_a_typed_429(self):
        service = _service(ingest_max_memtable_docs=1, ingest_overload_wait_s=0.0)
        service.append_documents("live", ["error fresh one"])
        with pytest.raises(ServiceError) as excinfo:
            service.append_documents("live", ["error fresh two"])
        assert excinfo.value.status == 429
        assert excinfo.value.info.error == "ingest_overloaded"
        service.close()

    def test_bounded_wait_rides_out_a_flush(self):
        service = _service(ingest_max_memtable_docs=1, ingest_overload_wait_s=5.0)
        service.append_documents("live", ["error fresh one"])
        flusher = threading.Timer(0.05, service.flush_index, args=("live",))
        flusher.start()
        # The append blocks briefly, the flush drains the memtable, and the
        # append then succeeds within the wait budget instead of failing.
        outcome = service.append_documents("live", ["error fresh two"])
        assert outcome["appended"] == 1
        flusher.join()
        service.close()

    def test_updates_respect_backpressure(self):
        service = _service(ingest_max_memtable_docs=1, ingest_overload_wait_s=0.0)
        service.append_documents("live", ["error fresh one"])
        with pytest.raises(ServiceError) as excinfo:
            service.update_document("live", BASE_REF, "error replacement")
        assert excinfo.value.status == 429
        service.close()

    def test_deletes_are_never_backpressured(self):
        # Deletes shrink the memtable; refusing them during overload would
        # wedge the system in exactly the state it needs deletes to escape.
        service = _service(ingest_max_memtable_docs=1, ingest_overload_wait_s=0.0)
        refs = service.append_documents("live", ["error fresh one"])["refs"]
        outcome = service.delete_documents("live", [Posting(**refs[0])])
        assert outcome["deleted"] == 1
        service.close()


class TestClusterTier:
    def test_routed_answers_filter_deletes(self):
        store = InMemoryObjectStore()
        store.put("corpus/base.txt", CORPUS)
        local = AirphantService(store, ServiceConfig(ingest_interval_s=0))
        local.build_index("live", ["corpus/base.txt"], num_shards=2)
        servers = []
        for _ in range(2):
            node = AirphantService(
                store, ServiceConfig(ingest_interval_s=0, probe_interval_s=0)
            )
            server = create_server(node)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            servers.append(server)
        router = AirphantService(
            store,
            ServiceConfig(
                ingest_interval_s=0,
                probe_interval_s=0,
                peers=tuple(server.url for server in servers),
            ),
        )
        try:
            local.delete_documents("live", [BASE_REF])
            result = router.search(SearchRequest(index="live", query="error"))
            texts = {d["text"] for d in result.to_dict()["documents"]}
            # Every peer answers its shard-pinned sub-request from the shared
            # store's WAL manifest, so the routed answer filters the delete
            # committed through a *different* service instance.
            assert "error disk full" not in texts
        finally:
            router.close()
            local.close()
            for server in servers:
                server.shutdown()
                server.server_close()


@pytest.fixture
def server():
    store = InMemoryObjectStore()
    store.put("corpus/base.txt", CORPUS)
    service = AirphantService(store, ServiceConfig(ingest_interval_s=0))
    service.build_index("live", ["corpus/base.txt"])
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _post(server, path, body):
    request = urllib.request.Request(
        f"{server.url}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestLifecycleHTTP:
    def test_delete_route(self, server):
        ref = {"blob": BASE_REF.blob, "offset": BASE_REF.offset, "length": BASE_REF.length}
        status, body = _post(server, "/indexes/live/docs/delete", {"refs": [ref]})
        assert status == 200
        assert body["deleted"] == 1
        status, result = _post(
            server, "/search", {"index": "live", "query": "error"}
        )
        assert "error disk full" not in {d["text"] for d in result["documents"]}

    def test_update_route(self, server):
        ref = {"blob": BASE_REF.blob, "offset": BASE_REF.offset, "length": BASE_REF.length}
        status, body = _post(
            server,
            "/indexes/live/docs/update",
            {"ref": ref, "document": "error replacement text"},
        )
        assert status == 200
        assert body["ref"]["blob"].startswith("live/ingest/seg-")
        status, result = _post(
            server, "/search", {"index": "live", "query": "replacement"}
        )
        assert {d["text"] for d in result["documents"]} == {"error replacement text"}

    def test_delete_route_rejects_bad_bodies(self, server):
        for body in (
            {},
            {"refs": []},
            {"refs": "nope"},
            {"refs": [{"blob": "b"}]},
            {"refs": [{"blob": "b", "offset": -1, "length": 3}]},
            {"refs": [{"blob": "b", "offset": 0, "length": 0}]},
            {"refs": [{"blob": "b", "offset": 0, "length": 3, "extra": 1}]},
            {"refs": [{"blob": "b", "offset": 0, "length": 3}], "extra": 1},
        ):
            status, payload = _post(server, "/indexes/live/docs/delete", body)
            assert status == 400, body
            assert payload["error"] == "bad_ingest_request"

    def test_update_route_rejects_bad_bodies(self, server):
        ref = {"blob": "b", "offset": 0, "length": 3}
        for body in (
            {},
            {"ref": ref},
            {"document": "text"},
            {"ref": "nope", "document": "text"},
            {"ref": ref, "document": 7},
            {"ref": ref, "document": "text", "extra": 1},
        ):
            status, payload = _post(server, "/indexes/live/docs/update", body)
            assert status == 400, body
            assert payload["error"] == "bad_ingest_request"

    def test_overload_maps_to_http_429(self):
        store = InMemoryObjectStore()
        store.put("corpus/base.txt", CORPUS)
        service = AirphantService(
            store,
            ServiceConfig(
                ingest_interval_s=0,
                ingest_max_memtable_docs=1,
                ingest_overload_wait_s=0.0,
            ),
        )
        service.build_index("live", ["corpus/base.txt"])
        server = create_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, _ = _post(
                server, "/indexes/live/docs", {"documents": ["error fresh one"]}
            )
            assert status == 200
            status, body = _post(
                server, "/indexes/live/docs", {"documents": ["error fresh two"]}
            )
            assert status == 429
            assert body["error"] == "ingest_overloaded"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
