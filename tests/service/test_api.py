"""Round-tripping and validation of the service request/response types."""

import json

import pytest

from repro.parsing.documents import Document, Posting
from repro.search.results import LatencyBreakdown, SearchResult
from repro.service.api import (
    DocumentHit,
    ErrorInfo,
    IndexInfo,
    LatencyInfo,
    SearchRequest,
    SearchResponse,
    ServiceError,
    ShardErrorInfo,
)


class TestSearchRequest:
    def test_json_round_trip(self):
        request = SearchRequest(
            query="error AND disk", index="logs", mode="boolean", top_k=7, include_text=False
        )
        assert SearchRequest.from_json(request.to_json()) == request

    def test_defaults(self):
        request = SearchRequest(query="error")
        assert request.mode == "keyword"
        assert request.top_k is None
        assert request.include_text

    def test_rejects_empty_query(self):
        with pytest.raises(ValueError):
            SearchRequest(query="   ")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            SearchRequest(query="x", mode="fuzzy")

    def test_rejects_non_positive_top_k(self):
        with pytest.raises(ValueError, match="top_k"):
            SearchRequest(query="x", top_k=0)

    def test_rejects_non_string_query(self):
        with pytest.raises(ValueError, match="query"):
            SearchRequest(query=5)

    def test_rejects_non_integer_top_k(self):
        with pytest.raises(ValueError, match="top_k"):
            SearchRequest(query="x", top_k="many")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            SearchRequest.from_dict({"query": "x", "fuzziness": 2})

    def test_from_dict_requires_query(self):
        with pytest.raises(ValueError, match="query"):
            SearchRequest.from_dict({"index": "logs"})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError):
            SearchRequest.from_json(json.dumps(["not", "an", "object"]))


class TestSearchResponse:
    def _result(self) -> SearchResult:
        posting = Posting(blob="corpus/a.txt", offset=0, length=9)
        latency = LatencyBreakdown()
        latency.add_lookup(4.0, 1.0, 3.0, 128)
        latency.add_retrieval(6.0, 2.0, 4.0, 256)
        return SearchResult(
            query="error",
            documents=[Document(ref=posting, text="error one")],
            candidate_postings=[posting, Posting(blob="corpus/a.txt", offset=10, length=8)],
            false_positive_count=1,
            latency=latency,
        )

    def test_from_result_copies_everything(self):
        request = SearchRequest(query="error", index="logs")
        response = SearchResponse.from_result(request, self._result())
        assert response.num_results == 1
        assert response.num_candidates == 2
        assert response.false_positive_count == 1
        assert response.documents[0].text == "error one"
        assert response.latency.total_ms == pytest.approx(10.0)
        assert response.latency.round_trips == 2

    def test_include_text_false_drops_bodies(self):
        request = SearchRequest(query="error", index="logs", include_text=False)
        response = SearchResponse.from_result(request, self._result())
        assert response.documents[0].text is None
        assert "text" not in response.documents[0].to_dict()
        assert response.documents[0].blob == "corpus/a.txt"

    def test_json_round_trip(self):
        request = SearchRequest(query="error", index="logs")
        response = SearchResponse.from_result(request, self._result())
        rebuilt = SearchResponse.from_json(response.to_json())
        assert rebuilt == response

    def test_to_dict_reports_derived_totals(self):
        request = SearchRequest(query="error", index="logs")
        payload = SearchResponse.from_result(request, self._result()).to_dict()
        assert payload["num_results"] == 1
        assert payload["latency"]["total_ms"] == pytest.approx(10.0)


class TestDocumentHit:
    def test_round_trip_with_text(self):
        hit = DocumentHit(blob="b", offset=1, length=2, text="hi")
        assert DocumentHit.from_dict(hit.to_dict()) == hit

    def test_round_trip_without_text(self):
        hit = DocumentHit(blob="b", offset=1, length=2)
        assert DocumentHit.from_dict(hit.to_dict()) == hit


class TestLatencyInfo:
    def test_round_trip_ignores_derived_total(self):
        info = LatencyInfo(lookup_ms=3.0, retrieval_ms=4.0, bytes_fetched=10, round_trips=2)
        assert LatencyInfo.from_dict(info.to_dict()) == info


class TestIndexInfo:
    def test_json_round_trip(self):
        info = IndexInfo(
            name="logs",
            num_documents=100,
            num_terms=42,
            num_layers=3,
            num_common_words=5,
            expected_false_positives=0.7,
            delta_indexes=("logs/delta-0000",),
            storage_bytes=2048,
            is_open=True,
        )
        assert IndexInfo.from_json(info.to_json()) == info


class TestErrorInfo:
    def test_json_round_trip(self):
        info = ErrorInfo(status=404, error="index_not_found", message="no index named 'x'")
        assert ErrorInfo.from_json(info.to_json()) == info

    def test_service_error_carries_info(self):
        error = ServiceError(400, "bad_query", "unbalanced parenthesis")
        assert error.status == 400
        assert error.info.error == "bad_query"
        assert "parenthesis" in str(error)


class TestSearchRequestShards:
    def test_shards_default_to_none_and_are_omitted(self):
        request = SearchRequest(query="error")
        assert request.shards is None
        assert "shards" not in request.to_dict()

    def test_shards_are_sorted_and_deduplicated(self):
        request = SearchRequest(query="error", shards=[3, 1, 3, 0])
        assert request.shards == (0, 1, 3)
        assert request.to_dict()["shards"] == [0, 1, 3]

    def test_shards_round_trip(self):
        request = SearchRequest(query="error", shards=(2, 5))
        assert SearchRequest.from_json(request.to_json()) == request

    @pytest.mark.parametrize("shards", [[], "0", 3, [0, -1], [True], [1.5]])
    def test_invalid_shards_rejected(self, shards):
        with pytest.raises(ValueError):
            SearchRequest(query="error", shards=shards)


class TestRankedRequest:
    def test_mode_round_trips_with_weights(self):
        request = SearchRequest(
            query="error disk",
            index="logs",
            mode="topk_bm25",
            top_k=5,
            weights={"disk": 2.5},
        )
        assert SearchRequest.from_json(request.to_json()) == request
        assert request.weight_map == {"disk": 2.5}

    def test_weights_are_canonicalized(self):
        request = SearchRequest(
            query="a b", mode="topk_bm25", weights={"b": 2, "a": 1.0}
        )
        assert request.weights == (("a", 1.0), ("b", 2.0))

    def test_weights_accept_pair_lists(self):
        request = SearchRequest(
            query="a b", mode="topk_bm25", weights=[["b", 2.0], ["a", 1.5]]
        )
        assert request.weight_map == {"a": 1.5, "b": 2.0}

    def test_weights_require_ranked_mode(self):
        with pytest.raises(ValueError, match="weights"):
            SearchRequest(query="x", weights={"x": 2.0})

    @pytest.mark.parametrize(
        "weights",
        ["disk=2", {"": 2.0}, {"disk": 0}, {"disk": -1.0}, {"disk": "heavy"}, {3: 1.0}],
    )
    def test_invalid_weights_rejected(self, weights):
        with pytest.raises(ValueError):
            SearchRequest(query="x", mode="topk_bm25", weights=weights)

    def test_weights_omitted_from_dict_when_unset(self):
        request = SearchRequest(query="x", mode="topk_bm25")
        assert "weights" not in request.to_dict()
        assert request.weight_map is None


class TestRankedResponse:
    def test_scores_ride_on_document_hits(self):
        posting = Posting(blob="corpus/a.txt", offset=0, length=9)
        result = SearchResult(
            query="error",
            documents=[Document(ref=posting, text="error one")],
            scores=[0.75],
        )
        request = SearchRequest(query="error", index="logs", mode="topk_bm25", top_k=1)
        response = SearchResponse.from_result(request, result)
        assert response.documents[0].score == 0.75
        payload = response.to_dict()
        assert payload["documents"][0]["score"] == 0.75
        assert SearchResponse.from_json(response.to_json()) == response

    def test_unranked_hits_omit_score(self):
        hit = DocumentHit(blob="b", offset=1, length=2, text="hi")
        assert "score" not in hit.to_dict()
        scored = DocumentHit(blob="b", offset=1, length=2, text="hi", score=0.5)
        assert DocumentHit.from_dict(scored.to_dict()) == scored


class TestShardErrorInfo:
    def test_round_trip(self):
        error = ShardErrorInfo(
            shard=3, node="http://n1:8080", error="node_timeout", message="5s elapsed"
        )
        assert ShardErrorInfo.from_dict(error.to_dict()) == error

    def test_partial_response_round_trip(self):
        response = SearchResponse(
            query="error",
            index="logs",
            mode="keyword",
            partial=True,
            shard_errors=(
                ShardErrorInfo(shard=1, node="http://n2", error="node_unreachable", message="refused"),
            ),
        )
        payload = response.to_dict()
        assert payload["partial"] is True
        assert payload["shard_errors"][0]["shard"] == 1
        assert SearchResponse.from_json(response.to_json()) == response

    def test_complete_response_omits_partial_fields(self):
        response = SearchResponse(query="error", index="logs", mode="keyword")
        payload = response.to_dict()
        assert "partial" not in payload
        assert "shard_errors" not in payload
        rebuilt = SearchResponse.from_dict(payload)
        assert rebuilt.partial is False
        assert rebuilt.shard_errors == ()
