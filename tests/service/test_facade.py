"""Tests for the AirphantService facade: dispatch, errors, building."""

import pytest

from repro.core.config import SketchConfig
from repro.service import (
    AirphantService,
    SearchRequest,
    ServiceConfig,
    ServiceError,
)


@pytest.fixture
def service(sim_store, built_small_index) -> AirphantService:
    return AirphantService(sim_store, ServiceConfig(query_cache_size=8))


class TestSearchDispatch:
    def test_keyword_mode(self, service, small_documents):
        response = service.search(SearchRequest(query="error", index="small-index"))
        expected = {d.text for d in small_documents if "error" in d.text.split()}
        assert {hit.text for hit in response.documents} == expected

    def test_keyword_multi_word_is_conjunctive(self, service):
        response = service.search(SearchRequest(query="error timeout", index="small-index"))
        assert all("error" in hit.text and "timeout" in hit.text for hit in response.documents)
        assert response.num_results == 2

    def test_boolean_mode(self, service):
        response = service.search(
            SearchRequest(query="error AND (disk OR timeout)", index="small-index", mode="boolean")
        )
        assert response.num_results == 4

    def test_regex_mode(self, service):
        response = service.search(
            SearchRequest(query=r"error timeout \w+", index="small-index", mode="regex")
        )
        assert response.num_results == 2
        assert all("error timeout" in hit.text for hit in response.documents)

    def test_top_k_caps_results(self, service):
        response = service.search(SearchRequest(query="error", index="small-index", top_k=2))
        assert response.num_results == 2

    def test_default_top_k_from_config(self, sim_store, built_small_index):
        service = AirphantService(sim_store, ServiceConfig(default_top_k=1))
        response = service.search(SearchRequest(query="error", index="small-index"))
        assert response.num_results == 1

    def test_latency_breakdown_reported(self, service):
        response = service.search(SearchRequest(query="error", index="small-index"))
        assert response.latency.total_ms > 0
        assert response.latency.round_trips >= 2  # one lookup wave + one retrieval wave

    def test_query_cache_is_shared_across_requests(self, service):
        service.search(SearchRequest(query="error", index="small-index"))
        inner = service.catalog.open("small-index").searchers[0]
        assert inner.cache_misses == 1
        service.search(SearchRequest(query="error", index="small-index"))
        assert inner.cache_hits == 1


class TestErrors:
    def test_unknown_index_is_404(self, service):
        with pytest.raises(ServiceError) as exc_info:
            service.search(SearchRequest(query="error", index="missing-index"))
        assert exc_info.value.status == 404
        assert exc_info.value.info.error == "index_not_found"

    def test_malformed_boolean_query_is_400(self, service):
        with pytest.raises(ServiceError) as exc_info:
            service.search(
                SearchRequest(query="error AND (disk", index="small-index", mode="boolean")
            )
        assert exc_info.value.status == 400
        assert exc_info.value.info.error == "bad_query"

    def test_unfilterable_regex_is_400(self, service):
        with pytest.raises(ServiceError) as exc_info:
            service.search(SearchRequest(query=r"a|b", index="small-index", mode="regex"))
        assert exc_info.value.status == 400

    def test_index_info_unknown_is_404(self, service):
        with pytest.raises(ServiceError) as exc_info:
            service.index_info("missing-index")
        assert exc_info.value.status == 404


class TestBuildIndex:
    def test_build_then_search(self, service, sim_store):
        sim_store.put("corpus/new.txt", b"alpha beta\ngamma alpha\nbeta gamma")
        info = service.build_index(
            "new-index", ["corpus/new.txt"], sketch_config=SketchConfig(num_bins=32)
        )
        assert info.num_documents == 3
        response = service.search(SearchRequest(query="alpha", index="new-index"))
        assert response.num_results == 2

    def test_rebuild_invalidates_cached_searcher(self, service, sim_store):
        sim_store.put("corpus/new.txt", b"alpha beta")
        service.build_index("new-index", ["corpus/new.txt"], SketchConfig(num_bins=32))
        service.search(SearchRequest(query="alpha", index="new-index"))
        sim_store.put("corpus/new2.txt", b"alpha beta\nalpha gamma")
        service.build_index("new-index", ["corpus/new2.txt"], SketchConfig(num_bins=32))
        response = service.search(SearchRequest(query="alpha", index="new-index"))
        assert response.num_results == 2

    def test_build_missing_blob_is_404(self, service):
        with pytest.raises(ServiceError) as exc_info:
            service.build_index("x", ["corpus/missing.txt"])
        assert exc_info.value.status == 404
        assert exc_info.value.info.error == "blob_not_found"

    def test_build_without_blobs_is_400(self, service):
        with pytest.raises(ServiceError) as exc_info:
            service.build_index("x", [])
        assert exc_info.value.status == 400

    def test_build_bad_name_is_400(self, service, sim_store):
        sim_store.put("corpus/new.txt", b"alpha")
        with pytest.raises(ServiceError) as exc_info:
            service.build_index("base/delta-0001", ["corpus/new.txt"])
        assert exc_info.value.status == 400


class TestHealthAndListing:
    def test_health_payload(self, service):
        payload = service.health()
        assert payload["status"] == "ok"
        assert payload["indexes"] == 1
        assert payload["open_indexes"] == 0
        assert payload["config"]["query_cache_size"] == 8

    def test_list_indexes(self, service):
        infos = service.list_indexes()
        assert [info.name for info in infos] == ["small-index"]

    def test_lookup_postings_passthrough(self, service, small_documents):
        postings, latency = service.lookup_postings("small-index", "error")
        expected = sum(1 for d in small_documents if "error" in d.text.split())
        # The sketch may admit false positives but never misses a posting.
        assert len(postings) >= expected
        assert latency.round_trips >= 1
