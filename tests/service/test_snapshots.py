"""Point-in-time snapshot/restore tests: facade, purge pinning, HTTP, CLI.

A snapshot is one JSON record blob pinning a generation of the append-only
manifest (plus the tombstones pending at creation).  The contracts under
test: creating is cheap and atomic; a pinned generation survives later
compactions (purge pinning); restoring swaps the manifest back atomically
and resurrects the pinned view byte-identically; deleting the snapshot
unpins, so the next compaction reclaims the space.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.index.updates import AppendOnlyIndexManager, SnapshotRestoreError
from repro.parsing.documents import Posting
from repro.service.api import SearchRequest, ServiceError
from repro.service.config import ServiceConfig
from repro.service.facade import AirphantService
from repro.service.http import create_server
from repro.storage.local import LocalObjectStore
from repro.storage.memory import InMemoryObjectStore

CORPUS = b"error disk full\ninfo service ok\nwarn slow response\n"

BASE_REF = Posting(blob="corpus/base.txt", offset=0, length=15)


def _service(store=None) -> AirphantService:
    store = store if store is not None else InMemoryObjectStore()
    if not store.exists("corpus/base.txt"):
        store.put("corpus/base.txt", CORPUS)
    service = AirphantService(store, ServiceConfig(ingest_interval_s=0))
    if not service.catalog.contains("live"):
        service.build_index("live", ["corpus/base.txt"])
    return service


def _texts(service: AirphantService, query: str, index: str = "live") -> set[str]:
    result = service.search(SearchRequest(index=index, query=query))
    return {d["text"] for d in result.to_dict()["documents"]}


class TestSnapshotFacade:
    def test_create_list_delete_round_trip(self):
        service = _service()
        created = service.create_snapshot("live", "nightly")
        assert created["snapshot"] == "nightly"
        listed = service.list_snapshots("live")
        assert [entry["snapshot"] for entry in listed] == ["nightly"]
        service.delete_snapshot("live", "nightly")
        assert service.list_snapshots("live") == []
        service.close()

    def test_create_captures_pending_tombstones(self):
        service = _service()
        service.delete_documents("live", [BASE_REF])
        created = service.create_snapshot("live", "with-deletes")
        assert created["tombstones"] == 1
        service.close()

    def test_restore_resurrects_the_snapshotted_view(self):
        service = _service()
        service.create_snapshot("live", "before-writes")
        service.append_documents("live", ["error fresh event"])
        service.delete_documents("live", [BASE_REF])
        service.flush_index("live")
        assert "error disk full" not in _texts(service, "error")
        restored = service.restore_snapshot("live", "before-writes")
        assert restored["restored"] is True
        visible = _texts(service, "error")
        assert "error disk full" in visible
        assert "error fresh event" not in visible
        service.close()

    def test_restore_resurrects_tombstones_too(self):
        service = _service()
        service.delete_documents("live", [BASE_REF])
        service.create_snapshot("live", "deleted")
        # Wipe the live state entirely, then restore: the delete must still
        # be in force (it was part of the snapshotted view).
        service.restore_snapshot("live", "deleted")
        assert "error disk full" not in _texts(service, "error")
        service.close()

    def test_bad_snapshot_names_rejected(self):
        service = _service()
        for name in ("", "has space", "a/b", ".hidden", "x" * 65):
            with pytest.raises(ServiceError) as excinfo:
                service.create_snapshot("live", name)
            assert excinfo.value.status == 400
        service.close()

    def test_missing_snapshot_is_404(self):
        service = _service()
        with pytest.raises(ServiceError) as excinfo:
            service.restore_snapshot("live", "ghost")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            service.delete_snapshot("live", "ghost")
        assert excinfo.value.status == 404
        service.close()

    def test_snapshots_do_not_pollute_the_catalog(self):
        service = _service()
        service.create_snapshot("live", "nightly")
        assert service.catalog.names() == ["live"]
        assert not service.catalog.contains("live/snapshots/nightly")
        service.close()

    def test_rebuild_deletes_snapshots(self):
        service = _service()
        service.create_snapshot("live", "nightly")
        service.build_index("live", ["corpus/base.txt"])
        assert service.list_snapshots("live") == []
        service.close()


class TestPurgePinning:
    def test_snapshot_survives_compactions_until_deleted(self):
        store = InMemoryObjectStore()
        service = _service(store)
        service.append_documents("live", ["error fresh one"])
        service.flush_index("live")
        service.create_snapshot("live", "pinned")
        pinned_names = set(
            AppendOnlyIndexManager(store, base_index="live")
            .get_snapshot("pinned")
            .manifest.all_indexes
        )

        # Two generations of writes and compactions later, every index
        # prefix the snapshot references must still hold its blobs.
        for round_number in range(2):
            service.append_documents("live", [f"warn churn {round_number}"])
            service.flush_index("live")
            service.compact_index("live")
        for name in pinned_names:
            assert store.list_blobs(prefix=f"{name}/"), f"pinned {name} was purged"
        restored = service.restore_snapshot("live", "pinned")
        assert restored["restored"] is True
        visible = _texts(service, "error")
        assert visible == {"error disk full", "error fresh one"}

        # Deleting the snapshot unpins: after rolling forward and compacting
        # twice (retired prefixes get one generation of reader grace), the
        # abandoned generation's blobs are gone.
        service.delete_snapshot("live", "pinned")
        for round_number in range(2):
            service.append_documents("live", [f"info churn {round_number}"])
            service.flush_index("live")
            service.compact_index("live")
        remaining = {
            name
            for name in pinned_names
            if any(store.list_blobs(prefix=f"{name}/"))
        }
        # The original in-place base may legitimately survive (it is the
        # index's own prefix); generational prefixes must be reclaimed.
        assert not {name for name in remaining if "/gen-" in name or "/delta-" in name}
        service.close()

    def test_restore_after_purge_is_a_conflict(self):
        store = InMemoryObjectStore()
        service = _service(store)
        service.append_documents("live", ["error fresh one"])
        service.flush_index("live")
        service.create_snapshot("live", "doomed")
        # Destroy one of the snapshot's pinned prefixes behind its back.
        manager = AppendOnlyIndexManager(store, base_index="live")
        target = manager.get_snapshot("doomed").manifest.delta_indexes[0]
        for blob in store.list_blobs(prefix=f"{target}/"):
            store.delete(blob)
        with pytest.raises(ServiceError) as excinfo:
            service.restore_snapshot("live", "doomed")
        assert excinfo.value.status == 409
        assert excinfo.value.info.error == "snapshot_unrestorable"
        service.close()

    def test_manager_restore_error_names_the_missing_builds(self):
        store = InMemoryObjectStore()
        service = _service(store)
        service.append_documents("live", ["error fresh one"])
        service.flush_index("live")
        manager = AppendOnlyIndexManager(store, base_index="live")
        manager.create_snapshot("doomed")
        target = manager.manifest().delta_indexes[0]
        for blob in store.list_blobs(prefix=f"{target}/"):
            store.delete(blob)
        with pytest.raises(SnapshotRestoreError) as excinfo:
            manager.restore_snapshot("doomed")
        assert target in excinfo.value.missing
        service.close()


@pytest.fixture
def server(tmp_path):
    store = LocalObjectStore(str(tmp_path / "bucket"))
    store.put("corpus/base.txt", CORPUS)
    service = AirphantService(store, ServiceConfig(ingest_interval_s=0))
    service.build_index("live", ["corpus/base.txt"])
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _request(server, method, path, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        f"{server.url}{path}",
        data=data,
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestSnapshotHTTP:
    def test_full_lifecycle_over_http(self, server):
        status, created = _request(
            server, "POST", "/indexes/live/snapshots", {"snapshot": "nightly"}
        )
        assert status == 200 and created["snapshot"] == "nightly"

        status, listed = _request(server, "GET", "/indexes/live/snapshots")
        assert status == 200
        assert [e["snapshot"] for e in listed["snapshots"]] == ["nightly"]

        _request(
            server,
            "POST",
            "/indexes/live/docs",
            {"documents": ["error fresh event"]},
        )
        status, restored = _request(
            server, "POST", "/indexes/live/snapshots/nightly/restore", None
        )
        assert status == 200 and restored["restored"] is True

        status, _ = _request(
            server, "POST", "/indexes/live/snapshots/nightly/delete", None
        )
        assert status == 200
        status, listed = _request(server, "GET", "/indexes/live/snapshots")
        assert listed["snapshots"] == []

    def test_http_errors(self, server):
        status, body = _request(
            server, "POST", "/indexes/live/snapshots", {"snapshot": "bad name"}
        )
        assert status == 400 and body["error"] == "bad_snapshot_name"
        status, body = _request(
            server, "POST", "/indexes/live/snapshots/ghost/restore", None
        )
        assert status == 404 and body["error"] == "snapshot_not_found"
        status, body = _request(server, "POST", "/indexes/live/snapshots", {})
        assert status == 400


class TestSnapshotCLI:
    def test_create_list_restore_delete(self, tmp_path, capsys):
        bucket = str(tmp_path / "bucket")
        store = LocalObjectStore(bucket)
        store.put("corpus/base.txt", CORPUS)
        store.close()
        assert main([
            "build", "--bucket", bucket, "--blobs", "corpus/base.txt",
            "--index", "live", "--bins", "64",
        ]) == 0
        assert main([
            "snapshot", "create", "--bucket", bucket,
            "--index", "live", "--snapshot", "nightly",
        ]) == 0
        assert "nightly" in capsys.readouterr().out
        assert main(["snapshot", "list", "--bucket", bucket, "--index", "live"]) == 0
        assert "nightly" in capsys.readouterr().out
        assert main([
            "snapshot", "restore", "--bucket", bucket,
            "--index", "live", "--snapshot", "nightly",
        ]) == 0
        capsys.readouterr()
        assert main([
            "snapshot", "delete", "--bucket", bucket,
            "--index", "live", "--snapshot", "nightly",
        ]) == 0
        capsys.readouterr()

    def test_missing_snapshot_flag_is_a_usage_error(self, tmp_path, capsys):
        bucket = str(tmp_path / "bucket")
        assert main(["snapshot", "create", "--bucket", bucket, "--index", "live"]) == 2
        assert "--snapshot is required" in capsys.readouterr().err

    def test_service_errors_exit_nonzero(self, tmp_path, capsys):
        bucket = str(tmp_path / "bucket")
        store = LocalObjectStore(bucket)
        store.put("corpus/base.txt", CORPUS)
        store.close()
        assert main([
            "build", "--bucket", bucket, "--blobs", "corpus/base.txt",
            "--index", "live", "--bins", "64",
        ]) == 0
        capsys.readouterr()
        assert main([
            "snapshot", "restore", "--bucket", bucket,
            "--index", "live", "--snapshot", "ghost",
        ]) == 2
