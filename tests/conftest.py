"""Shared fixtures for the Airphant reproduction test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the reusable integration harness (tests/harness/) importable as
# ``harness`` from every test module, wherever pytest was invoked from.
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness.corpora import SMALL_CORPUS_TEXT  # noqa: F401  (re-export)
from harness.s3_emulator import S3Emulator

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder, BuiltIndex
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.parsing.documents import Document
from repro.storage.latency import AffineLatencyModel
from repro.storage.memory import InMemoryObjectStore
from repro.storage.simulated import SimulatedCloudStore


@pytest.fixture
def memory_store() -> InMemoryObjectStore:
    """A plain in-memory object store."""
    return InMemoryObjectStore()


@pytest.fixture
def s3_emulator():
    """A running in-process S3 endpoint on an ephemeral port (see harness/)."""
    with S3Emulator() as emulator:
        yield emulator


@pytest.fixture
def sim_store() -> SimulatedCloudStore:
    """A simulated cloud store with deterministic, jitter-free latencies."""
    model = AffineLatencyModel(jitter_sigma=0.0, seed=0)
    return SimulatedCloudStore(latency_model=model)


@pytest.fixture
def small_corpus_blob(sim_store: SimulatedCloudStore) -> str:
    """The small corpus written as a line-delimited blob; returns its name."""
    blob_name = "corpus/small.txt"
    sim_store.put(blob_name, SMALL_CORPUS_TEXT.encode("utf-8"))
    return blob_name


@pytest.fixture
def small_documents(sim_store: SimulatedCloudStore, small_corpus_blob: str) -> list[Document]:
    """Parsed documents of the small corpus."""
    parser = LineDelimitedCorpusParser()
    return list(parser.parse(sim_store, [small_corpus_blob]))


@pytest.fixture
def small_config() -> SketchConfig:
    """A small sketch configuration suitable for the tiny test corpus."""
    return SketchConfig(num_bins=64, target_false_positives=1.0, seed=7)


@pytest.fixture
def built_small_index(
    sim_store: SimulatedCloudStore,
    small_documents: list[Document],
    small_config: SketchConfig,
) -> BuiltIndex:
    """The small corpus indexed and persisted on the simulated store."""
    builder = AirphantBuilder(sim_store, config=small_config)
    return builder.build_from_documents(small_documents, index_name="small-index")
