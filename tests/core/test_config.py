"""Unit tests for the sketch configuration."""

import pytest

from repro.core.config import BYTES_PER_BIN_POINTER, SketchConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = SketchConfig()
        assert config.num_bins == 100_000
        assert config.target_false_positives == 1.0
        assert config.common_word_fraction == pytest.approx(0.01)
        assert config.top_k_delta == pytest.approx(1e-6)
        assert config.max_concurrency == 32
        assert config.num_layers is None

    def test_common_word_bins_are_one_percent(self):
        config = SketchConfig(num_bins=100_000)
        assert config.common_word_bins == 1000
        assert config.sketch_bins == 99_000

    def test_estimated_memory_is_a_few_megabytes_at_paper_scale(self):
        config = SketchConfig(num_bins=100_000)
        assert 1_000_000 <= config.estimated_memory_bytes <= 4_000_000


class TestValidation:
    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            SketchConfig(num_bins=0)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            SketchConfig(target_false_positives=-1)

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            SketchConfig(num_layers=0)

    def test_invalid_common_fraction(self):
        with pytest.raises(ValueError):
            SketchConfig(common_word_fraction=1.0)
        with pytest.raises(ValueError):
            SketchConfig(common_word_fraction=-0.1)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            SketchConfig(top_k_delta=0.0)
        with pytest.raises(ValueError):
            SketchConfig(top_k_delta=1.0)

    def test_invalid_concurrency_and_max_layers(self):
        with pytest.raises(ValueError):
            SketchConfig(max_concurrency=0)
        with pytest.raises(ValueError):
            SketchConfig(max_layers=0)


class TestDerivedConstructors:
    def test_from_memory_budget(self):
        config = SketchConfig.from_memory_budget(2 * 1024 * 1024)
        assert config.num_bins == (2 * 1024 * 1024) // BYTES_PER_BIN_POINTER

    def test_from_memory_budget_passes_overrides(self):
        config = SketchConfig.from_memory_budget(1_000_000, target_false_positives=0.01)
        assert config.target_false_positives == 0.01

    def test_from_memory_budget_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SketchConfig.from_memory_budget(0)

    def test_with_layers_returns_copy(self):
        base = SketchConfig(num_bins=500, seed=3)
        pinned = base.with_layers(4)
        assert pinned.num_layers == 4
        assert pinned.num_bins == 500
        assert pinned.seed == 3
        assert base.num_layers is None

    def test_sketch_bins_never_zero(self):
        config = SketchConfig(num_bins=1, common_word_fraction=0.0)
        assert config.sketch_bins >= 1
