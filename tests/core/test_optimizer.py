"""Unit tests for Algorithm 1 (layer minimization)."""

import pytest

from repro.core.analysis import expected_false_positives
from repro.core.optimizer import InfeasibleConfigurationError, minimize_layers
from repro.parsing.documents import Document, DocumentRef
from repro.profiling.profiler import profile_documents


def _log_like_sizes(num_documents: int, words_per_document: int) -> list[int]:
    return [words_per_document] * num_documents


class TestMinimizeLayers:
    def test_result_satisfies_the_constraint(self):
        sizes = _log_like_sizes(2000, 8)
        result = minimize_layers(512, 1.0, sizes)
        assert result.expected_false_positives <= 1.0
        assert result.num_layers >= 1

    def test_result_is_minimal(self):
        sizes = _log_like_sizes(2000, 8)
        result = minimize_layers(512, 1.0, sizes)
        if result.num_layers > 1:
            below = expected_false_positives(result.num_layers - 1, 512, sizes)
            assert below > 1.0

    def test_tighter_target_needs_at_least_as_many_layers(self):
        sizes = _log_like_sizes(5000, 10)
        loose = minimize_layers(2048, 1.0, sizes)
        tight = minimize_layers(2048, 0.001, sizes)
        assert tight.num_layers >= loose.num_layers

    def test_single_layer_enough_for_generous_target(self):
        sizes = _log_like_sizes(100, 2)
        result = minimize_layers(10_000, 100.0, sizes)
        assert result.num_layers == 1

    def test_paper_like_configuration_picks_few_layers(self):
        # The paper reports L* of at most 3 for F0 = 1 with B = 1e5 on its
        # corpora; a scaled-down equivalent should behave the same way.
        sizes = _log_like_sizes(20_000, 10)
        result = minimize_layers(5_000, 1.0, sizes)
        assert 1 <= result.num_layers <= 4

    def test_infeasible_when_bins_are_too_few(self):
        sizes = _log_like_sizes(10_000, 50)
        with pytest.raises(InfeasibleConfigurationError):
            minimize_layers(10, 0.0001, sizes, max_layers=8)

    def test_infeasible_error_carries_context(self):
        sizes = _log_like_sizes(10_000, 50)
        with pytest.raises(InfeasibleConfigurationError) as excinfo:
            minimize_layers(10, 0.0001, sizes, max_layers=8)
        assert excinfo.value.num_bins == 10
        assert excinfo.value.target == 0.0001

    def test_profile_input_supported(self):
        documents = [
            Document(DocumentRef("b", index, 1), f"w{index} shared common")
            for index in range(500)
        ]
        profile = profile_documents(documents)
        result = minimize_layers(256, 1.0, profile)
        assert result.expected_false_positives <= 1.0

    def test_max_layers_cap_respected(self):
        sizes = _log_like_sizes(100_000, 30)
        result = minimize_layers(4096, 1.0, sizes, max_layers=16)
        assert result.num_layers <= 16

    def test_uses_fast_region_for_practical_targets(self):
        sizes = _log_like_sizes(2000, 8)
        result = minimize_layers(1024, 1.0, sizes)
        assert result.used_fast_region

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            minimize_layers(0, 1.0, [5])
        with pytest.raises(ValueError):
            minimize_layers(10, -1.0, [5])
        with pytest.raises(ValueError):
            minimize_layers(10, 1.0, [5], max_layers=0)

    def test_lower_bound_reported(self):
        sizes = _log_like_sizes(1000, 5)
        result = minimize_layers(1000, 1.0, sizes)
        assert 0.0 <= result.lower_bound <= 1.0
