"""Unit tests for the in-memory IoU Sketch."""

import pytest

from repro.core.common_words import CommonWordTable
from repro.core.sketch import IoUSketch
from repro.parsing.documents import Posting


def _posting(index: int) -> Posting:
    return Posting(blob="corpus", offset=index * 100, length=50)


def _paper_example_sketch(num_layers: int = 3, total_bins: int = 9, seed: int = 0) -> IoUSketch:
    """The four-word example of the paper's Figure 4 (structure, not exact bins)."""
    sketch = IoUSketch.build(num_layers=num_layers, total_bins=total_bins, seed=seed)
    sketch.insert("w1", [_posting(1)])
    sketch.insert("w2", [_posting(2), _posting(3)])
    sketch.insert("w3", [_posting(2), _posting(3), _posting(4)])
    sketch.insert("w4", [_posting(2), _posting(3), _posting(4), _posting(5)])
    return sketch


class TestConstruction:
    def test_build_splits_bins_across_layers(self):
        sketch = IoUSketch.build(num_layers=4, total_bins=100)
        assert sketch.num_layers == 4
        assert sketch.bins_per_layer == 25
        assert sketch.total_bins == 100

    def test_build_requires_at_least_one_bin_per_layer(self):
        with pytest.raises(ValueError):
            IoUSketch.build(num_layers=10, total_bins=5)

    def test_build_rejects_non_positive_layers(self):
        with pytest.raises(ValueError):
            IoUSketch.build(num_layers=0, total_bins=10)

    def test_bin_of_returns_one_bin_per_layer(self):
        sketch = IoUSketch.build(num_layers=3, total_bins=30)
        assert len(sketch.bin_of("hello")) == 3


class TestNoFalseNegatives:
    def test_query_always_contains_true_postings(self):
        sketch = _paper_example_sketch()
        assert {_posting(2), _posting(3)} <= sketch.query("w2").postings
        assert {_posting(1)} <= sketch.query("w1").postings
        assert {_posting(2), _posting(3), _posting(4), _posting(5)} <= sketch.query("w4").postings

    def test_no_false_negatives_across_many_words(self):
        sketch = IoUSketch.build(num_layers=3, total_bins=30, seed=2)
        truth = {}
        for index in range(200):
            word = f"word{index}"
            postings = {_posting(index), _posting(index + 1000)}
            truth[word] = postings
            sketch.insert(word, postings)
        for word, postings in truth.items():
            assert postings <= sketch.query(word).postings

    def test_unknown_word_query_returns_a_superset_possibly_empty(self):
        sketch = _paper_example_sketch()
        result = sketch.query("never-inserted")
        # No guarantee other than that it is a set of postings (false positives allowed).
        assert isinstance(result.postings, set)


class TestFalsePositiveBehaviour:
    def test_more_layers_reduce_false_positives(self):
        # Insert many single-document words so bins are heavily shared.
        def build(num_layers: int) -> int:
            sketch = IoUSketch.build(num_layers=num_layers, total_bins=60, seed=5)
            truth = {}
            for index in range(300):
                word = f"word{index}"
                postings = {_posting(index)}
                truth[word] = postings
                sketch.insert(word, postings)
            return sum(
                sketch.false_positives(word, truth[word]) for word in truth
            )

        single_layer = build(1)
        multi_layer = build(4)
        assert multi_layer < single_layer

    def test_false_positive_count_is_zero_for_exact_match(self):
        sketch = _paper_example_sketch()
        word_truth = {_posting(2), _posting(3)}
        count = sketch.false_positives("w2", word_truth)
        returned = sketch.query("w2").postings
        assert count == len(returned - word_truth)


class TestCommonWords:
    def test_registered_common_word_is_answered_exactly(self):
        common = CommonWordTable()
        common.register("the")
        sketch = IoUSketch.build(num_layers=2, total_bins=4, seed=0, common_words=common)
        sketch.insert("the", [_posting(1), _posting(2)])
        sketch.insert("rare", [_posting(3)])
        assert sketch.query("the").postings == {_posting(1), _posting(2)}

    def test_common_word_does_not_pollute_hashed_bins(self):
        common = CommonWordTable()
        common.register("the")
        sketch = IoUSketch.build(num_layers=1, total_bins=1, seed=0, common_words=common)
        sketch.insert("the", [_posting(index) for index in range(50)])
        sketch.insert("rare", [_posting(999)])
        # The single hashed bin should only contain the rare word's posting.
        assert sketch.query("rare").postings == {_posting(999)}

    def test_query_of_unregistered_common_word_goes_through_layers(self):
        sketch = IoUSketch.build(num_layers=2, total_bins=8, seed=0)
        sketch.insert("word", [_posting(1)])
        assert _posting(1) in sketch.query("word").postings


class TestDiagnostics:
    def test_bin_sizes_shape(self):
        sketch = IoUSketch.build(num_layers=3, total_bins=12)
        sizes = sketch.bin_sizes()
        assert len(sizes) == 3
        assert all(len(layer) == 4 for layer in sizes)

    def test_insert_postings_map(self):
        sketch = IoUSketch.build(num_layers=2, total_bins=8)
        sketch.insert_postings_map({"a": [_posting(1)], "b": [_posting(2)]})
        assert _posting(1) in sketch.query("a").postings
        assert _posting(2) in sketch.query("b").postings

    def test_layer_superposts_length_matches_layers(self):
        sketch = _paper_example_sketch()
        assert len(sketch.layer_superposts("w2")) == 3
