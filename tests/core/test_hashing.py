"""Unit tests for the seeded hash family used by IoU Sketch layers."""

import pytest

from repro.core.hashing import HashFamily, LayeredHasher, stable_word_digest


class TestStableDigest:
    def test_digest_is_deterministic(self):
        assert stable_word_digest("error") == stable_word_digest("error")

    def test_different_words_differ(self):
        assert stable_word_digest("error") != stable_word_digest("warn")

    def test_digest_fits_below_mersenne_prime(self):
        assert 0 <= stable_word_digest("anything") < (1 << 61) - 1


class TestHashFamily:
    def test_bins_are_in_range(self):
        family = HashFamily.from_seed(3, num_bins=17)
        for word in ["alpha", "beta", "gamma", "delta", "epsilon"]:
            assert 0 <= family.bin_of(word) < 17

    def test_same_seed_same_mapping(self):
        first = HashFamily.from_seed(42, num_bins=100)
        second = HashFamily.from_seed(42, num_bins=100)
        assert [first.bin_of(f"w{i}") for i in range(50)] == [
            second.bin_of(f"w{i}") for i in range(50)
        ]

    def test_different_seeds_give_different_mappings(self):
        first = HashFamily.from_seed(1, num_bins=1000)
        second = HashFamily.from_seed(2, num_bins=1000)
        mappings_differ = any(
            first.bin_of(f"w{i}") != second.bin_of(f"w{i}") for i in range(50)
        )
        assert mappings_differ

    def test_distribution_is_roughly_uniform(self):
        family = HashFamily.from_seed(7, num_bins=10)
        counts = [0] * 10
        for index in range(5000):
            counts[family.bin_of(f"word{index}")] += 1
        # Each bin expects 500 hits; allow generous slack.
        assert min(counts) > 300
        assert max(counts) < 700

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HashFamily(multiplier=0, addend=0, num_bins=10)
        with pytest.raises(ValueError):
            HashFamily(multiplier=1, addend=0, num_bins=0)
        with pytest.raises(ValueError):
            HashFamily(multiplier=1, addend=-1, num_bins=10)


class TestLayeredHasher:
    def test_build_creates_requested_layers(self):
        hasher = LayeredHasher.build(num_layers=3, bins_per_layer=16, seed=5)
        assert hasher.num_layers == 3
        assert hasher.bins_per_layer == 16

    def test_bins_of_returns_one_bin_per_layer(self):
        hasher = LayeredHasher.build(num_layers=4, bins_per_layer=8, seed=0)
        bins = hasher.bins_of("keyword")
        assert len(bins) == 4
        assert all(0 <= value < 8 for value in bins)

    def test_layers_use_different_hash_functions(self):
        hasher = LayeredHasher.build(num_layers=6, bins_per_layer=1000, seed=1)
        bins_per_word = [hasher.bins_of(f"word{i}") for i in range(30)]
        # With 1000 bins per layer, identical mappings across layers would be
        # an astronomically unlikely coincidence.
        identical_layers = all(
            len(set(layer_bins)) == 1 for layer_bins in zip(*bins_per_word)
        )
        assert not identical_layers

    def test_reconstruction_from_seed_matches(self):
        original = LayeredHasher.build(num_layers=3, bins_per_layer=64, seed=99)
        rebuilt = LayeredHasher.build(num_layers=3, bins_per_layer=64, seed=99)
        for word in ["one", "two", "three"]:
            assert original.bins_of(word) == rebuilt.bins_of(word)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            LayeredHasher.build(num_layers=0, bins_per_layer=10)
        with pytest.raises(ValueError):
            LayeredHasher.build(num_layers=1, bins_per_layer=0)
