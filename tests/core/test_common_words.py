"""Unit tests for common-word selection and the exact table."""

from repro.core.common_words import CommonWordTable, select_common_words
from repro.parsing.documents import Document, DocumentRef, Posting
from repro.profiling.profiler import profile_documents


def _posting(index: int) -> Posting:
    return Posting("b", index, 1)


def _profile(texts: list[str]):
    documents = [Document(DocumentRef("b", i * 10, len(t)), t) for i, t in enumerate(texts)]
    return profile_documents(documents)


class TestSelection:
    def test_selects_highest_document_frequency_words(self):
        profile = _profile(["the cat", "the dog", "the bird", "rare word"])
        assert select_common_words(profile, 1) == ["the"]

    def test_respects_slot_count(self):
        profile = _profile(["a b c", "a b", "a"])
        assert select_common_words(profile, 2) == ["a", "b"]

    def test_zero_slots(self):
        profile = _profile(["a b"])
        assert select_common_words(profile, 0) == []

    def test_more_slots_than_vocabulary(self):
        profile = _profile(["x y"])
        assert set(select_common_words(profile, 10)) == {"x", "y"}


class TestCommonWordTable:
    def test_register_reserves_a_slot(self):
        table = CommonWordTable()
        table.register("the")
        assert "the" in table
        assert len(table.query("the")) == 0

    def test_add_accumulates_postings(self):
        table = CommonWordTable()
        table.add("the", [_posting(1)])
        table.add("the", [_posting(2)])
        assert table.query("the").postings == {_posting(1), _posting(2)}

    def test_query_unknown_word_is_empty(self):
        assert len(CommonWordTable().query("missing")) == 0

    def test_query_returns_a_copy(self):
        table = CommonWordTable()
        table.add("the", [_posting(1)])
        result = table.query("the")
        result.postings.add(_posting(99))
        assert table.query("the").postings == {_posting(1)}

    def test_len_and_words(self):
        table = CommonWordTable()
        table.register("a")
        table.add("b", [_posting(1)])
        assert len(table) == 2
        assert table.words == {"a", "b"}

    def test_register_does_not_clobber_existing_postings(self):
        table = CommonWordTable()
        table.add("a", [_posting(1)])
        table.register("a")
        assert table.query("a").postings == {_posting(1)}
