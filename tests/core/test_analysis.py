"""Unit tests for the accuracy analysis (Equations 1, 2, 5 and 6, Lemma 1)."""

import math

import pytest

from repro.core.analysis import (
    approx_false_positive_probability,
    expected_false_positives,
    false_positive_probability,
    fast_region_limit,
    hoeffding_deviation,
    lemma1_lower_bound,
    optimal_layer_for_document,
    slow_region_limit,
    top_k_sample_size,
)
from repro.parsing.documents import Document, DocumentRef
from repro.profiling.profiler import profile_documents


class TestFalsePositiveProbability:
    def test_matches_closed_form_for_single_layer(self):
        # q_i(1) = 1 - (1 - 1/B)^{|W_i|}
        value = false_positive_probability(1, 100, 10)
        assert value == pytest.approx(1 - (1 - 1 / 100) ** 10)

    def test_probability_decreases_with_more_layers_in_fast_region(self):
        values = [false_positive_probability(layers, 1000, 20) for layers in (1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_probability_bounded_in_unit_interval(self):
        for layers in (1, 3, 7):
            for words in (1, 10, 100):
                value = false_positive_probability(layers, 64, words)
                assert 0.0 <= value <= 1.0

    def test_zero_distinct_words_gives_zero_probability(self):
        assert false_positive_probability(2, 100, 0) == 0.0

    def test_one_bin_per_layer_gives_certain_false_positive(self):
        assert false_positive_probability(4, 4, 5) == 1.0

    def test_approximation_close_to_exact_for_large_bins(self):
        exact = false_positive_probability(3, 10_000, 50)
        approx = approx_false_positive_probability(3, 10_000, 50)
        assert approx == pytest.approx(exact, rel=0.02)

    def test_approximation_upper_bounds_behaviour(self):
        # q_hat uses 1 - e^{-x} >= 1 - (1 - 1/m)^{mx}-ish; both stay in [0, 1].
        assert 0.0 <= approx_false_positive_probability(2, 100, 10) <= 1.0

    def test_invalid_structure_rejected(self):
        with pytest.raises(ValueError):
            false_positive_probability(0, 100, 10)
        with pytest.raises(ValueError):
            false_positive_probability(101, 100, 10)
        with pytest.raises(ValueError):
            false_positive_probability(1, 0, 10)
        with pytest.raises(ValueError):
            false_positive_probability(1, 10, -1)


class TestExpectedFalsePositives:
    def test_raw_sizes_assume_unit_weights(self):
        sizes = [10, 10, 10]
        expected = 3 * false_positive_probability(2, 100, 10)
        assert expected_false_positives(2, 100, sizes) == pytest.approx(expected)

    def test_profile_weights_use_irrelevance_coefficients(self):
        documents = [
            Document(DocumentRef("b", 0, 1), "a b"),
            Document(DocumentRef("b", 10, 1), "c"),
        ]
        profile = profile_documents(documents)
        weights = profile.irrelevance_coefficients()
        manual = sum(
            weight * false_positive_probability(2, 50, size)
            for weight, size in zip(weights, profile.distinct_words_per_document)
        )
        assert expected_false_positives(2, 50, profile) == pytest.approx(manual)

    def test_empty_corpus_has_zero_expectation(self):
        assert expected_false_positives(1, 10, []) == 0.0

    def test_exact_flag_switches_to_approximation(self):
        sizes = [5] * 20
        exact = expected_false_positives(2, 1000, sizes, exact=True)
        approx = expected_false_positives(2, 1000, sizes, exact=False)
        assert approx == pytest.approx(exact, rel=0.05)
        assert approx != exact

    def test_monotone_decreasing_before_lmin(self):
        sizes = [30] * 100
        num_bins = 600
        l_min = fast_region_limit(num_bins, sizes)
        layer_values = [
            expected_false_positives(layers, num_bins, sizes)
            for layers in range(1, int(l_min) + 1)
        ]
        assert layer_values == sorted(layer_values, reverse=True)


class TestLemmas:
    def test_optimal_layer_formula(self):
        assert optimal_layer_for_document(100, 10) == pytest.approx(10 * math.log(2))

    def test_lower_bound_below_objective_everywhere(self):
        sizes = [8, 16, 32, 64]
        num_bins = 256
        bound = lemma1_lower_bound(num_bins, sizes)
        for layers in range(1, 40):
            assert expected_false_positives(layers, num_bins, sizes) >= bound - 1e-12

    def test_fast_region_uses_largest_document(self):
        sizes = [5, 10, 50]
        assert fast_region_limit(200, sizes) == pytest.approx(optimal_layer_for_document(200, 50))

    def test_slow_region_uses_smallest_document(self):
        sizes = [5, 10, 50]
        assert slow_region_limit(200, sizes) == pytest.approx(optimal_layer_for_document(200, 5))

    def test_regions_ordered(self):
        sizes = [3, 9, 27]
        assert fast_region_limit(100, sizes) <= slow_region_limit(100, sizes)

    def test_optimal_layer_validation(self):
        with pytest.raises(ValueError):
            optimal_layer_for_document(0, 5)
        with pytest.raises(ValueError):
            optimal_layer_for_document(10, 0)


class TestHoeffdingDeviation:
    def test_formula(self):
        assert hoeffding_deviation(2.0, 0.01) == pytest.approx(
            math.sqrt(0.5 * 4.0 * math.log(100))
        )

    def test_smaller_delta_wider_deviation(self):
        assert hoeffding_deviation(1.0, 1e-6) > hoeffding_deviation(1.0, 1e-2)

    def test_zero_sigma_zero_deviation(self):
        assert hoeffding_deviation(0.0, 0.5) == 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            hoeffding_deviation(-1.0, 0.5)
        with pytest.raises(ValueError):
            hoeffding_deviation(1.0, 0.0)
        with pytest.raises(ValueError):
            hoeffding_deviation(1.0, 1.0)


class TestTopKSampleSize:
    def test_paper_configuration_selects_about_23_samples(self):
        # Section V-A: K=10, delta=1e-6, F0=1 selects about 23 samples.
        sample = top_k_sample_size(10, 1000, 1.0, 1e-6)
        assert 20 <= sample <= 26

    def test_whole_list_fetched_when_k_close_to_result_size(self):
        assert top_k_sample_size(10, 11, 1.0, 1e-6) == 11

    def test_sample_never_exceeds_available_postings(self):
        assert top_k_sample_size(10, 15, 1.0, 1e-6) <= 15

    def test_sample_at_least_k(self):
        assert top_k_sample_size(10, 10_000, 1.0, 1e-6) >= 10

    def test_zero_postings(self):
        assert top_k_sample_size(5, 0, 1.0, 1e-6) == 0

    def test_smaller_delta_needs_more_samples(self):
        loose = top_k_sample_size(10, 10_000, 1.0, 1e-2)
        tight = top_k_sample_size(10, 10_000, 1.0, 1e-9)
        assert tight >= loose

    def test_more_false_positives_need_more_samples(self):
        clean = top_k_sample_size(10, 10_000, 0.5, 1e-6)
        noisy = top_k_sample_size(10, 10_000, 5_000.0, 1e-6)
        assert noisy > clean

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            top_k_sample_size(0, 10, 1.0, 1e-6)
        with pytest.raises(ValueError):
            top_k_sample_size(1, -1, 1.0, 1e-6)
        with pytest.raises(ValueError):
            top_k_sample_size(1, 10, -1.0, 1e-6)
        with pytest.raises(ValueError):
            top_k_sample_size(1, 10, 1.0, 2.0)
