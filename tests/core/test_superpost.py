"""Unit tests for super postings lists."""

from repro.core.superpost import Superpost
from repro.parsing.documents import Posting


def _posting(index: int) -> Posting:
    return Posting(blob="corpus", offset=index * 10, length=10)


class TestBasicOperations:
    def test_empty_superpost(self):
        superpost = Superpost()
        assert len(superpost) == 0
        assert list(superpost) == []

    def test_add_all_unions_postings(self):
        superpost = Superpost()
        superpost.add_all([_posting(1), _posting(2)])
        superpost.add_all([_posting(2), _posting(3)])
        assert len(superpost) == 3

    def test_contains(self):
        superpost = Superpost({_posting(1)})
        assert _posting(1) in superpost
        assert _posting(2) not in superpost

    def test_sorted_postings_deterministic(self):
        superpost = Superpost({_posting(3), _posting(1), _posting(2)})
        assert superpost.sorted_postings() == [_posting(1), _posting(2), _posting(3)]


class TestSetAlgebra:
    def test_union(self):
        a = Superpost({_posting(1), _posting(2)})
        b = Superpost({_posting(2), _posting(3)})
        assert a.union(b).postings == {_posting(1), _posting(2), _posting(3)}

    def test_intersect(self):
        a = Superpost({_posting(1), _posting(2)})
        b = Superpost({_posting(2), _posting(3)})
        assert a.intersect(b).postings == {_posting(2)}

    def test_union_and_intersect_do_not_mutate_inputs(self):
        a = Superpost({_posting(1)})
        b = Superpost({_posting(2)})
        a.union(b)
        a.intersect(b)
        assert a.postings == {_posting(1)}
        assert b.postings == {_posting(2)}

    def test_intersect_all_of_multiple_sets(self):
        layers = [
            Superpost({_posting(1), _posting(2), _posting(3)}),
            Superpost({_posting(2), _posting(3), _posting(4)}),
            Superpost({_posting(3), _posting(5)}),
        ]
        assert Superpost.intersect_all(layers).postings == {_posting(3)}

    def test_intersect_all_short_circuits_on_empty(self):
        layers = [Superpost({_posting(1)}), Superpost(), Superpost({_posting(1)})]
        assert len(Superpost.intersect_all(layers)) == 0

    def test_intersect_all_of_nothing_is_empty(self):
        assert len(Superpost.intersect_all([])) == 0

    def test_union_all(self):
        layers = [Superpost({_posting(1)}), Superpost({_posting(2)}), Superpost()]
        assert Superpost.union_all(layers).postings == {_posting(1), _posting(2)}

    def test_union_all_of_nothing_is_empty(self):
        assert len(Superpost.union_all([])) == 0
