"""Unit tests for the Multilayer Hash Table."""

import pytest

from repro.core.hashing import LayeredHasher
from repro.core.mht import BinPointer, MultilayerHashTable
from repro.storage.base import RangeRead


def _mht(num_layers: int = 2, bins_per_layer: int = 4) -> MultilayerHashTable:
    hasher = LayeredHasher.build(num_layers, bins_per_layer, seed=1)
    pointers = [
        [
            BinPointer(blob="superposts", offset=(layer * bins_per_layer + bin_index) * 10, length=10)
            for bin_index in range(bins_per_layer)
        ]
        for layer in range(num_layers)
    ]
    return MultilayerHashTable(hasher=hasher, pointers=pointers)


class TestBinPointer:
    def test_to_range_read(self):
        pointer = BinPointer(blob="s", offset=5, length=20)
        assert pointer.to_range_read() == RangeRead(blob="s", offset=5, length=20)

    def test_is_empty(self):
        assert BinPointer("s", 0, 0).is_empty
        assert not BinPointer("s", 0, 1).is_empty

    def test_validation(self):
        with pytest.raises(ValueError):
            BinPointer("s", -1, 0)
        with pytest.raises(ValueError):
            BinPointer("s", 0, -1)


class TestMultilayerHashTable:
    def test_structure_properties(self):
        mht = _mht(3, 5)
        assert mht.num_layers == 3
        assert mht.bins_per_layer == 5
        assert mht.num_common_words == 0

    def test_pointer_table_shape_validated(self):
        hasher = LayeredHasher.build(2, 4, seed=0)
        with pytest.raises(ValueError):
            MultilayerHashTable(hasher=hasher, pointers=[[BinPointer("s", 0, 1)] * 4])
        with pytest.raises(ValueError):
            MultilayerHashTable(
                hasher=hasher, pointers=[[BinPointer("s", 0, 1)] * 3, [BinPointer("s", 0, 1)] * 4]
            )

    def test_pointers_for_regular_word_returns_one_per_layer(self):
        mht = _mht(3, 4)
        pointers = mht.pointers_for("keyword")
        assert len(pointers) == 3
        bins = mht.hasher.bins_of("keyword")
        for layer, (pointer, bin_index) in enumerate(zip(pointers, bins)):
            assert pointer == mht.pointers[layer][bin_index]

    def test_pointers_for_common_word_returns_single_pointer(self):
        mht = _mht()
        mht.common_word_pointers["the"] = BinPointer("superposts", 999, 5)
        assert mht.pointers_for("the") == [BinPointer("superposts", 999, 5)]
        assert mht.is_common("the")
        assert not mht.is_common("rare")

    def test_range_reads_skip_empty_bins(self):
        mht = _mht(2, 4)
        word = "keyword"
        bins = mht.hasher.bins_of(word)
        mht.pointers[0][bins[0]] = BinPointer("superposts", 0, 0)
        reads = mht.range_reads_for(word)
        assert len(reads) == 1

    def test_memory_bytes_scales_with_bins_and_common_words(self):
        mht = _mht(2, 4)
        base = mht.memory_bytes()
        mht.common_word_pointers["the"] = BinPointer("superposts", 0, 1)
        assert mht.memory_bytes() == base + 20
