"""Unit tests for the persisted ranking-statistics blob."""

from __future__ import annotations

import json

import pytest

from repro.index.builder import AirphantBuilder
from repro.index.stats import (
    RankingUnsupportedError,
    build_stats,
    decode_stats,
    encode_stats,
    idf,
    merge_stats,
    stats_blob_name,
)
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import WhitespaceAnalyzer


def _doc(offset: int, text: str, blob: str = "corpus/a.txt") -> Document:
    return Document(ref=Posting(blob=blob, offset=offset, length=len(text)), text=text)


class TestBuildStats:
    def test_exact_lengths_and_frequencies(self):
        docs = [_doc(0, "a b a c"), _doc(10, "b b")]
        stats = build_stats(docs, WhitespaceAnalyzer())
        assert stats.num_documents == 2
        assert stats.total_words == 6
        assert stats.average_length == 3.0
        assert stats.doc_lengths[docs[0].ref] == 4
        assert stats.term_frequency("a", docs[0].ref) == 2
        assert stats.term_frequency("b", docs[1].ref) == 2
        assert stats.doc_frequency("b") == 2
        assert stats.doc_frequency("c") == 1
        assert stats.doc_frequency("missing") == 0

    def test_duplicate_refs_count_once(self):
        doc = _doc(0, "x y")
        stats = build_stats([doc, doc], WhitespaceAnalyzer())
        assert stats.num_documents == 1
        assert stats.total_words == 2


class TestEncodeDecode:
    def test_round_trip(self):
        docs = [_doc(0, "alpha beta alpha"), _doc(20, "beta gamma", blob="corpus/b.txt")]
        stats = build_stats(docs, WhitespaceAnalyzer())
        decoded = decode_stats(encode_stats(stats))
        assert decoded.num_documents == stats.num_documents
        assert decoded.total_words == stats.total_words
        assert decoded.doc_lengths == stats.doc_lengths
        assert decoded.term_frequencies == stats.term_frequencies

    def test_encoding_is_deterministic(self):
        docs = [_doc(0, "a b c"), _doc(10, "c b a")]
        assert encode_stats(build_stats(docs, WhitespaceAnalyzer())) == encode_stats(
            build_stats(list(reversed(docs)), WhitespaceAnalyzer())
        )

    def test_not_a_stats_blob_is_a_value_error(self):
        with pytest.raises(ValueError):
            decode_stats(b'{"something": "else"}')

    def test_unknown_version_is_the_typed_error(self):
        payload = json.loads(encode_stats(build_stats([_doc(0, "a")], WhitespaceAnalyzer())))
        payload["version"] = 99
        with pytest.raises(RankingUnsupportedError) as excinfo:
            decode_stats(json.dumps(payload).encode(), index_name="old-index")
        assert excinfo.value.index_name == "old-index"
        assert "rebuild" in str(excinfo.value)


class TestMergeStats:
    def test_disjoint_parts_sum(self):
        a = build_stats([_doc(0, "x y")], WhitespaceAnalyzer())
        b = build_stats([_doc(10, "y z z")], WhitespaceAnalyzer())
        merged = merge_stats([a, b])
        assert merged.num_documents == 2
        assert merged.total_words == 5
        assert merged.doc_frequency("y") == 2

    def test_overlapping_documents_count_once(self):
        # A document transiently visible in two members mid-flush.
        doc = _doc(0, "x y")
        a = build_stats([doc], WhitespaceAnalyzer())
        b = build_stats([doc, _doc(10, "z")], WhitespaceAnalyzer())
        merged = merge_stats([a, b])
        assert merged.num_documents == 2
        assert merged.total_words == 3
        assert merged.doc_frequency("x") == 1


class TestIdf:
    def test_always_positive(self):
        for num_documents in (1, 2, 100):
            for doc_frequency in range(num_documents + 1):
                assert idf(num_documents, doc_frequency) > 0

    def test_monotone_decreasing_in_df(self):
        values = [idf(100, df) for df in range(1, 101)]
        assert values == sorted(values, reverse=True)


class TestBuilderIntegration:
    def test_build_writes_stats_blob(self, sim_store, small_documents, small_config):
        builder = AirphantBuilder(sim_store, config=small_config)
        built = builder.build_from_documents(small_documents, index_name="with-stats")
        assert built.stats_blob == stats_blob_name("with-stats")
        stats = decode_stats(sim_store.get(built.stats_blob))
        assert stats.num_documents == len(small_documents)

    def test_sharded_build_writes_per_shard_stats(self, sim_store, small_documents, small_config):
        builder = AirphantBuilder(sim_store, config=small_config, num_shards=2)
        built = builder.build_from_documents(small_documents, index_name="sh")
        total = 0
        for shard in built.shards:
            stats = decode_stats(sim_store.get(stats_blob_name(shard.index_name)))
            total += stats.num_documents
        assert total == len(small_documents)

    def test_sharded_rebuild_drops_stale_toplevel_stats(
        self, sim_store, small_documents, small_config
    ):
        AirphantBuilder(sim_store, config=small_config).build_from_documents(
            small_documents, index_name="re"
        )
        assert sim_store.exists(stats_blob_name("re"))
        AirphantBuilder(sim_store, config=small_config, num_shards=2).build_from_documents(
            small_documents, index_name="re"
        )
        assert not sim_store.exists(stats_blob_name("re"))
