"""Cross-version compatibility of the superpost codec.

The v2 (delta-coded) codec changes bytes on disk, never answers: these tests
pin that a v1 index stays readable by the current searcher forever (over
``mem://`` and the emulated ``s3://`` backend), that sharded/routed answers
are byte-identical across formats, and that compaction of a live index
upgrades its format in place.
"""

import json

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.index.compaction import HEADER_BLOB_SUFFIX, decode_header
from repro.index.metadata import ShardManifest
from repro.index.serialization import DEFAULT_FORMAT_VERSION, FORMAT_V1, FORMAT_V2
from repro.index.updates import AppendOnlyIndexManager
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.search.searcher import AirphantSearcher
from repro.search.sharded import ShardedSearcher
from repro.service.api import SearchRequest
from repro.service.facade import AirphantService
from repro.storage.memory import InMemoryObjectStore

from harness.corpora import SMALL_CORPUS_TEXT

CONFIG = SketchConfig(num_bins=256, num_layers=2, seed=11)


def _store_with_corpus() -> InMemoryObjectStore:
    store = InMemoryObjectStore()
    store.put("corpus.txt", SMALL_CORPUS_TEXT.encode("utf-8"))
    return store


def _documents(store):
    return list(LineDelimitedCorpusParser().parse(store, ["corpus.txt"]))


def _lookup(searcher, word: str):
    postings, _ = searcher.lookup_postings(word)
    return sorted(
        (posting.blob, posting.offset, posting.length) for posting in postings
    )


class TestV1ReadableForever:
    def test_header_roundtrips_requested_format(self):
        for version in (FORMAT_V1, FORMAT_V2):
            store = _store_with_corpus()
            builder = AirphantBuilder(store, config=CONFIG, format_version=version)
            builder.build_from_documents(_documents(store), index_name="idx")
            header = decode_header(store.get(f"idx/{HEADER_BLOB_SUFFIX}"))
            assert header.format_version == version
            assert header.metadata.format_version == version

    def test_default_build_writes_v2(self):
        store = _store_with_corpus()
        AirphantBuilder(store, config=CONFIG).build_from_documents(
            _documents(store), index_name="idx"
        )
        header = decode_header(store.get(f"idx/{HEADER_BLOB_SUFFIX}"))
        assert header.format_version == DEFAULT_FORMAT_VERSION == FORMAT_V2

    def test_v1_index_read_by_current_searcher_over_mem(self):
        store = _store_with_corpus()
        documents = _documents(store)
        for version, name in ((FORMAT_V1, "idx-v1"), (FORMAT_V2, "idx-v2")):
            AirphantBuilder(
                store, config=CONFIG, format_version=version
            ).build_from_documents(documents, index_name=name)
        old = AirphantSearcher(store, "idx-v1")
        new = AirphantSearcher(store, "idx-v2")
        old.initialize()
        new.initialize()
        for word in ["error", "timeout", "node1", "the-absent-term"]:
            assert _lookup(old, word) == _lookup(new, word)

    def test_v2_blob_is_smaller_than_v1(self):
        # Delta coding needs offsets big enough to need multi-byte varints:
        # a few hundred log lines push absolute offsets into the thousands
        # while neighbouring-posting deltas stay around line length.
        store = InMemoryObjectStore()
        lines = [
            f"error timeout node{index % 7} request {index} latency high"
            for index in range(400)
        ]
        store.put("corpus.txt", "\n".join(lines).encode("utf-8"))
        documents = _documents(store)
        sizes = {}
        for version, name in ((FORMAT_V1, "idx-v1"), (FORMAT_V2, "idx-v2")):
            AirphantBuilder(
                store, config=CONFIG, format_version=version
            ).build_from_documents(documents, index_name=name)
            sizes[version] = store.size(f"{name}/superposts.bin")
        assert sizes[FORMAT_V2] < sizes[FORMAT_V1]


class TestShardedByteIdentity:
    def test_sharded_answers_byte_identical_across_formats(self):
        store = _store_with_corpus()
        documents = _documents(store)
        payloads = {}
        for version, name in ((FORMAT_V1, "sh-v1"), (FORMAT_V2, "sh-v2")):
            AirphantBuilder(
                store,
                config=CONFIG,
                num_shards=3,
                format_version=version,
            ).build_from_documents(documents, index_name=name)
            manifest = ShardManifest.from_json(
                store.get(ShardManifest.blob_name(name))
            )
            assert manifest.index_format_version == version
            searcher = ShardedSearcher(store, name)
            searcher.initialize()
            payloads[version] = json.dumps(
                {
                    word: _lookup(searcher, word)
                    for word in ["error", "timeout", "node2", "nothing"]
                },
                sort_keys=True,
            ).encode("utf-8")
        assert payloads[FORMAT_V1] == payloads[FORMAT_V2]

    def test_routed_service_answers_byte_identical_across_formats(self):
        responses = {}
        for fmt in ("v1", "v2"):
            service = AirphantService.from_uri("mem://")
            service.store.put("corpus.txt", SMALL_CORPUS_TEXT.encode("utf-8"))
            service.build_index(
                f"logs-{fmt}",
                ["corpus.txt"],
                sketch_config=CONFIG,
                num_shards=2,
                format_version={"v1": 1, "v2": 2}[fmt],
            )
            response = service.search(
                SearchRequest(query="error timeout", index=f"logs-{fmt}")
            )
            responses[fmt] = json.dumps(
                [hit.to_dict() for hit in response.documents], sort_keys=True
            ).encode("utf-8")
            service.close()
        assert responses["v1"] == responses["v2"]


class TestS3Compat:
    def test_v1_index_read_over_emulated_s3(self, s3_emulator):
        service = AirphantService.from_uri(s3_emulator.uri())
        service.store.put("corpus.txt", SMALL_CORPUS_TEXT.encode("utf-8"))
        service.build_index(
            "logs-v1", ["corpus.txt"], sketch_config=CONFIG, format_version=1
        )
        service.build_index(
            "logs-v2", ["corpus.txt"], sketch_config=CONFIG, format_version=2
        )
        old = service.search(SearchRequest(query="error timeout", index="logs-v1"))
        new = service.search(SearchRequest(query="error timeout", index="logs-v2"))
        assert [hit.to_dict() for hit in old.documents] == [
            hit.to_dict() for hit in new.documents
        ]
        assert old.num_results == 2
        service.close()


class TestIngestUpgrade:
    def test_compaction_upgrades_v1_base_to_current_default(self):
        store = _store_with_corpus()
        documents = _documents(store)
        # A pre-v2 deployment: base and delta both written as v1.
        legacy = AppendOnlyIndexManager(
            store, "live", config=CONFIG, format_version=FORMAT_V1
        )
        legacy.build_base(documents[:6])
        legacy.append(documents[6:])
        base_header = decode_header(store.get(f"live/{HEADER_BLOB_SUFFIX}"))
        assert base_header.format_version == FORMAT_V1

        # The current deployment compacts with the default codec: the folded
        # generational base comes out as v2 with identical answers.
        manager = AppendOnlyIndexManager(store, "live", config=CONFIG)
        before = manager.open_searcher()
        expected = {word: _lookup(before, word) for word in ["error", "node2"]}
        manager.compact()
        manifest = manager.manifest()
        new_header = decode_header(
            store.get(f"{manifest.active_base}/{HEADER_BLOB_SUFFIX}")
        )
        assert new_header.format_version == DEFAULT_FORMAT_VERSION
        after = manager.open_searcher()
        assert {word: _lookup(after, word) for word in expected} == expected
