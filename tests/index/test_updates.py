"""Tests for append-only index updates and compaction."""

import pytest

from repro.core.config import SketchConfig
from repro.index.updates import AppendOnlyIndexManager
from repro.parsing.corpus import LineDelimitedCorpusParser


def _documents(store, blob_name: str, lines: list[str]):
    store.put(blob_name, "\n".join(lines).encode("utf-8"))
    return list(LineDelimitedCorpusParser().parse(store, [blob_name]))


@pytest.fixture
def manager(sim_store) -> AppendOnlyIndexManager:
    config = SketchConfig(num_bins=64, seed=5)
    manager = AppendOnlyIndexManager(sim_store, base_index="logs", config=config)
    base_docs = _documents(
        sim_store,
        "corpus/base.txt",
        ["error disk one", "info start one", "error net two", "warn cpu three"],
    )
    manager.build_base(base_docs, corpus_name="base")
    return manager


class TestManifest:
    def test_empty_manifest_before_any_build(self, sim_store):
        manager = AppendOnlyIndexManager(sim_store, base_index="fresh")
        manifest = manager.manifest()
        assert manifest.base_index == "fresh"
        assert manifest.delta_indexes == ()

    def test_build_base_writes_manifest(self, manager):
        manifest = manager.manifest()
        assert manifest.all_indexes == ["logs"]

    def test_append_registers_delta(self, manager, sim_store):
        manager.append(_documents(sim_store, "corpus/d1.txt", ["error gpu four"]))
        manifest = manager.manifest()
        assert manifest.delta_indexes == ("logs/delta-0000",)
        assert sim_store.exists("logs/delta-0000/header.json")

    def test_append_requires_documents(self, manager):
        with pytest.raises(ValueError):
            manager.append([])


class TestSearchAcrossDeltas:
    def test_new_documents_become_searchable(self, manager, sim_store):
        manager.append(_documents(sim_store, "corpus/d1.txt", ["error gpu four", "info done five"]))
        searcher = manager.open_searcher()
        result = searcher.search("error")
        assert {doc.text for doc in result.documents} == {
            "error disk one",
            "error net two",
            "error gpu four",
        }

    def test_multiple_appends(self, manager, sim_store):
        manager.append(_documents(sim_store, "corpus/d1.txt", ["error gpu four"]))
        manager.append(_documents(sim_store, "corpus/d2.txt", ["error mem five"]))
        assert manager.manifest().delta_indexes == ("logs/delta-0000", "logs/delta-0001")
        searcher = manager.open_searcher()
        assert len(searcher.search("error").documents) == 4

    def test_base_only_search_still_works(self, manager):
        searcher = manager.open_searcher()
        assert len(searcher.search("warn").documents) == 1


class TestCompaction:
    def test_indexed_documents_enumerates_everything(self, manager, sim_store):
        manager.append(_documents(sim_store, "corpus/d1.txt", ["error gpu four"]))
        documents = manager.indexed_documents()
        assert {doc.text for doc in documents} == {
            "error disk one",
            "info start one",
            "error net two",
            "warn cpu three",
            "error gpu four",
        }

    def test_compact_folds_deltas_into_base(self, manager, sim_store):
        manager.append(_documents(sim_store, "corpus/d1.txt", ["error gpu four"]))
        manager.append(_documents(sim_store, "corpus/d2.txt", ["info mem five"]))
        built = manager.compact()
        assert built.metadata.num_documents == 6
        manifest = manager.manifest()
        assert manifest.delta_indexes == ()
        # The swap moved the base into a fresh generation directory; the old
        # base and the folded deltas are retired (still readable for one
        # generation of grace) and purged by the *next* compaction.
        # build_base wrote generation 1; the compaction swap is generation 2.
        assert manifest.generation == 2
        assert manifest.active_base == "logs/gen-00000002"
        assert set(manifest.retired) == {"logs", "logs/delta-0000", "logs/delta-0001"}
        assert sim_store.list_blobs("logs/delta-0000/") != []
        searcher = manager.open_searcher()
        assert len(searcher.search("error").documents) == 3
        assert len(searcher.search("five").documents) == 1
        manager.compact()
        assert sim_store.list_blobs("logs/delta-0000/") == []
        assert not sim_store.exists("logs/header.json")
