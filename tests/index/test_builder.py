"""Unit tests for the Airphant Builder."""

import pytest

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.index.compaction import decode_header
from repro.parsing.documents import Document, DocumentRef
from repro.parsing.tokenizer import SimpleAnalyzer


class TestBuildFromBlobs:
    def test_persists_header_and_superposts(self, sim_store, small_corpus_blob, small_config):
        builder = AirphantBuilder(sim_store, config=small_config)
        built = builder.build_from_blobs([small_corpus_blob], index_name="idx")
        assert sim_store.exists(built.header_blob)
        assert sim_store.exists(built.superpost_blob)
        assert built.header_blob == "idx/header.json"
        assert built.superpost_blob == "idx/superposts.bin"

    def test_metadata_matches_corpus(self, sim_store, small_corpus_blob, small_config):
        builder = AirphantBuilder(sim_store, config=small_config)
        built = builder.build_from_blobs([small_corpus_blob], corpus_name="small")
        assert built.metadata.corpus_name == "small"
        assert built.metadata.num_documents == 10
        assert built.metadata.num_terms == built.profile.num_terms
        assert built.metadata.num_layers >= 1

    def test_storage_bytes_counts_all_blobs(self, sim_store, small_corpus_blob, small_config):
        builder = AirphantBuilder(sim_store, config=small_config)
        built = builder.build_from_blobs([small_corpus_blob], index_name="idx")
        expected = (
            sim_store.size(built.header_blob)
            + sim_store.size(built.superpost_blob)
            + sim_store.size(built.stats_blob)
        )
        assert built.storage_bytes(sim_store) == expected


class TestBuildFromDocuments:
    def test_header_round_trips_through_storage(self, sim_store, small_documents, small_config):
        builder = AirphantBuilder(sim_store, config=small_config)
        built = builder.build_from_documents(small_documents, index_name="idx")
        decoded = decode_header(sim_store.backend.get(built.header_blob))
        assert decoded.mht.num_layers == built.mht.num_layers
        assert decoded.mht.pointers == built.mht.pointers

    def test_expected_false_positives_respects_target(
        self, sim_store, small_documents, small_config
    ):
        builder = AirphantBuilder(sim_store, config=small_config)
        built = builder.build_from_documents(small_documents)
        assert built.metadata.expected_false_positives <= small_config.target_false_positives

    def test_explicit_layer_count_skips_optimizer(self, sim_store, small_documents):
        config = SketchConfig(num_bins=64, num_layers=3, seed=1)
        builder = AirphantBuilder(sim_store, config=config)
        built = builder.build_from_documents(small_documents)
        assert built.metadata.num_layers == 3

    def test_common_words_receive_exact_bins(self, sim_store, small_documents):
        # With 100 bins and a 10% common fraction, the most frequent words get
        # exact pointers in the MHT.
        config = SketchConfig(num_bins=100, common_word_fraction=0.1, seed=2)
        builder = AirphantBuilder(sim_store, config=config)
        built = builder.build_from_documents(small_documents)
        assert built.metadata.num_common_words > 0
        assert len(built.mht.common_word_pointers) == built.metadata.num_common_words

    def test_empty_corpus_builds_an_empty_index(self, sim_store, small_config):
        builder = AirphantBuilder(sim_store, config=small_config)
        built = builder.build_from_documents([])
        assert built.metadata.num_documents == 0
        assert built.metadata.num_layers == 1

    def test_custom_tokenizer_changes_vocabulary(self, sim_store, small_documents):
        config = SketchConfig(num_bins=64)
        lowercase = AirphantBuilder(sim_store, config=config, tokenizer=SimpleAnalyzer())
        built = lowercase.build_from_documents(
            [Document(DocumentRef("b", 0, 12), "Error ERROR!")], index_name="lower"
        )
        assert built.profile.num_terms == 1

    def test_two_indexes_can_coexist_in_one_store(self, sim_store, small_documents, small_config):
        builder = AirphantBuilder(sim_store, config=small_config)
        first = builder.build_from_documents(small_documents, index_name="one")
        second = builder.build_from_documents(small_documents, index_name="two")
        assert sim_store.exists(first.header_blob)
        assert sim_store.exists(second.header_blob)
        assert first.header_blob != second.header_blob

    def test_config_property_exposed(self, sim_store, small_config):
        builder = AirphantBuilder(sim_store, config=small_config)
        assert builder.config is small_config
