"""Unit tests for index metadata."""

from repro.index.metadata import IndexMetadata


def _metadata(**overrides) -> IndexMetadata:
    values = dict(
        corpus_name="test",
        num_documents=10,
        num_terms=20,
        num_words=55,
        num_layers=2,
        num_bins=64,
        bins_per_layer=32,
        num_common_words=1,
        seed=7,
        target_false_positives=1.0,
        expected_false_positives=0.3,
    )
    values.update(overrides)
    return IndexMetadata(**values)


class TestIndexMetadata:
    def test_round_trip_via_dict(self):
        metadata = _metadata()
        assert IndexMetadata.from_dict(metadata.to_dict()) == metadata

    def test_from_dict_ignores_unknown_keys(self):
        data = _metadata().to_dict()
        data["unknown_future_field"] = 123
        assert IndexMetadata.from_dict(data) == _metadata()

    def test_extra_payload_preserved(self):
        metadata = _metadata(extra={"note": "scaled corpus"})
        rebuilt = IndexMetadata.from_dict(metadata.to_dict())
        assert rebuilt.extra == {"note": "scaled corpus"}

    def test_default_format_version(self):
        assert _metadata().format_version == 1
