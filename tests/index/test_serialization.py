"""Unit tests for varint / superpost serialization and the string table."""

import pytest

from repro.core.superpost import Superpost
from repro.index.serialization import (
    StringTable,
    decode_superpost,
    decode_varint,
    encode_superpost,
    encode_varint,
)
from repro.parsing.documents import Posting


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 255, 300, 16_383, 16_384, 2**32, 2**63 - 1])
    def test_roundtrip(self, value):
        encoded = encode_varint(value)
        decoded, consumed = decode_varint(encoded)
        assert decoded == value
        assert consumed == len(encoded)

    def test_small_values_are_single_bytes(self):
        assert len(encode_varint(0)) == 1
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_decoding_truncated_varint_fails(self):
        with pytest.raises(ValueError):
            decode_varint(b"\x80")

    def test_decoding_respects_start_position(self):
        data = encode_varint(7) + encode_varint(300)
        first, pos = decode_varint(data, 0)
        second, _ = decode_varint(data, pos)
        assert (first, second) == (7, 300)

    def test_overlong_varint_rejected(self):
        with pytest.raises(ValueError):
            decode_varint(b"\xff" * 11)


class TestStringTable:
    def test_intern_assigns_sequential_keys(self):
        table = StringTable()
        assert table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.intern("a") == 0

    def test_lookup_round_trip(self):
        table = StringTable()
        key = table.intern("corpus/blob.txt")
        assert table.lookup(key) == "corpus/blob.txt"

    def test_lookup_unknown_key_fails(self):
        with pytest.raises(KeyError):
            StringTable().lookup(3)

    def test_to_list_from_list_round_trip(self):
        table = StringTable()
        table.intern("x")
        table.intern("y")
        rebuilt = StringTable.from_list(table.to_list())
        assert rebuilt.lookup(0) == "x"
        assert rebuilt.intern("y") == 1
        assert rebuilt.intern("z") == 2

    def test_len(self):
        table = StringTable()
        table.intern("one")
        table.intern("two")
        assert len(table) == 2


class TestSuperpostCodec:
    def _superpost(self) -> Superpost:
        return Superpost(
            {
                Posting("corpus/a.txt", 0, 40),
                Posting("corpus/a.txt", 41, 17),
                Posting("corpus/b.txt", 1000, 250),
            }
        )

    def test_round_trip(self):
        table = StringTable()
        encoded = encode_superpost(self._superpost(), table)
        decoded = decode_superpost(encoded, table)
        assert decoded.postings == self._superpost().postings

    def test_empty_superpost_round_trip(self):
        table = StringTable()
        encoded = encode_superpost(Superpost(), table)
        assert decode_superpost(encoded, table).postings == set()

    def test_encoding_is_deterministic(self):
        first = encode_superpost(self._superpost(), StringTable())
        second = encode_superpost(self._superpost(), StringTable())
        assert first == second

    def test_repeated_blob_names_are_compressed(self):
        # Many postings in the same blob: the blob name must not be repeated
        # in the encoding (that is the point of the string table).
        postings = {Posting("a-very-long-blob-name-shared-by-all-postings", i * 10, 5) for i in range(100)}
        table = StringTable()
        encoded = encode_superpost(Superpost(postings), table)
        assert len(encoded) < 100 * 10
        assert len(table) == 1

    def test_shared_table_across_superposts(self):
        table = StringTable()
        first = encode_superpost(Superpost({Posting("blob1", 0, 1)}), table)
        second = encode_superpost(Superpost({Posting("blob1", 5, 1), Posting("blob2", 0, 1)}), table)
        assert decode_superpost(first, table).postings == {Posting("blob1", 0, 1)}
        assert decode_superpost(second, table).postings == {
            Posting("blob1", 5, 1),
            Posting("blob2", 0, 1),
        }
