"""Unit tests for sharded builds and the shard manifest format."""

import pytest

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder, BuiltShardedIndex
from repro.index.metadata import ShardManifest, merge_shard_metadata
from repro.index.sharding import (
    partition_documents,
    read_shard_manifest,
    shard_index_name,
)


class TestPartitioning:
    def test_partitions_are_disjoint_and_complete(self, small_documents):
        partitions = partition_documents(small_documents, 3, "hash")
        assert len(partitions) == 3
        flattened = [document for partition in partitions for document in partition]
        assert sorted(d.ref for d in flattened) == sorted(d.ref for d in small_documents)

    def test_hash_partitioning_is_stable_across_orderings(self, small_documents):
        forward = partition_documents(small_documents, 4, "hash")
        backward = partition_documents(list(reversed(small_documents)), 4, "hash")
        for shard in range(4):
            assert {d.ref for d in forward[shard]} == {d.ref for d in backward[shard]}

    def test_round_robin_is_balanced(self, small_documents):
        partitions = partition_documents(small_documents, 5, "round-robin")
        sizes = [len(partition) for partition in partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_arguments_rejected(self, small_documents):
        with pytest.raises(ValueError):
            partition_documents(small_documents, 0, "hash")
        with pytest.raises(ValueError):
            partition_documents(small_documents, 2, "modulo")


class TestShardManifest:
    def test_round_trips_through_json(self):
        manifest = ShardManifest(
            index_name="idx",
            partitioner="round-robin",
            shards=tuple(),
        )
        assert ShardManifest.from_json(manifest.to_json()) == manifest

    def test_rejects_wrong_magic(self):
        with pytest.raises(ValueError):
            ShardManifest.from_dict({"format_version": 1, "index_name": "x"})

    def test_rejects_future_version(self):
        payload = ShardManifest(index_name="idx").to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            ShardManifest.from_dict(payload)

    def test_missing_manifest_reads_as_none(self, sim_store):
        assert read_shard_manifest(sim_store, "nonexistent") is None


class TestShardedBuild:
    def test_sharded_build_persists_manifest_and_per_shard_blobs(
        self, sim_store, small_documents, small_config
    ):
        builder = AirphantBuilder(sim_store, config=small_config, num_shards=4)
        built = builder.build_from_documents(small_documents, index_name="sharded")
        assert isinstance(built, BuiltShardedIndex)
        assert built.num_shards == 4
        assert built.num_documents == len(small_documents)
        manifest = read_shard_manifest(sim_store, "sharded")
        assert manifest is not None
        assert manifest.shard_names == [shard_index_name("sharded", i) for i in range(4)]
        for name in manifest.shard_names:
            assert sim_store.exists(f"{name}/header.json")
            assert sim_store.exists(f"{name}/superposts.bin")

    def test_manifest_stats_match_partition_sizes(
        self, sim_store, small_documents, small_config
    ):
        builder = AirphantBuilder(sim_store, config=small_config, num_shards=3)
        built = builder.build_from_documents(small_documents, index_name="sharded")
        partitions = partition_documents(small_documents, 3, "hash")
        for entry, partition in zip(built.manifest.shards, partitions):
            assert entry.num_documents == len(partition)

    def test_single_shard_build_keeps_legacy_layout(
        self, sim_store, small_documents, small_config
    ):
        builder = AirphantBuilder(sim_store, config=small_config, num_shards=1)
        built = builder.build_from_documents(small_documents, index_name="plain")
        assert not isinstance(built, BuiltShardedIndex)
        assert sim_store.exists("plain/header.json")
        assert read_shard_manifest(sim_store, "plain") is None

    def test_shard_metadata_records_its_place(self, sim_store, small_documents, small_config):
        builder = AirphantBuilder(
            sim_store, config=small_config, num_shards=2, partitioner="round-robin"
        )
        built = builder.build_from_documents(small_documents, index_name="sharded")
        for shard_index, shard in enumerate(built.shards):
            extra = shard.metadata.extra
            assert extra["shard_index"] == shard_index
            assert extra["num_shards"] == 2
            assert extra["partitioner"] == "round-robin"
            assert extra["parent_index"] == "sharded"

    def test_empty_partitions_build_empty_shards(self, sim_store, small_documents, small_config):
        # More shards than documents guarantees at least one empty partition.
        builder = AirphantBuilder(
            sim_store, config=small_config, num_shards=16, partitioner="round-robin"
        )
        built = builder.build_from_documents(small_documents, index_name="wide")
        assert built.num_shards == 16
        assert built.num_documents == len(small_documents)

    def test_serial_and_parallel_builds_produce_identical_blobs(
        self, sim_store, memory_store, small_documents, small_config
    ):
        serial = AirphantBuilder(
            memory_store, config=small_config, num_shards=4, build_concurrency=1
        )
        serial.build_from_documents(small_documents, index_name="idx")
        parallel = AirphantBuilder(
            sim_store, config=small_config, num_shards=4, build_concurrency=4
        )
        parallel.build_from_documents(small_documents, index_name="idx")
        for blob in memory_store.list_blobs("idx/"):
            assert memory_store.get(blob) == sim_store.get(blob)

    def test_single_shard_rebuild_removes_stale_sharded_layout(
        self, sim_store, small_documents, small_config
    ):
        AirphantBuilder(sim_store, config=small_config, num_shards=4).build_from_documents(
            small_documents, index_name="idx"
        )
        AirphantBuilder(sim_store, config=small_config).build_from_documents(
            small_documents, index_name="idx"
        )
        # The manifest and every shard sub-index are gone: readers must not
        # keep answering from the old sharded corpus.
        assert read_shard_manifest(sim_store, "idx") is None
        assert sim_store.list_blobs("idx/") == [
            "idx/header.json",
            "idx/stats.json",
            "idx/superposts.bin",
        ]

    def test_sharded_rebuild_removes_stale_single_shard_layout(
        self, sim_store, small_documents, small_config
    ):
        AirphantBuilder(sim_store, config=small_config).build_from_documents(
            small_documents, index_name="idx"
        )
        AirphantBuilder(sim_store, config=small_config, num_shards=2).build_from_documents(
            small_documents, index_name="idx"
        )
        assert not sim_store.exists("idx/header.json")
        assert not sim_store.exists("idx/superposts.bin")
        assert not sim_store.exists("idx/stats.json")
        assert read_shard_manifest(sim_store, "idx").num_shards == 2

    def test_resharding_to_fewer_shards_drops_orphans(
        self, sim_store, small_documents, small_config
    ):
        AirphantBuilder(sim_store, config=small_config, num_shards=4).build_from_documents(
            small_documents, index_name="idx"
        )
        AirphantBuilder(sim_store, config=small_config, num_shards=2).build_from_documents(
            small_documents, index_name="idx"
        )
        shard_prefixes = {blob.rsplit("/", 1)[0] for blob in sim_store.list_blobs("idx/shard-")}
        assert shard_prefixes == {"idx/shard-0000", "idx/shard-0001"}

    def test_invalid_shard_configuration_rejected(self, sim_store, small_config):
        with pytest.raises(ValueError):
            AirphantBuilder(sim_store, config=small_config, num_shards=0)
        with pytest.raises(ValueError):
            AirphantBuilder(sim_store, config=small_config, partitioner="alphabetical")
        with pytest.raises(ValueError):
            AirphantBuilder(sim_store, config=small_config, build_concurrency=0)


class TestShardedBaseWithDeltas:
    def test_append_and_compact_work_on_a_sharded_base(
        self, sim_store, small_documents, small_config
    ):
        from repro.index.updates import AppendOnlyIndexManager
        from repro.parsing.documents import Document, Posting

        AirphantBuilder(sim_store, config=small_config, num_shards=4).build_from_documents(
            small_documents, index_name="idx"
        )
        extra_blob = "corpus/extra.txt"
        extra_text = "error brand new failure"
        sim_store.put(extra_blob, extra_text.encode("utf-8"))
        extra = [Document(ref=Posting(extra_blob, 0, len(extra_text)), text=extra_text)]

        manager = AppendOnlyIndexManager(sim_store, base_index="idx", config=small_config)
        manager.append(extra)
        enumerated = {document.ref for document in manager.indexed_documents()}
        assert enumerated == {d.ref for d in small_documents} | {extra[0].ref}

        compacted = manager.compact()
        # Compaction folds the deltas in while preserving the base's sharded
        # layout: the new generational base has the same shard count, and the
        # manifest no longer lists any delta.
        assert compacted.num_documents == len(small_documents) + 1
        manifest = manager.manifest()
        assert manifest.delta_indexes == ()
        assert read_shard_manifest(sim_store, manifest.active_base).num_shards == 4
        # Readers that opened the pre-compaction manifest get one generation
        # of grace: the folded delta's blobs are retired, not yet deleted.
        assert manifest.retired == ("idx", "idx/delta-0000")
        assert sim_store.list_blobs("idx/delta-")
        searcher = manager.open_searcher()
        assert extra_text in {d.text for d in searcher.search("error").documents}
        # The next compaction purges what the previous swap stranded.
        manager.compact()
        assert not sim_store.list_blobs("idx/delta-")
        assert not sim_store.list_blobs("idx/shard-")

    def test_open_searcher_spans_sharded_base_and_deltas(
        self, sim_store, small_documents, small_config
    ):
        from repro.index.updates import AppendOnlyIndexManager
        from repro.parsing.documents import Document, Posting

        AirphantBuilder(sim_store, config=small_config, num_shards=2).build_from_documents(
            small_documents, index_name="idx"
        )
        extra_blob = "corpus/extra.txt"
        extra_text = "error appended later"
        sim_store.put(extra_blob, extra_text.encode("utf-8"))
        extra = [Document(ref=Posting(extra_blob, 0, len(extra_text)), text=extra_text)]
        manager = AppendOnlyIndexManager(sim_store, base_index="idx", config=small_config)
        manager.append(extra)

        searcher = manager.open_searcher()
        texts = {document.text for document in searcher.search("error").documents}
        expected = {d.text for d in small_documents if "error" in d.text.split()}
        assert texts == expected | {extra_text}


class TestMergedMetadata:
    def test_counts_sum_and_structure_comes_from_first_shard(
        self, sim_store, small_documents, small_config
    ):
        builder = AirphantBuilder(sim_store, config=small_config, num_shards=3)
        built = builder.build_from_documents(small_documents, index_name="sharded")
        merged = merge_shard_metadata([shard.metadata for shard in built.shards])
        assert merged.num_documents == len(small_documents)
        assert merged.num_bins == built.shards[0].metadata.num_bins
        assert merged.corpus_name == "corpus"
        assert merged.extra["num_shards"] == 3

    def test_empty_input_merges_to_none(self):
        assert merge_shard_metadata([]) is None
