"""Unit tests for superpost compaction and the header block."""

import pytest

from repro.core.common_words import CommonWordTable
from repro.core.sketch import IoUSketch
from repro.index.compaction import compact_sketch, decode_header, encode_header
from repro.index.metadata import IndexMetadata
from repro.index.serialization import decode_superpost
from repro.observability.registry import get_registry
from repro.parsing.documents import Posting


def _posting(index: int) -> Posting:
    return Posting("corpus/data.txt", index * 20, 15)


def _sketch() -> IoUSketch:
    common = CommonWordTable()
    common.register("the")
    sketch = IoUSketch.build(num_layers=2, total_bins=8, seed=3, common_words=common)
    sketch.insert("error", [_posting(1), _posting(2)])
    sketch.insert("timeout", [_posting(2), _posting(3)])
    sketch.insert("the", [_posting(index) for index in range(5)])
    return sketch


def _metadata() -> IndexMetadata:
    return IndexMetadata(
        corpus_name="unit",
        num_documents=5,
        num_terms=3,
        num_words=9,
        num_layers=2,
        num_bins=8,
        bins_per_layer=4,
        num_common_words=1,
        seed=3,
        target_false_positives=1.0,
        expected_false_positives=0.25,
    )


class TestCompaction:
    def test_pointer_shape_matches_sketch(self):
        compacted = compact_sketch(_sketch(), "index/superposts.bin")
        assert len(compacted.mht.pointers) == 2
        assert all(len(layer) == 4 for layer in compacted.mht.pointers)

    def test_each_pointer_decodes_its_superpost(self):
        sketch = _sketch()
        compacted = compact_sketch(sketch, "index/superposts.bin")
        blob = compacted.superpost_blob_data
        for layer_index, layer in enumerate(compacted.mht.pointers):
            for bin_index, pointer in enumerate(layer):
                expected = sketch.layers[layer_index][bin_index].postings
                if pointer.is_empty:
                    assert expected == set()
                    continue
                payload = blob[pointer.offset : pointer.offset + pointer.length]
                decoded = decode_superpost(
                    payload, compacted.string_table, compacted.format_version
                )
                assert decoded.postings == expected

    def test_common_word_pointer_decodes_exact_postings(self):
        sketch = _sketch()
        compacted = compact_sketch(sketch, "index/superposts.bin")
        pointer = compacted.mht.common_word_pointers["the"]
        payload = compacted.superpost_blob_data[pointer.offset : pointer.offset + pointer.length]
        decoded = decode_superpost(
            payload, compacted.string_table, compacted.format_version
        )
        assert decoded.postings == sketch.common_words.query("the").postings

    def test_empty_bins_have_zero_length_pointers(self):
        sketch = IoUSketch.build(num_layers=1, total_bins=16, seed=0)
        sketch.insert("only", [_posting(0)])
        compacted = compact_sketch(sketch, "s.bin")
        empty = [pointer for pointer in compacted.mht.pointers[0] if pointer.is_empty]
        assert len(empty) == 15

    def test_superposts_are_contiguous(self):
        compacted = compact_sketch(_sketch(), "s.bin")
        pointers = [p for layer in compacted.mht.pointers for p in layer]
        pointers += list(compacted.mht.common_word_pointers.values())
        covered = sum(pointer.length for pointer in pointers)
        assert covered == len(compacted.superpost_blob_data)


class TestHeaderCodec:
    def test_round_trip_preserves_pointers_and_seeds(self):
        compacted = compact_sketch(_sketch(), "index/superposts.bin", metadata=_metadata())
        decoded = decode_header(encode_header(compacted))
        assert decoded.superpost_blob_name == "index/superposts.bin"
        assert decoded.mht.hasher.seed == compacted.mht.hasher.seed
        assert decoded.mht.num_layers == compacted.mht.num_layers
        assert decoded.mht.pointers == compacted.mht.pointers
        assert decoded.mht.common_word_pointers == compacted.mht.common_word_pointers

    def test_round_trip_preserves_string_table(self):
        compacted = compact_sketch(_sketch(), "s.bin")
        decoded = decode_header(encode_header(compacted))
        assert decoded.string_table.to_list() == compacted.string_table.to_list()

    def test_round_trip_preserves_metadata(self):
        compacted = compact_sketch(_sketch(), "s.bin", metadata=_metadata())
        decoded = decode_header(encode_header(compacted))
        assert decoded.metadata == _metadata()

    def test_rebuilt_hasher_maps_words_identically(self):
        compacted = compact_sketch(_sketch(), "s.bin")
        decoded = decode_header(encode_header(compacted))
        for word in ["error", "timeout", "anything-else"]:
            assert decoded.mht.hasher.bins_of(word) == compacted.mht.hasher.bins_of(word)

    def test_wrong_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_header(b'{"magic": "not-airphant"}')

    def test_wrong_version_rejected(self):
        compacted = compact_sketch(_sketch(), "s.bin")
        needle = f'"format_version":{compacted.format_version}'.encode()
        data = encode_header(compacted).replace(needle, b'"format_version":99')
        with pytest.raises(ValueError):
            decode_header(data)

    def test_header_carries_codec_version(self):
        for version in (1, 2):
            compacted = compact_sketch(_sketch(), "s.bin", format_version=version)
            assert decode_header(encode_header(compacted)).format_version == version

    def test_header_without_metadata(self):
        compacted = compact_sketch(_sketch(), "s.bin", metadata=None)
        decoded = decode_header(encode_header(compacted))
        assert decoded.metadata is None


class TestCodecMetrics:
    def test_compaction_records_raw_and_encoded_bytes(self):
        registry = get_registry()
        raw = registry.counter(
            "airphant_codec_bytes_raw_total", label_names=("format",)
        )
        encoded = registry.counter(
            "airphant_codec_bytes_encoded_total", label_names=("format",)
        )
        raw_before = raw.value(format="v2")
        encoded_before = encoded.value(format="v2")
        compacted = compact_sketch(_sketch(), "s.bin", format_version=2)
        raw_delta = raw.value(format="v2") - raw_before
        encoded_delta = encoded.value(format="v2") - encoded_before
        assert encoded_delta == len(compacted.superpost_blob_data) > 0
        # The string table plus delta coding must actually compress.
        assert raw_delta > encoded_delta
