"""Unit tests for the co-access superpost layout pass."""

from repro.core.sketch import IoUSketch
from repro.index.layout import LAYOUT_COACCESS, coaccess_order, plain_order
from repro.index.compaction import compact_sketch
from repro.parsing.documents import Posting


def _posting(index: int) -> Posting:
    return Posting("corpus.txt", index * 32, 24)


def _sketch(num_layers: int = 3, total_bins: int = 24, seed: int = 5) -> IoUSketch:
    return IoUSketch.build(num_layers=num_layers, total_bins=total_bins, seed=seed)


class TestPlainOrder:
    def test_layer_major_enumeration(self):
        assert plain_order(2, 3) == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]


class TestCoaccessOrder:
    def test_is_a_permutation_of_all_nodes(self):
        sketch = _sketch()
        sketch.insert("alpha", [_posting(0), _posting(1)])
        sketch.insert("beta", [_posting(2)])
        order = coaccess_order(sketch, {"alpha": 2, "beta": 1})
        assert sorted(order) == plain_order(sketch.num_layers, sketch.bins_per_layer)

    def test_heaviest_word_chain_is_contiguous(self):
        sketch = _sketch()
        sketch.insert("heavy", [_posting(index) for index in range(50)])
        sketch.insert("light", [_posting(0)])
        order = coaccess_order(sketch, {"heavy": 50, "light": 1})
        chain = list(enumerate(sketch.hasher.bins_of("heavy")))
        positions = sorted(order.index(node) for node in set(chain))
        assert positions == list(range(positions[0], positions[0] + len(positions)))

    def test_deterministic_for_same_inputs(self):
        sketch = _sketch()
        weights = {"a": 3, "b": 2, "c": 1}
        for word in weights:
            sketch.insert(word, [_posting(0)])
        assert coaccess_order(sketch, weights) == coaccess_order(sketch, weights)

    def test_no_weights_falls_back_to_plain(self):
        sketch = _sketch()
        assert coaccess_order(sketch, {}) == plain_order(
            sketch.num_layers, sketch.bins_per_layer
        )


class TestLayoutInCompaction:
    def test_coaccess_layout_places_heavy_chain_adjacently_in_blob(self):
        sketch = _sketch(num_layers=2, total_bins=16)
        sketch.insert("heavy", [_posting(index) for index in range(40)])
        sketch.insert("noise", [_posting(41)])
        compacted = compact_sketch(
            sketch,
            "s.bin",
            layout=LAYOUT_COACCESS,
            word_weights={"heavy": 40, "noise": 1},
        )
        chain = list(enumerate(sketch.hasher.bins_of("heavy")))
        pointers = sorted(
            (compacted.mht.pointers[layer][bin_index] for layer, bin_index in set(chain)),
            key=lambda pointer: pointer.offset,
        )
        # Each chain member's superpost ends exactly where the next begins, so
        # the read pipeline can merge the query's fetches even at gap 0.
        for left, right in zip(pointers, pointers[1:]):
            assert left.offset + left.length == right.offset

    def test_layouts_produce_identical_decoded_content(self):
        from repro.index.serialization import decode_superpost

        sketch = _sketch(num_layers=2, total_bins=8)
        sketch.insert("alpha", [_posting(0), _posting(1)])
        sketch.insert("beta", [_posting(2), _posting(3)])
        weights = {"alpha": 2, "beta": 2}
        plain = compact_sketch(sketch, "s.bin", layout="plain")
        coaccess = compact_sketch(
            sketch, "s.bin", layout=LAYOUT_COACCESS, word_weights=weights
        )
        for layer in range(sketch.num_layers):
            for bin_index in range(sketch.bins_per_layer):
                expected = sketch.layers[layer][bin_index].postings
                for compacted in (plain, coaccess):
                    pointer = compacted.mht.pointers[layer][bin_index]
                    if pointer.is_empty:
                        assert expected == set()
                        continue
                    payload = compacted.superpost_blob_data[
                        pointer.offset : pointer.offset + pointer.length
                    ]
                    decoded = decode_superpost(
                        payload, compacted.string_table, compacted.format_version
                    )
                    assert decoded.postings == expected
