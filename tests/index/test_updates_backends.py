"""AppendOnlyIndexManager over sharded bases and real(istic) backends.

The single-shard ``mem://`` path is covered by ``test_updates.py``; these
tests exercise the two previously untested axes the manager must handle:

* a **sharded** base (append, enumeration, generation-safe compaction that
  preserves the shard layout), and
* an emulated **``s3://``** backend from ``tests/harness`` (every manifest
  write, delta build, and compaction swap issuing real HTTP traffic).
"""

from __future__ import annotations

import pytest

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.index.sharding import read_shard_manifest
from repro.index.updates import AppendOnlyIndexManager
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.parsing.documents import Document
from repro.storage.registry import open_store

BASE_LINES = [
    "error disk full node1",
    "info service started node2",
    "warn retry after timeout node3",
    "error net partition node4",
    "info heartbeat ok node5",
    "error cpu hot node6",
]

CONFIG = SketchConfig(num_bins=64, seed=5)


def _seed_base(store, num_shards: int) -> list[Document]:
    store.put("corpus/base.txt", ("\n".join(BASE_LINES) + "\n").encode("utf-8"))
    documents = list(LineDelimitedCorpusParser().parse(store, ["corpus/base.txt"]))
    AirphantBuilder(store, config=CONFIG, num_shards=num_shards).build_from_documents(
        documents, index_name="idx"
    )
    return documents


def _extra(store, blob: str, lines: list[str]) -> list[Document]:
    store.put(blob, ("\n".join(lines) + "\n").encode("utf-8"))
    return list(LineDelimitedCorpusParser().parse(store, [blob]))


def _drive_full_lifecycle(store, num_shards: int) -> None:
    """append → search → compact → append → compact over any backend."""
    base_documents = _seed_base(store, num_shards)
    manager = AppendOnlyIndexManager(store, base_index="idx", config=CONFIG)

    manager.append(_extra(store, "corpus/d1.txt", ["error fresh alpha"]))
    manager.append(_extra(store, "corpus/d2.txt", ["info fresh beta"]))
    searcher = manager.open_searcher()
    assert {d.text for d in searcher.search("fresh").documents} == {
        "error fresh alpha",
        "info fresh beta",
    }
    searcher.close()

    # Enumeration spans the (possibly sharded) base and both deltas.
    enumerated = {d.text for d in manager.indexed_documents()}
    assert enumerated == {d.text for d in base_documents} | {
        "error fresh alpha",
        "info fresh beta",
    }

    manager.compact()
    manifest = manager.manifest()
    assert manifest.delta_indexes == ()
    assert manifest.active_base == "idx/gen-00000001"
    if num_shards > 1:
        assert read_shard_manifest(store, manifest.active_base).num_shards == num_shards
    searcher = manager.open_searcher()
    assert len(searcher.search("error").documents) == 4  # 3 base + 1 delta
    assert {d.text for d in searcher.search("fresh").documents} == {
        "error fresh alpha",
        "info fresh beta",
    }
    searcher.close()

    # A second round: deltas after compaction get fresh (monotonic) numbers,
    # and the next compaction purges what the first one retired.
    manager.append(_extra(store, "corpus/d3.txt", ["warn fresh gamma"]))
    assert manager.manifest().delta_indexes == ("idx/delta-0002",)
    manager.compact()
    assert store.list_blobs(prefix="idx/delta-0000") == []
    if num_shards > 1:
        assert store.list_blobs(prefix="idx/shard-") == []
    searcher = manager.open_searcher()
    assert {d.text for d in searcher.search("fresh").documents} == {
        "error fresh alpha",
        "info fresh beta",
        "warn fresh gamma",
    }
    searcher.close()


class TestShardedBase:
    def test_full_lifecycle_over_a_sharded_base(self, memory_store):
        _drive_full_lifecycle(memory_store, num_shards=3)

    def test_generation_swap_is_atomic_for_concurrent_readers(self, memory_store):
        _seed_base(memory_store, num_shards=2)
        manager = AppendOnlyIndexManager(memory_store, base_index="idx", config=CONFIG)
        manager.append(_extra(memory_store, "corpus/d1.txt", ["error fresh alpha"]))
        # A reader opens the pre-compaction snapshot...
        reader = manager.open_searcher()
        before = {d.text for d in reader.search("error").documents}
        manager.compact()
        # ...and keeps answering identically afterwards: its blobs are
        # retired, not deleted, until the *next* compaction.
        assert {d.text for d in reader.search("error").documents} == before
        reader.close()


class TestEmulatedS3:
    @pytest.fixture
    def s3_store(self, s3_emulator):
        store = open_store(s3_emulator.uri())
        yield store
        store.close()

    def test_full_lifecycle_over_s3_single_shard(self, s3_store):
        _drive_full_lifecycle(s3_store, num_shards=1)

    def test_full_lifecycle_over_s3_sharded(self, s3_store):
        _drive_full_lifecycle(s3_store, num_shards=2)
