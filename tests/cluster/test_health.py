"""Unit tests for the peer health tracker (injected probe + clock)."""

import pytest

from repro.cluster.health import HealthTracker
from repro.observability import MetricsRegistry

PEERS = ("http://n1", "http://n2", "http://n3")


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeProbe:
    """A probe whose per-node outcome tests flip at will."""

    def __init__(self) -> None:
        self.down: set[str] = set()
        self.calls: list[str] = []

    def __call__(self, url: str, timeout_s: float) -> None:
        self.calls.append(url)
        if url in self.down:
            raise ConnectionRefusedError(f"{url} is down")


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def probe():
    return FakeProbe()


@pytest.fixture
def tracker(clock, probe):
    return HealthTracker(
        PEERS,
        probe_interval_s=0,  # no background thread in unit tests
        backoff_ms=1000.0,
        max_backoff_ms=8000.0,
        probe=probe,
        clock=clock,
    )


class TestHealthTracker:
    def test_starts_optimistic(self, tracker):
        assert sorted(tracker.live_nodes()) == sorted(PEERS)
        assert all(tracker.is_live(url) for url in PEERS)

    def test_needs_at_least_one_peer(self, clock, probe):
        with pytest.raises(ValueError):
            HealthTracker((), probe=probe, clock=clock)

    def test_failure_marks_down(self, tracker):
        tracker.record_failure("http://n2", "boom")
        assert "http://n2" not in tracker.live_nodes()
        assert not tracker.is_live("http://n2")

    def test_success_marks_back_up(self, tracker):
        tracker.record_failure("http://n2", "boom")
        tracker.record_success("http://n2")
        assert "http://n2" in tracker.live_nodes()

    def test_backoff_doubles_then_caps(self, tracker, clock):
        for expected_backoff_s in (1.0, 2.0, 4.0, 8.0, 8.0):
            tracker.record_failure("http://n1", "boom")
            assert not tracker.is_live("http://n1")
            clock.advance(expected_backoff_s - 0.001)
            assert not tracker.is_live("http://n1")
            clock.advance(0.002)
            # Past the deadline the node is retry-able (but not "live").
            assert tracker.is_live("http://n1")
            assert "http://n1" not in tracker.live_nodes()

    def test_probe_once_skips_backed_off_nodes(self, tracker, probe, clock):
        probe.down.add("http://n2")
        tracker.probe_once()
        assert probe.calls.count("http://n2") == 1
        probe.calls.clear()
        tracker.probe_once()  # still inside the 1s backoff window
        assert "http://n2" not in probe.calls
        clock.advance(1.5)
        tracker.probe_once()
        assert "http://n2" in probe.calls

    def test_probe_recovery_marks_up(self, tracker, probe, clock):
        probe.down.add("http://n2")
        tracker.probe_once()
        probe.down.clear()
        clock.advance(2.0)
        tracker.probe_once()
        assert "http://n2" in tracker.live_nodes()

    def test_ordered_puts_down_nodes_last(self, tracker):
        tracker.record_failure("http://n1", "boom")
        assert tracker.ordered(["http://n1", "http://n2"]) == [
            "http://n2",
            "http://n1",
        ]
        # Replica order is preserved within each class.
        assert tracker.ordered(["http://n3", "http://n2"]) == [
            "http://n3",
            "http://n2",
        ]

    def test_unknown_node_is_not_live(self, tracker):
        assert not tracker.is_live("http://stranger")
        tracker.record_failure("http://stranger", "boom")  # must not raise

    def test_summary_shape(self, tracker, clock):
        tracker.record_failure("http://n3", "connection refused")
        summary = tracker.summary()
        assert summary["peers"] == 3
        assert summary["live"] == 2
        assert summary["marked_down"] == ["http://n3"]
        entry = summary["nodes"]["http://n3"]
        assert entry["healthy"] is False
        assert entry["last_error"] == "connection refused"
        assert entry["retry_in_s"] == pytest.approx(1.0)

    def test_metrics_transitions_and_gauges(self, clock, probe):
        registry = MetricsRegistry()
        tracker = HealthTracker(
            PEERS, probe_interval_s=0, probe=probe, clock=clock, metrics=registry
        )
        probe.down.add("http://n1")
        tracker.probe_once()
        probes = registry.get("airphant_cluster_probes_total")
        assert probes.value(outcome="success") == 2
        assert probes.value(outcome="failure") == 1
        transitions = registry.get("airphant_cluster_transitions_total")
        assert transitions.value(direction="down") == 1
        assert registry.get("airphant_cluster_peer_nodes").value() == 3
        assert registry.get("airphant_cluster_live_nodes").value() == 2

    def test_background_thread_lifecycle(self, probe):
        tracker = HealthTracker(PEERS, probe_interval_s=0.01, probe=probe)
        tracker.start()
        try:
            deadline = 200
            while not probe.calls and deadline:
                deadline -= 1
                import time

                time.sleep(0.005)
            assert probe.calls
        finally:
            tracker.close()
        assert tracker._thread is None
