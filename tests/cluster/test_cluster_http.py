"""Integration tests: a 3-node in-process cluster behind the query router.

Three real HTTP nodes (``ThreadingHTTPServer`` on ephemeral ports) share one
in-memory bucket; a fourth service with ``peers`` configured routes over
them.  The core contract under test: a routed answer is byte-identical to
the single-node answer for every query mode (property-tested over generated
queries), and a dead node degrades the response instead of failing it.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.router import http_transport
from repro.service.api import SearchRequest, ServiceError
from repro.service.config import ServiceConfig
from repro.service.facade import AirphantService
from repro.service.http import create_server
from repro.storage.memory import InMemoryObjectStore
from repro.workloads.logs import generate_log_corpus

NUM_NODES = 3
NUM_SHARDS = 4

#: Words that actually occur in the generated hdfs corpus templates.
VOCABULARY = [
    "INFO",
    "ERROR",
    "dfs.DataNode",
    "block",
    "Receiving",
    "Served",
    "terminating",
    "blockMap",
    "PacketResponder",
    "size",
]

keyword_queries = st.lists(
    st.sampled_from(VOCABULARY), min_size=1, max_size=2, unique=True
).map(" ".join)
boolean_queries = st.tuples(
    st.sampled_from(VOCABULARY),
    st.sampled_from([" AND ", " OR "]),
    st.sampled_from(VOCABULARY),
).map("".join)
regex_queries = st.sampled_from(
    [
        r"Served block blk_\S+",
        r"ERROR dfs\.DataNode \w+",
        r"PacketResponder \d+ for block",
        r"Receiving block blk_\S+ src",
    ]
)


class Cluster:
    """The shared fixture state: bucket, nodes, router, and a local oracle."""

    def __init__(self) -> None:
        self.store = InMemoryObjectStore()
        corpus = generate_log_corpus(self.store, "hdfs", num_documents=240, seed=11)
        self.local = AirphantService(self.store)
        self.local.build_index("logs", list(corpus.blob_names), num_shards=NUM_SHARDS)
        self.servers = []
        for _ in range(NUM_NODES):
            service = AirphantService(self.store, ServiceConfig(probe_interval_s=0))
            server = create_server(service)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            self.servers.append(server)
        self.peers = tuple(server.url for server in self.servers)
        # Open the searcher on every node up front so integration queries
        # measure routing, not first-touch index initialization.
        for server in self.servers:
            http_transport(
                server.url, "/search", {"query": "warmup", "index": "logs"}, 30.0
            )
        self.router = AirphantService(
            self.store, ServiceConfig(peers=self.peers, probe_interval_s=0)
        )
        self.router_server = create_server(self.router)
        threading.Thread(target=self.router_server.serve_forever, daemon=True).start()

    def close(self) -> None:
        self.router.close()
        self.local.close()
        for server in [*self.servers, self.router_server]:
            try:
                server.shutdown()
                server.server_close()
            except OSError:
                pass


@pytest.fixture(scope="module")
def cluster():
    cluster = Cluster()
    try:
        yield cluster
    finally:
        cluster.close()


def routed_equals_local(cluster, request: SearchRequest) -> None:
    try:
        local = cluster.local.search(request)
    except ServiceError as expected:
        with pytest.raises(ServiceError) as exc_info:
            cluster.router.search(request)
        assert exc_info.value.status == expected.status
        return
    routed = cluster.router.search(request)
    routed_payload, local_payload = routed.to_dict(), local.to_dict()
    for payload in (routed_payload, local_payload):
        # Execution-cost fields legitimately differ between one node and a
        # scatter (per-subset top-k sampling fetches different candidates);
        # everything the caller consumes must match byte for byte.
        payload.pop("latency")
        payload.pop("false_positive_count")
    assert routed_payload == local_payload


class TestRoutedEqualsSingleNode:
    @given(query=keyword_queries)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_keyword_identity(self, cluster, query):
        routed_equals_local(cluster, SearchRequest(query=query, index="logs"))

    @given(query=boolean_queries)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_boolean_identity(self, cluster, query):
        routed_equals_local(
            cluster, SearchRequest(query=query, index="logs", mode="boolean")
        )

    @given(query=regex_queries)
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_regex_identity(self, cluster, query):
        routed_equals_local(
            cluster, SearchRequest(query=query, index="logs", mode="regex")
        )

    @given(query=keyword_queries, top_k=st.integers(min_value=1, max_value=20))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_truncated_identity(self, cluster, query, top_k):
        routed_equals_local(
            cluster, SearchRequest(query=query, index="logs", top_k=top_k)
        )

    def test_untruncated_response_matches_exactly_minus_latency(self, cluster):
        request = SearchRequest(query="INFO dfs.DataNode", index="logs")
        routed = cluster.router.search(request).to_dict()
        local = cluster.local.search(request).to_dict()
        routed.pop("latency")
        local.pop("latency")
        # Without top-k sampling even the false-positive accounting agrees.
        assert routed == local
        assert "partial" not in routed


class TestRankedIdentity:
    """Routed BM25 answers must be byte-identical to the single-node oracle.

    Per-node top-k truncation followed by the router's score-ordered merge is
    exact because every node scores with the same corpus-wide statistics and
    ties break on posting order — the global top-k is always contained in the
    union of per-node top-ks.
    """

    @given(query=keyword_queries, top_k=st.integers(min_value=1, max_value=20))
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_ranked_identity(self, cluster, query, top_k):
        routed_equals_local(
            cluster,
            SearchRequest(query=query, index="logs", mode="topk_bm25", top_k=top_k),
        )

    def test_ranked_default_k_identity(self, cluster):
        routed_equals_local(
            cluster, SearchRequest(query="block", index="logs", mode="topk_bm25")
        )

    def test_ranked_weighted_identity(self, cluster):
        routed_equals_local(
            cluster,
            SearchRequest(
                query="INFO block",
                index="logs",
                mode="topk_bm25",
                top_k=15,
                weights={"block": 4.0},
            ),
        )

    def test_ranked_over_http_returns_descending_scores(self, cluster):
        body = http_transport(
            cluster.router_server.url,
            "/search",
            {"query": "INFO block", "index": "logs", "mode": "topk_bm25", "top_k": 5},
            30.0,
        )
        scores = [document["score"] for document in body["documents"]]
        assert len(scores) == body["num_results"] > 0
        assert all(0.0 <= score <= 1.0 for score in scores)
        assert scores == sorted(scores, reverse=True)

    def test_ranked_mode_counted_in_metrics(self, cluster):
        http_transport(
            cluster.peers[0],
            "/search",
            {"query": "INFO", "index": "logs", "mode": "topk_bm25"},
            30.0,
        )
        with urllib.request.urlopen(f"{cluster.peers[0]}/metrics") as response:
            text = response.read().decode("utf-8")
        assert 'airphant_queries_total{mode="topk_bm25",index="logs"}' in text


class TestShardSubsets:
    def test_disjoint_subsets_partition_the_answer(self, cluster):
        request = SearchRequest(query="INFO", index="logs")
        full = cluster.local.search(request)
        refs = set()
        for shards in [(0, 2), (1, 3)]:
            subset = cluster.local.search(
                SearchRequest(query="INFO", index="logs", shards=shards)
            )
            subset_refs = {(d.blob, d.offset, d.length) for d in subset.documents}
            assert refs.isdisjoint(subset_refs)
            refs |= subset_refs
        assert refs == {(d.blob, d.offset, d.length) for d in full.documents}

    def test_out_of_range_subset_is_400(self, cluster):
        with pytest.raises(ServiceError) as exc_info:
            cluster.local.search(
                SearchRequest(query="INFO", index="logs", shards=(NUM_SHARDS,))
            )
        assert exc_info.value.status == 400
        assert exc_info.value.info.error == "bad_shards"

    def test_http_search_accepts_shards(self, cluster):
        body = http_transport(
            cluster.peers[0],
            "/search",
            {"query": "INFO", "index": "logs", "shards": [0]},
            30.0,
        )
        assert body["num_results"] >= 0
        assert "partial" not in body


class TestClusterEndpoints:
    def test_cluster_endpoint_on_router_node(self, cluster):
        body = http_transport(cluster.router_server.url, "/cluster", None, 30.0)
        assert set(body) == {"topology", "health", "router"}
        assert sorted(body["topology"]["peers"]) == sorted(cluster.peers)
        assert body["health"]["peers"] == NUM_NODES

    def test_cluster_endpoint_404_on_standalone_node(self, cluster):
        with pytest.raises(ServiceError) as exc_info:
            http_transport(cluster.peers[0], "/cluster", None, 30.0)
        assert exc_info.value.status == 404
        assert exc_info.value.info.error == "not_clustered"

    def test_healthz_cluster_block(self, cluster):
        standalone = http_transport(cluster.peers[0], "/healthz", None, 30.0)
        assert standalone["cluster"] == {"enabled": False, "peers": 0}
        routed = http_transport(cluster.router_server.url, "/healthz", None, 30.0)
        assert routed["cluster"]["enabled"] is True
        assert routed["cluster"]["peers"] == NUM_NODES
        assert routed["cluster"]["live"] == NUM_NODES

    def test_router_metrics_are_exported(self, cluster):
        cluster.router.search(SearchRequest(query="INFO", index="logs"))
        with urllib.request.urlopen(f"{cluster.router_server.url}/metrics") as response:
            text = response.read().decode("utf-8")
        assert "airphant_router_requests_total" in text
        assert 'outcome="ok"' in text
        assert "airphant_router_seconds" in text
        assert "airphant_router_node_requests_total" in text
        assert "airphant_cluster_live_nodes" in text


def _spans_named(node, name):
    """Every span dict named ``name`` in a serialized trace tree."""
    found = [node] if node.get("name") == name else []
    for child in node.get("children") or []:
        found.extend(_spans_named(child, name))
    return found


def _walk_spans(node):
    yield node
    for child in node.get("children") or []:
        yield from _walk_spans(child)


class TestTracePropagation:
    """A routed explain query yields ONE span tree spanning the cluster.

    The router sends trace-propagation headers with every sub-request; each
    peer traces its share, attaches the serialized sub-tree to its response,
    and the router grafts it under the corresponding per-node span — so the
    client sees the whole scatter, peers included, under a single trace id.
    """

    def test_routed_explain_returns_one_cross_node_tree(self, cluster):
        body = http_transport(
            cluster.router_server.url,
            "/search",
            {"query": "INFO block", "index": "logs", "explain": True},
            30.0,
        )
        trace = body["trace"]
        root = trace["spans"]
        assert root["name"] == "query"
        # Ids are consistent across the graft boundary: every span of the
        # merged tree — the peers' included — carries the router's trace id.
        assert {node["trace_id"] for node in _walk_spans(root)} == {trace["trace_id"]}
        (route_span,) = _spans_named(root, "router.route")
        node_spans = _spans_named(root, "router.node")
        assert len(node_spans) == route_span["attrs"]["groups"] >= 2
        assert {span["attrs"]["node"] for span in node_spans} <= set(cluster.peers)
        # The per-node shard subsets partition the index's ordinals exactly.
        scattered = [
            ordinal for span in node_spans for ordinal in span["attrs"]["shards"]
        ]
        assert sorted(scattered) == list(range(NUM_SHARDS))
        for node_span in node_spans:
            grafted = [
                child
                for child in node_span.get("children") or []
                if child["name"] == "query"
            ]
            assert len(grafted) == 1, "exactly one peer sub-tree per node span"
            peer_root = grafted[0]
            assert peer_root["parent_id"] == node_span["span_id"]
            # The peer really traced its share of the work, down to the
            # storage pipeline.
            assert _spans_named(peer_root, "pipeline.fetch")
        totals = trace["summary"]["totals"]
        assert totals["requests"] > 0
        assert totals["bytes_fetched"] > 0

    def test_unexplained_routed_query_carries_no_trace(self, cluster):
        body = http_transport(
            cluster.router_server.url,
            "/search",
            {"query": "INFO block", "index": "logs"},
            30.0,
        )
        assert "trace" not in body

    def test_routed_trace_served_by_traces_endpoints(self, cluster):
        body = http_transport(
            cluster.router_server.url,
            "/search",
            {"query": "Served block", "index": "logs", "explain": True},
            30.0,
        )
        trace_id = body["trace"]["trace_id"]
        url = cluster.router_server.url
        with urllib.request.urlopen(f"{url}/traces") as response:
            listing = json.loads(response.read().decode("utf-8"))
        assert any(entry["trace_id"] == trace_id for entry in listing["traces"])
        with urllib.request.urlopen(f"{url}/traces/{trace_id}") as response:
            payload = json.loads(response.read().decode("utf-8"))
        assert payload["trace_id"] == trace_id
        assert payload["spans"]["name"] == "query"
        # The retained tree is the merged one, peer sub-trees included.
        assert _spans_named(payload["spans"], "router.node")


class TestDegradedCluster:
    def test_dead_node_yields_typed_partial_response(self, cluster):
        # A dedicated RF=1 router over one live and one dead peer: the dead
        # node's shards have no surviving replica, so the answer degrades.
        dead = "http://127.0.0.1:1"  # port 1: connection refused
        router = AirphantService(
            cluster.store,
            ServiceConfig(
                peers=(cluster.peers[0], dead),
                replication_factor=1,
                shard_timeout_s=2.0,
                probe_interval_s=0,
            ),
        )
        try:
            response = router.search(SearchRequest(query="INFO", index="logs"))
        finally:
            router.close()
        assert response.partial is True
        assert response.shard_errors
        for error in response.shard_errors:
            assert error.node == dead
            assert error.error in {"node_unreachable", "node_timeout"}
        payload = json.loads(response.to_json())
        assert payload["partial"] is True

    def test_healthz_never_500s_with_dead_peers(self, cluster):
        dead = ("http://127.0.0.1:1", "http://127.0.0.1:2")
        router = AirphantService(
            cluster.store,
            ServiceConfig(peers=dead, shard_timeout_s=1.0, probe_interval_s=0),
        )
        server = create_server(router)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            with pytest.raises(ServiceError):
                router.search(SearchRequest(query="INFO", index="logs"))
            body = http_transport(server.url, "/healthz", None, 30.0)
            assert body["cluster"]["enabled"] is True
            assert body["cluster"]["live"] == 0
            assert sorted(body["cluster"]["marked_down"]) == sorted(dead)
        finally:
            router.close()
            server.shutdown()
            server.server_close()

    def test_failover_keeps_answers_complete_with_replicas(self, cluster):
        # RF=2 over three nodes: killing one node must not degrade results.
        store = cluster.store
        services = [
            AirphantService(store, ServiceConfig(probe_interval_s=0))
            for _ in range(3)
        ]
        servers = [create_server(service) for service in services]
        for server in servers:
            threading.Thread(target=server.serve_forever, daemon=True).start()
        for server in servers:
            http_transport(
                server.url, "/search", {"query": "warmup", "index": "logs"}, 30.0
            )
        router = AirphantService(
            store,
            ServiceConfig(
                peers=tuple(server.url for server in servers),
                shard_timeout_s=5.0,
                probe_interval_s=0,
            ),
        )
        try:
            servers[0].shutdown()
            servers[0].server_close()
            response = router.search(SearchRequest(query="INFO", index="logs"))
            local = cluster.local.search(SearchRequest(query="INFO", index="logs"))
            assert response.partial is False
            assert [d.to_dict() for d in response.documents] == [
                d.to_dict() for d in local.documents
            ]
        finally:
            router.close()
            for server in servers[1:]:
                server.shutdown()
                server.server_close()
