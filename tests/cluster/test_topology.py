"""Unit tests for the consistent-hash cluster topology."""

import pytest

from repro.cluster.topology import ClusterTopology

PEERS = (
    "http://10.0.0.1:8080",
    "http://10.0.0.2:8080",
    "http://10.0.0.3:8080",
)


class TestClusterTopology:
    def test_peers_and_len(self):
        topology = ClusterTopology(PEERS)
        assert set(topology.peers) == set(PEERS)
        assert len(topology) == 3

    def test_duplicate_peers_are_dropped(self):
        topology = ClusterTopology(PEERS + PEERS)
        assert len(topology) == 3

    def test_replication_factor_must_be_positive(self):
        with pytest.raises(ValueError):
            ClusterTopology(PEERS, replication_factor=0)

    def test_shard_key_is_stable_and_zero_padded(self):
        assert ClusterTopology.shard_key("logs", 3) == "logs/shard-0003"
        assert ClusterTopology.shard_key("logs", 123) == "logs/shard-0123"

    def test_replicas_are_distinct_and_sized(self):
        topology = ClusterTopology(PEERS, replication_factor=2)
        for ordinal in range(16):
            replicas = topology.replicas("logs", ordinal)
            assert len(replicas) == 2
            assert len(set(replicas)) == 2
            assert set(replicas) <= set(PEERS)

    def test_replication_factor_is_capped_at_peer_count(self):
        topology = ClusterTopology(PEERS, replication_factor=5)
        replicas = topology.replicas("logs", 0)
        assert sorted(replicas) == sorted(PEERS)

    def test_assignments_cover_every_ordinal(self):
        topology = ClusterTopology(PEERS)
        assignments = topology.assignments("logs", 16)
        assert sorted(assignments) == list(range(16))
        for ordinal in range(16):
            assert assignments[ordinal] == topology.replicas("logs", ordinal)

    def test_assignments_reject_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            ClusterTopology(PEERS).assignments("logs", 0)

    def test_placement_is_deterministic_across_instances(self):
        a = ClusterTopology(PEERS).assignments("logs", 32)
        b = ClusterTopology(reversed(PEERS)).assignments("logs", 32)
        assert a == b

    def test_join_moves_a_bounded_fraction_of_owners(self):
        before = ClusterTopology(PEERS)
        after = before.with_peer("http://10.0.0.4:8080")
        num_shards = 128
        old = before.assignments("logs", num_shards)
        new = after.assignments("logs", num_shards)
        moved = sum(1 for o in range(num_shards) if old[o][0] != new[o][0])
        # Consistent hashing: a join should move roughly 1/n of the owners,
        # never rebalance everything.
        assert moved <= num_shards // 2

    def test_leave_only_reassigns_the_leavers_shards(self):
        before = ClusterTopology(PEERS, replication_factor=1)
        leaver = PEERS[0]
        after = before.without_peer(leaver)
        num_shards = 128
        old = before.assignments("logs", num_shards)
        new = after.assignments("logs", num_shards)
        for ordinal in range(num_shards):
            if old[ordinal][0] != leaver:
                assert new[ordinal][0] == old[ordinal][0]

    def test_describe_includes_optional_assignments(self):
        topology = ClusterTopology(PEERS, replication_factor=2)
        plain = topology.describe()
        assert plain["replication_factor"] == 2
        assert set(plain["peers"]) == set(PEERS)
        assert "assignments" not in plain
        detailed = topology.describe(indexes=[("logs", 4)])
        assert set(detailed["assignments"]["logs"]) == {"0", "1", "2", "3"}
