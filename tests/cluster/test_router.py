"""Unit tests for the scatter-gather router over an in-memory fake transport."""

import threading

import pytest

from repro.cluster.health import HealthTracker
from repro.cluster.router import NodeQueryError, QueryRouter
from repro.observability import MetricsRegistry
from repro.service.api import (
    DocumentHit,
    SearchRequest,
    SearchResponse,
    ServiceError,
)

PEERS = ("http://n1", "http://n2", "http://n3")

#: A tiny 4-shard "index": shard ordinal -> the documents that live in it.
SHARD_DOCS = {
    0: [DocumentHit(blob="corpora/a.txt", offset=0, length=10, text="doc a0")],
    1: [DocumentHit(blob="corpora/a.txt", offset=10, length=10, text="doc a1")],
    2: [DocumentHit(blob="corpora/b.txt", offset=0, length=12, text="doc b0")],
    3: [DocumentHit(blob="corpora/b.txt", offset=12, length=12, text="doc b1")],
}
NUM_SHARDS = len(SHARD_DOCS)


class FakeCluster:
    """An in-memory node fleet the router's transport talks to.

    Every node can answer any shard subset (they all see the same bucket);
    tests make nodes fail by adding them to ``down`` or give them per-call
    behavior via ``hooks``.
    """

    def __init__(self) -> None:
        self.down: set[str] = set()
        self.calls: list[tuple[str, str, tuple[int, ...] | None]] = []
        self.hooks: dict[str, object] = {}
        self.lock = threading.Lock()

    def transport(self, url, path, payload, timeout_s):
        shards = None if payload is None else tuple(payload.get("shards", ()))
        with self.lock:
            self.calls.append((url, path, shards))
        hook = self.hooks.get(url)
        if hook is not None:
            hook(url, path, payload)
        if url in self.down:
            raise NodeQueryError("node_unreachable", f"{url}: connection refused")
        if path.startswith("/indexes/"):
            return {"name": path.rsplit("/", 1)[-1], "num_shards": NUM_SHARDS}
        if path == "/healthz":
            return {"status": "ok"}
        assert path == "/search"
        request = SearchRequest.from_dict(payload)
        documents = []
        for ordinal in request.shards:
            documents.extend(SHARD_DOCS[ordinal])
        return SearchResponse(
            query=request.query,
            index=request.index,
            mode=request.mode,
            documents=tuple(documents),
            num_candidates=len(documents),
        ).to_dict()


@pytest.fixture
def cluster():
    return FakeCluster()


def make_router(cluster, **kwargs):
    kwargs.setdefault("probe_interval_s", 0)
    kwargs.setdefault("transport", cluster.transport)
    return QueryRouter(PEERS, **kwargs)


ALL_DOCS = sorted(
    (doc for docs in SHARD_DOCS.values() for doc in docs),
    key=lambda d: (d.blob, d.offset, d.length),
)


class TestRouting:
    def test_full_merge_covers_every_shard_once(self, cluster):
        with make_router(cluster) as router:
            response = router.route(SearchRequest(query="doc", index="logs"))
        assert list(response.documents) == ALL_DOCS
        assert response.partial is False
        assert response.shard_errors == ()
        queried = sorted(
            ordinal
            for _, path, shards in cluster.calls
            if path == "/search"
            for ordinal in shards
        )
        assert queried == list(range(NUM_SHARDS))

    def test_merge_deduplicates_and_truncates_to_top_k(self, cluster):
        with make_router(cluster) as router:
            response = router.route(SearchRequest(query="doc", index="logs", top_k=2))
        assert list(response.documents) == ALL_DOCS[:2]

    def test_num_shards_is_cached_until_invalidated(self, cluster):
        with make_router(cluster) as router:
            router.route(SearchRequest(query="doc", index="logs"))
            router.route(SearchRequest(query="doc", index="logs"))
            describes = [c for c in cluster.calls if c[1] == "/indexes/logs"]
            assert len(describes) == 1
            router.invalidate("logs")
            router.route(SearchRequest(query="doc", index="logs"))
            describes = [c for c in cluster.calls if c[1] == "/indexes/logs"]
            assert len(describes) == 2

    def test_rejects_requests_that_pin_shards(self, cluster):
        with make_router(cluster) as router:
            with pytest.raises(ServiceError) as exc_info:
                router.route(SearchRequest(query="doc", index="logs", shards=(0,)))
        assert exc_info.value.status == 400

    def test_plan_groups_ordinals_by_replica_sequence(self, cluster):
        with make_router(cluster) as router:
            plan = router.plan("logs", NUM_SHARDS)
        planned = sorted(o for _, ordinals in plan.groups for o in ordinals)
        assert planned == list(range(NUM_SHARDS))
        for candidates, _ in plan.groups:
            assert len(set(candidates)) == len(candidates)
            assert set(candidates) <= set(PEERS)


class TestFailover:
    def test_dead_node_fails_over_to_replica(self, cluster):
        cluster.down.add("http://n1")
        with make_router(cluster) as router:
            response = router.route(SearchRequest(query="doc", index="logs"))
        assert list(response.documents) == ALL_DOCS
        assert response.partial is False
        assert not router.health.is_live("http://n1")

    def test_all_replicas_dead_yields_typed_partial_response(self, cluster):
        cluster.down.add("http://n1")
        with make_router(cluster, replication_factor=1) as router:
            response = router.route(SearchRequest(query="doc", index="logs"))
        # n1 owns at least one shard of this fixture under RF=1.
        assert response.partial is True
        assert response.shard_errors
        for error in response.shard_errors:
            assert error.node == "http://n1"
            assert error.error == "node_unreachable"
        answered = {
            ordinal
            for doc_ordinal, docs in SHARD_DOCS.items()
            for doc in docs
            if doc in response.documents
            for ordinal in [doc_ordinal]
        }
        missing = {error.shard for error in response.shard_errors}
        assert answered.isdisjoint(missing)
        assert answered | missing == set(range(NUM_SHARDS))

    def test_partial_response_serializes_with_flags(self, cluster):
        cluster.down.add("http://n1")
        with make_router(cluster, replication_factor=1) as router:
            payload = router.route(SearchRequest(query="doc", index="logs")).to_dict()
        assert payload["partial"] is True
        assert payload["shard_errors"]
        entry = payload["shard_errors"][0]
        assert set(entry) == {"shard", "node", "error", "message"}
        roundtrip = SearchResponse.from_dict(payload)
        assert roundtrip.partial is True

    def test_every_node_dead_raises_503(self, cluster):
        cluster.down.update(PEERS)
        with make_router(cluster) as router:
            with pytest.raises(ServiceError) as exc_info:
                router.route(SearchRequest(query="doc", index="logs"))
        assert exc_info.value.status == 503
        assert exc_info.value.info.error == "cluster_unavailable"

    def test_definitive_4xx_fails_whole_query_without_failover(self, cluster):
        def reject(url, path, payload):
            if path == "/search":
                raise ServiceError(400, "unfilterable_query", "no literal terms")

        cluster.hooks = {url: reject for url in PEERS}
        with make_router(cluster) as router:
            with pytest.raises(ServiceError) as exc_info:
                router.route(SearchRequest(query="doc", index="logs"))
        assert exc_info.value.status == 400
        # A 4xx is not a node failure: nothing should be marked down.
        assert sorted(router.health.live_nodes()) == sorted(PEERS)

    def test_transient_failure_retries_same_replica_set(self, cluster):
        failures = {"remaining": 1}

        def flaky(url, path, payload):
            if path == "/search" and failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise NodeQueryError("node_timeout", f"{url} timed out")

        cluster.hooks = {url: flaky for url in PEERS}
        with make_router(cluster, node_retries=1) as router:
            response = router.route(SearchRequest(query="doc", index="logs"))
        assert list(response.documents) == ALL_DOCS
        assert response.partial is False


class TestHedging:
    def test_slow_primary_triggers_hedge(self, cluster):
        release = threading.Event()

        def slow_n1(url, path, payload):
            if path == "/search":
                release.wait(5.0)

        cluster.hooks = {"http://n1": slow_n1}
        registry = MetricsRegistry()
        router = make_router(cluster, node_hedge_ms=20.0, metrics=registry)
        try:
            response = router.route(SearchRequest(query="doc", index="logs"))
        finally:
            release.set()
            router.close()
        assert list(response.documents) == ALL_DOCS
        hedges = registry.get("airphant_router_hedges_total").total
        n1_groups = sum(
            1
            for candidates, _ in router.plan("logs", NUM_SHARDS).groups
            if candidates and candidates[0] == "http://n1"
        )
        if n1_groups:
            assert hedges >= 1

    def test_fast_primary_skips_hedge(self, cluster):
        registry = MetricsRegistry()
        with make_router(cluster, node_hedge_ms=5_000.0, metrics=registry) as router:
            router.route(SearchRequest(query="doc", index="logs"))
        assert registry.get("airphant_router_hedges_total").total == 0


class TestRouterMetrics:
    def test_ok_and_partial_outcomes(self, cluster):
        registry = MetricsRegistry()
        with make_router(cluster, replication_factor=1, metrics=registry) as router:
            router.route(SearchRequest(query="doc", index="logs"))
            cluster.down.add("http://n1")
            router.route(SearchRequest(query="doc", index="logs"))
        requests = registry.get("airphant_router_requests_total")
        assert requests.value(outcome="ok") == 1
        assert requests.value(outcome="partial") == 1
        assert registry.get("airphant_router_seconds").count() == 2
        assert registry.get("airphant_router_shard_errors_total").total >= 1
        node_requests = registry.get("airphant_router_node_requests_total")
        assert node_requests.value(node="http://n1", outcome="failure") >= 1

    def test_failover_counter(self, cluster):
        registry = MetricsRegistry()
        cluster.down.add("http://n2")
        with make_router(cluster, metrics=registry) as router:
            router.route(SearchRequest(query="doc", index="logs"))
        n2_groups = sum(
            1
            for candidates, _ in router.plan("logs", NUM_SHARDS).groups
            if "http://n2" in candidates
        )
        if n2_groups:
            assert registry.get("airphant_router_failovers_total").total >= 1

    def test_injected_health_tracker_is_not_owned(self, cluster):
        health = HealthTracker(PEERS, probe_interval_s=0, probe=lambda url, t: None)
        router = QueryRouter(
            PEERS, transport=cluster.transport, health=health, probe_interval_s=0
        )
        router.close()
        # Closing the router must not have closed the borrowed tracker.
        health.record_failure("http://n1", "still usable")
        assert not health.is_live("http://n1")


class TestDescribe:
    def test_describe_shape(self, cluster):
        with make_router(cluster) as router:
            router.route(SearchRequest(query="doc", index="logs"))
            description = router.describe()
        assert set(description) == {"topology", "health", "router"}
        assert description["topology"]["assignments"]["logs"]
        assert description["health"]["peers"] == 3
        assert description["router"]["node_retries"] == 1

    def test_summary_is_the_healthz_cluster_block(self, cluster):
        with make_router(cluster) as router:
            summary = router.summary()
        assert summary["enabled"] is True
        assert summary["peers"] == 3
        assert summary["live"] == 3
