"""Multi-process cluster test: real ``airphant serve`` node processes.

Builds a sharded index into a directory bucket, starts searcher nodes as
separate ``python -m repro serve`` processes, then starts a router node
(``--peers``) as a third process — the exact deployment the CLI documents.
Queries go through the router process over real sockets and must match the
in-process single-node answer.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.service.api import SearchRequest
from repro.service.facade import AirphantService
from repro.storage.local import LocalObjectStore
from repro.workloads.logs import generate_log_corpus

REPO_ROOT = Path(__file__).resolve().parents[2]
NUM_SHARDS = 4


def free_ports(count: int) -> list[int]:
    sockets, ports = [], []
    for _ in range(count):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sockets.append(sock)
        ports.append(sock.getsockname()[1])
    for sock in sockets:
        sock.close()
    return ports


def wait_ready(url: str, deadline_s: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(f"{url}/healthz", timeout=2.0):
                return
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    raise TimeoutError(f"{url} did not become ready")


def serve(bucket: str, port: int, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--bucket",
            bucket,
            "--port",
            str(port),
            *extra,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def post_search(url: str, payload: dict, timeout_s: float = 30.0) -> dict:
    request = urllib.request.Request(
        f"{url}/search",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout_s) as response:
        return json.loads(response.read())


@pytest.fixture(scope="module")
def bucket(tmp_path_factory):
    bucket = str(tmp_path_factory.mktemp("cluster-bucket"))
    store = LocalObjectStore(bucket)
    corpus = generate_log_corpus(store, "hdfs", num_documents=240, seed=3)
    service = AirphantService(store)
    service.build_index("logs", list(corpus.blob_names), num_shards=NUM_SHARDS)
    service.close()
    return bucket


def test_router_process_over_node_processes(bucket):
    node_port_a, node_port_b, router_port = free_ports(3)
    node_urls = [f"http://127.0.0.1:{node_port_a}", f"http://127.0.0.1:{node_port_b}"]
    processes = [
        serve(bucket, node_port_a),
        serve(bucket, node_port_b),
    ]
    router_url = f"http://127.0.0.1:{router_port}"
    processes.append(
        serve(
            bucket,
            router_port,
            "--peers",
            ",".join(node_urls),
            "--shard-timeout-s",
            "30",
            "--probe-interval-s",
            "0",
        )
    )
    try:
        for url in [*node_urls, router_url]:
            wait_ready(url)
        # Warm the nodes so the routed query below measures routing.
        for url in node_urls:
            post_search(url, {"query": "warmup", "index": "logs"})

        routed = post_search(router_url, {"query": "INFO dfs.DataNode", "index": "logs"})
        local_service = AirphantService(LocalObjectStore(bucket))
        local = local_service.search(
            SearchRequest(query="INFO dfs.DataNode", index="logs")
        ).to_dict()
        local_service.close()
        routed.pop("latency")
        local.pop("latency")
        assert routed == local
        assert routed["num_results"] > 0

        # The router process exposes the cluster view over HTTP.
        with urllib.request.urlopen(f"{router_url}/cluster", timeout=10.0) as response:
            cluster_view = json.loads(response.read())
        assert sorted(cluster_view["topology"]["peers"]) == sorted(node_urls)
        assert cluster_view["health"]["peers"] == 2

        # Killing one node process must not lose results: RF=2 over two
        # nodes means the survivor holds every shard.
        processes[0].terminate()
        processes[0].wait(timeout=10)
        degraded = post_search(
            router_url, {"query": "INFO dfs.DataNode", "index": "logs"}
        )
        assert degraded["num_results"] == routed["num_results"]
        assert "partial" not in degraded
    finally:
        for process in processes:
            process.terminate()
        for process in processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
