"""Unit tests for the benchmark harness."""

import pytest

from repro.bench.breakdown import per_query_breakdown, summarize_breakdown
from repro.bench.harness import (
    EngineRun,
    LatencyStats,
    build_standard_engines,
    run_comparison,
    run_workload,
)
from repro.bench.tables import format_series, format_table
from repro.core.config import SketchConfig
from repro.workloads.queries import QueryWorkload


class TestLatencyStats:
    def test_from_latencies(self):
        stats = LatencyStats.from_latencies([10.0, 20.0, 30.0, 40.0])
        assert stats.mean_ms == pytest.approx(25.0)
        assert stats.count == 4
        assert stats.max_ms == 40.0
        assert stats.p50_ms == pytest.approx(25.0)

    def test_p99_close_to_max(self):
        stats = LatencyStats.from_latencies(list(range(100)))
        assert stats.p99_ms >= 95

    def test_empty(self):
        stats = LatencyStats.from_latencies([])
        assert stats.count == 0
        assert stats.mean_ms == 0.0


class TestBuildAndRun:
    @pytest.fixture
    def engines(self, sim_store, small_documents):
        config = SketchConfig(num_bins=64, seed=1)
        return build_standard_engines(
            sim_store,
            small_documents,
            config=config,
            engine_names=["SQLite", "Airphant"],
            corpus_name="small",
        )

    def test_selected_engines_built(self, engines):
        assert sorted(engines) == ["Airphant", "SQLite"]

    def test_unknown_engine_rejected(self, sim_store, small_documents):
        with pytest.raises(ValueError):
            build_standard_engines(sim_store, small_documents, engine_names=["Solr"])

    def test_run_workload_collects_per_query_results(self, engines):
        workload = QueryWorkload(queries=("error", "info", "timeout"), top_k=10)
        run = run_workload(engines["Airphant"], workload)
        assert len(run.results) == 3
        assert run.init_latency_ms > 0
        assert run.stats.count == 3
        assert all(latency > 0 for latency in run.latencies_ms)

    def test_run_comparison_runs_every_engine(self, engines):
        workload = QueryWorkload(queries=("error",), top_k=10)
        runs = run_comparison(engines, workload)
        assert sorted(runs) == ["Airphant", "SQLite"]
        for run in runs.values():
            assert len(run.results) == 1

    def test_engine_overrides_forwarded(self, sim_store, small_documents):
        engines = build_standard_engines(
            sim_store,
            small_documents,
            engine_names=["Lucene"],
            corpus_name="ovr",
            engine_overrides={"Lucene": {"cache_bytes": 0}},
        )
        assert engines["Lucene"] is not None

    def test_lookup_stats_exposed(self, engines):
        workload = QueryWorkload(queries=("error", "disk"), top_k=10)
        run = run_workload(engines["SQLite"], workload)
        assert run.lookup_stats.count == 2
        assert run.lookup_stats.mean_ms > 0

    def test_mean_false_positives_zero_for_exact_engine(self, engines):
        workload = QueryWorkload(queries=("error",), top_k=None)
        run = run_workload(engines["SQLite"], workload)
        assert run.mean_false_positives == 0.0


class TestBreakdown:
    def test_summarize_breakdown(self, sim_store, small_documents):
        engines = build_standard_engines(
            sim_store, small_documents, engine_names=["Airphant"], corpus_name="bd"
        )
        workload = QueryWorkload(queries=("error", "info"), top_k=10)
        run = run_workload(engines["Airphant"], workload)
        summary = summarize_breakdown(run)
        assert summary.engine_name == "Airphant"
        assert summary.mean_wait_ms > 0
        assert summary.mean_total_ms == pytest.approx(
            summary.mean_wait_ms + summary.mean_download_ms
        )

    def test_per_query_breakdown_length(self, sim_store, small_documents):
        engines = build_standard_engines(
            sim_store, small_documents, engine_names=["Airphant"], corpus_name="bd2"
        )
        workload = QueryWorkload(queries=("error", "info", "warn"), top_k=10)
        run = run_workload(engines["Airphant"], workload)
        assert len(per_query_breakdown(run)) == 3

    def test_empty_run_summary(self):
        summary = summarize_breakdown(EngineRun(engine_name="X", init_latency_ms=0.0))
        assert summary.mean_wait_ms == 0.0


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["engine", "ms"], [["Airphant", 12.5], ["Lucene", 900.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("engine")
        assert "Airphant" in lines[2]

    def test_format_series(self):
        text = format_series("B=1000", [1, 2], [0.5, 0.25])
        assert text.startswith("B=1000:")
        assert "(1, 0.5)" in text

    def test_format_table_handles_large_and_small_floats(self):
        text = format_table(["v"], [[123456.789], [0.00012], [0.0]])
        assert "123,457" in text
        assert "0.00012" in text
