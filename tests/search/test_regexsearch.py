"""Unit tests for index-accelerated regular-expression search."""

import pytest

from repro.search.regexsearch import RegexSearcher, extract_required_terms
from repro.search.searcher import AirphantSearcher


class TestLiteralExtraction:
    def test_plain_word(self):
        assert extract_required_terms("error") == ["error"]

    def test_two_words_split_on_whitespace_class(self):
        assert extract_required_terms(r"error\s+timeout") == ["error", "timeout"]

    def test_two_words_split_on_literal_space(self):
        assert extract_required_terms("error .* timeout") == ["error", "timeout"]

    def test_word_glued_to_wildcard_is_not_required(self):
        # In "error.*timeout" neither literal is guaranteed to be a standalone
        # whitespace-delimited word, so a word-level index cannot use them.
        assert extract_required_terms("error.*timeout") == []

    def test_optional_suffix_invalidates_the_word(self):
        # "errors?" matches the word "errors" too, so "error" is not a
        # required whole word.
        assert extract_required_terms("errors?") == []

    def test_character_class_suffix_invalidates_the_word(self):
        assert extract_required_terms(r"blk_[0-9]+") == []

    def test_alternation_disables_extraction(self):
        assert extract_required_terms("error|warn") == []

    def test_min_length_filter(self):
        assert extract_required_terms("ab xyz", min_length=3) == ["xyz"]

    def test_anchors_are_boundaries(self):
        assert extract_required_terms("^error$") == ["error"]


class TestRegexSearcher:
    @pytest.fixture
    def searcher(self, sim_store, built_small_index) -> RegexSearcher:
        base = AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)
        return RegexSearcher(base)

    def test_matches_regex_within_candidates(self, searcher):
        result = searcher.search(r"error .*node[0-9]")
        assert {document.text for document in result.documents} == {
            "error disk full on node1",
            "error timeout connecting to node2",
            "error disk failure on node3",
            "warn retry after error on node3",
        }

    def test_literal_word_behaves_like_keyword_search(self, searcher):
        result = searcher.search("heartbeat")
        assert [document.text for document in result.documents] == ["info heartbeat ok node2"]

    def test_regex_filters_out_non_matching_candidates(self, searcher):
        # All documents containing "error" are candidates, but only those with
        # "timeout" right after match the pattern.
        result = searcher.search(r"error timeout")
        for document in result.documents:
            assert "error timeout" in document.text

    def test_top_k_limits_results(self, searcher):
        result = searcher.search("error", top_k=2)
        assert len(result.documents) == 2

    def test_pattern_without_literals_rejected(self, searcher):
        with pytest.raises(ValueError):
            searcher.search(r"[0-9]+|[a-z]+")

    def test_no_matches(self, searcher):
        assert searcher.search(r"error .*neverthere").documents == []
