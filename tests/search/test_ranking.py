"""Unit tests for BM25 top-k ranked retrieval (``mode="topk_bm25"``)."""

from __future__ import annotations

import pytest

from repro.index.builder import AirphantBuilder
from repro.index.stats import RankingUnsupportedError, stats_blob_name
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.search.ranking import BM25Params, MAX_RANKED_K
from repro.search.searcher import AirphantSearcher
from repro.search.sharded import ShardedSearcher


@pytest.fixture
def ranked_searcher(sim_store, built_small_index) -> AirphantSearcher:
    searcher = AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)
    yield searcher
    searcher.close()


class TestSearchTopk:
    def test_scores_are_normalized_and_descending(self, ranked_searcher):
        result = ranked_searcher.search_topk("error", k=10)
        assert result.num_results > 0
        assert result.scores is not None
        assert len(result.scores) == result.num_results
        assert all(0.0 <= score <= 1.0 for score in result.scores)
        assert result.scores == sorted(result.scores, reverse=True)

    def test_conjunctive_semantics(self, ranked_searcher):
        # "error timeout" matches exactly the two documents containing both.
        result = ranked_searcher.search_topk("error timeout", k=10)
        texts = {document.text for document in result.documents}
        assert texts == {
            "error timeout connecting to node2",
            "error timeout reading block beta",
        }

    def test_topk_is_subset_of_membership(self, ranked_searcher):
        ranked = ranked_searcher.search_topk("error", k=3)
        membership = ranked_searcher.search("error")
        assert {d.ref for d in ranked.documents} <= {d.ref for d in membership.documents}

    def test_k_truncates(self, ranked_searcher):
        assert ranked_searcher.search_topk("error", k=2).num_results == 2

    def test_k_is_bounded(self, ranked_searcher):
        with pytest.raises(ValueError):
            ranked_searcher.search_topk("error", k=0)
        # An absurd k is clamped, not an error.
        result = ranked_searcher.search_topk("error", k=MAX_RANKED_K + 1)
        assert result.num_results <= MAX_RANKED_K

    def test_empty_query_is_empty(self, ranked_searcher):
        result = ranked_searcher.search_topk("   ", k=5)
        assert result.num_results == 0
        assert result.scores == []

    def test_unknown_word_is_empty(self, ranked_searcher):
        assert ranked_searcher.search_topk("zzzzmissing", k=5).num_results == 0

    def test_weights_boost_a_term(self, sim_store):
        lines = ["alpha alpha beta", "beta beta alpha"]
        sim_store.put("corpus/w.txt", "\n".join(lines).encode())
        docs = list(LineDelimitedCorpusParser().parse(sim_store, ["corpus/w.txt"]))
        AirphantBuilder(sim_store).build_from_documents(docs, index_name="w")
        searcher = AirphantSearcher.open(sim_store, index_name="w")
        favor_alpha = searcher.search_topk("alpha beta", k=2, weights={"alpha": 5.0})
        favor_beta = searcher.search_topk("alpha beta", k=2, weights={"beta": 5.0})
        assert favor_alpha.documents[0].text == "alpha alpha beta"
        assert favor_beta.documents[0].text == "beta beta alpha"

    def test_bm25_params_validation(self):
        with pytest.raises(ValueError):
            BM25Params(k1=-1.0)
        with pytest.raises(ValueError):
            BM25Params(b=1.5)

    def test_ranked_query_fetches_fewer_bytes_than_membership(self, ranked_searcher):
        # The exact stats filter false positives without text fetches, and
        # only the k winners are retrieved.
        ranked = ranked_searcher.search_topk("error", k=1)
        membership = ranked_searcher.search("error")
        assert ranked.latency.bytes_fetched < membership.latency.bytes_fetched


class TestRankingUnsupported:
    def test_missing_stats_blob_raises_typed_error(self, sim_store, built_small_index):
        sim_store.delete(stats_blob_name(built_small_index.index_name))
        searcher = AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)
        with pytest.raises(RankingUnsupportedError) as excinfo:
            searcher.search_topk("error", k=3)
        assert excinfo.value.index_name == built_small_index.index_name
        # Membership queries keep working on the same index.
        assert searcher.search("error").num_results > 0

    def test_missing_shard_stats_raises_typed_error(
        self, sim_store, small_documents, small_config
    ):
        built = AirphantBuilder(sim_store, config=small_config, num_shards=2).build_from_documents(
            small_documents, index_name="sh-missing"
        )
        sim_store.delete(stats_blob_name(built.shards[0].index_name))
        searcher = ShardedSearcher.open(sim_store, index_name="sh-missing")
        with pytest.raises(RankingUnsupportedError):
            searcher.search_topk("error", k=3)


class TestShardedRanking:
    def test_sharded_matches_single_shard(self, sim_store, small_documents, small_config):
        AirphantBuilder(sim_store, config=small_config).build_from_documents(
            small_documents, index_name="flat"
        )
        AirphantBuilder(sim_store, config=small_config, num_shards=3).build_from_documents(
            small_documents, index_name="split"
        )
        flat = AirphantSearcher.open(sim_store, index_name="flat")
        split = ShardedSearcher.open(sim_store, index_name="split")
        for query in ("error", "error timeout", "info node1", "warn"):
            a = flat.search_topk(query, k=5)
            b = split.search_topk(query, k=5)
            assert [d.ref for d in a.documents] == [d.ref for d in b.documents], query
            assert a.scores == b.scores, query

    def test_restricted_views_merge_to_full_ranking(
        self, sim_store, small_documents, small_config
    ):
        AirphantBuilder(sim_store, config=small_config, num_shards=3).build_from_documents(
            small_documents, index_name="rv"
        )
        searcher = ShardedSearcher.open(sim_store, index_name="rv")
        full = searcher.search_topk("error", k=5)
        partial_hits = []
        for ordinals in ([0], [1, 2]):
            view = searcher.restrict(ordinals)
            result = view.search_topk("error", k=5)
            partial_hits.extend(zip(result.scores, (d.ref for d in result.documents)))
        partial_hits.sort(key=lambda hit: (-hit[0], hit[1]))
        merged = partial_hits[:5]
        assert [(s, r) for s, r in merged] == list(
            zip(full.scores, (d.ref for d in full.documents))
        )
