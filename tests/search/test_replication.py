"""Unit tests for the hedging (built-in replication) policy."""

import pytest

from repro.search.replication import HedgingPolicy


class TestHedgingPolicy:
    def test_disabled_by_default(self):
        assert not HedgingPolicy().enabled

    def test_enabled_when_dropping_requests(self):
        assert HedgingPolicy(drop_slowest=1).enabled

    def test_required_of_reduces_by_drop_count(self):
        policy = HedgingPolicy(drop_slowest=2)
        assert policy.required_of(5) == 3

    def test_required_of_never_below_one(self):
        policy = HedgingPolicy(drop_slowest=10)
        assert policy.required_of(3) == 1

    def test_required_of_zero_requests(self):
        assert HedgingPolicy(drop_slowest=1).required_of(0) == 0

    def test_negative_drop_rejected(self):
        with pytest.raises(ValueError):
            HedgingPolicy(drop_slowest=-1)
