"""Unit tests for the hedging policy and consistent-hash placement."""

import random

import pytest

from repro.search.replication import HashRing, HedgingPolicy, place_replicas


class TestHedgingPolicy:
    def test_disabled_by_default(self):
        assert not HedgingPolicy().enabled

    def test_enabled_when_dropping_requests(self):
        assert HedgingPolicy(drop_slowest=1).enabled

    def test_required_of_reduces_by_drop_count(self):
        policy = HedgingPolicy(drop_slowest=2)
        assert policy.required_of(5) == 3

    def test_required_of_never_below_one(self):
        policy = HedgingPolicy(drop_slowest=10)
        assert policy.required_of(3) == 1

    def test_required_of_zero_requests(self):
        assert HedgingPolicy(drop_slowest=1).required_of(0) == 0

    def test_negative_drop_rejected(self):
        with pytest.raises(ValueError):
            HedgingPolicy(drop_slowest=-1)


def _shard_keys(count: int = 256) -> list[str]:
    return [f"bench-index/shard-{ordinal:04d}" for ordinal in range(count)]


class TestHashRing:
    def test_needs_at_least_one_node(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_rejects_non_positive_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_single_node_owns_everything(self):
        ring = HashRing(["solo"])
        assert all(ring.node_for(key) == "solo" for key in _shard_keys(32))

    def test_placement_is_deterministic_across_instances(self):
        # Two independently constructed rings (e.g. a router and a node in
        # different processes) must agree on every placement.
        first = HashRing(["a", "b", "c"])
        second = HashRing(["c", "a", "b"])  # membership order must not matter
        for key in _shard_keys(64):
            assert first.replicas_for(key, 2) == second.replicas_for(key, 2)

    def test_replicas_are_distinct_and_capped(self):
        ring = HashRing(["a", "b", "c"])
        for key in _shard_keys(64):
            replicas = ring.replicas_for(key, 3)
            assert len(replicas) == len(set(replicas)) == 3
        # More replicas than members: capped, never padded or duplicated.
        assert len(ring.replicas_for("x", 9)) == 3

    def test_replica_zero_is_the_owner(self):
        ring = HashRing(["a", "b", "c", "d"])
        for key in _shard_keys(64):
            assert ring.replicas_for(key, 3)[0] == ring.node_for(key)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(["a"]).replicas_for("key", 0)

    def test_balance_within_small_factor(self):
        ring = HashRing([f"node-{i}" for i in range(8)])
        counts: dict[str, int] = {}
        for key in _shard_keys(4096):
            counts[ring.node_for(key)] = counts.get(ring.node_for(key), 0) + 1
        assert set(counts) == set(ring.nodes)  # every node owns something
        expected = 4096 / 8
        for owned in counts.values():
            assert expected / 3 <= owned <= expected * 3

    def test_join_moves_only_a_bounded_fraction(self):
        keys = _shard_keys(2048)
        ring = HashRing([f"node-{i}" for i in range(7)])
        before = {key: ring.node_for(key) for key in keys}
        grown = ring.with_node("node-7")
        moved = sum(1 for key in keys if grown.node_for(key) != before[key])
        # Expected movement is 1/8 of the keys; allow generous slack but far
        # below the ~7/8 a naive mod-N rehash would move.
        assert moved <= len(keys) * 0.30
        # Every moved key moved TO the joining node, never between survivors.
        for key in keys:
            if grown.node_for(key) != before[key]:
                assert grown.node_for(key) == "node-7"

    def test_leave_moves_only_the_leavers_keys(self):
        keys = _shard_keys(2048)
        ring = HashRing([f"node-{i}" for i in range(8)])
        before = {key: ring.node_for(key) for key in keys}
        shrunk = ring.without_node("node-3")
        for key in keys:
            if before[key] != "node-3":
                assert shrunk.node_for(key) == before[key]

    def test_cannot_remove_last_node(self):
        with pytest.raises(ValueError):
            HashRing(["only"]).without_node("only")

    def test_randomized_membership_churn_invariants(self):
        """Replica-set invariants hold through a random join/leave history."""
        rng = random.Random(11)
        keys = _shard_keys(512)
        members = [f"node-{i}" for i in range(4)]
        ring = HashRing(members)
        next_id = 4
        for _ in range(24):
            if len(ring) > 2 and rng.random() < 0.5:
                ring = ring.without_node(rng.choice(ring.nodes))
            else:
                ring = ring.with_node(f"node-{next_id}")
                next_id += 1
            placement = place_replicas(keys, ring, replication_factor=2)
            for key, replicas in placement.items():
                assert 1 <= len(replicas) <= 2
                assert len(replicas) == min(2, len(ring))
                assert len(set(replicas)) == len(replicas)
                assert all(node in ring for node in replicas)
                assert replicas == ring.replicas_for(key, 2)  # deterministic

    def test_churn_key_movement_stays_bounded_per_step(self):
        rng = random.Random(29)
        keys = _shard_keys(1024)
        ring = HashRing([f"node-{i}" for i in range(6)])
        next_id = 6
        for _ in range(16):
            before = {key: ring.node_for(key) for key in keys}
            if len(ring) > 3 and rng.random() < 0.5:
                ring = ring.without_node(rng.choice(ring.nodes))
            else:
                ring = ring.with_node(f"node-{next_id}")
                next_id += 1
            moved = sum(1 for key in keys if ring.node_for(key) != before[key])
            # One membership change reassigns about 1/n of the keys; assert
            # it stays well under half (a full reshuffle would move ~all).
            assert moved <= len(keys) * 0.5
