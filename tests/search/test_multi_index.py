"""Tests for multi-index search and the per-word query cache."""

import pytest

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.search.multi import MultiIndexSearcher
from repro.search.searcher import AirphantSearcher


@pytest.fixture
def two_indexes(sim_store):
    """Two corpora in the same bucket, each with its own index."""
    sim_store.put("corpus/part1.txt", b"error disk alpha\ninfo start alpha\nerror net beta")
    sim_store.put("corpus/part2.txt", b"error cpu gamma\nwarn disk gamma\ninfo stop delta")
    parser = LineDelimitedCorpusParser()
    config = SketchConfig(num_bins=64, seed=2)
    builder = AirphantBuilder(sim_store, config=config)
    builder.build_from_documents(
        list(parser.parse(sim_store, ["corpus/part1.txt"])), index_name="part1-index"
    )
    builder.build_from_documents(
        list(parser.parse(sim_store, ["corpus/part2.txt"])), index_name="part2-index"
    )
    return ["part1-index", "part2-index"]


class TestMultiIndexSearcher:
    def test_requires_at_least_one_index(self, sim_store):
        with pytest.raises(ValueError):
            MultiIndexSearcher(sim_store, [])

    def test_merges_results_across_indexes(self, sim_store, two_indexes):
        searcher = MultiIndexSearcher.open(sim_store, two_indexes)
        result = searcher.search("error")
        assert {doc.text for doc in result.documents} == {
            "error disk alpha",
            "error net beta",
            "error cpu gamma",
        }

    def test_word_unique_to_one_index_found(self, sim_store, two_indexes):
        searcher = MultiIndexSearcher.open(sim_store, two_indexes)
        assert [doc.text for doc in searcher.search("delta").documents] == ["info stop delta"]

    def test_deduplicates_documents(self, sim_store, two_indexes):
        # Index the same blob under two indexes: results must not repeat.
        parser = LineDelimitedCorpusParser()
        builder = AirphantBuilder(sim_store, config=SketchConfig(num_bins=64, seed=3))
        documents = list(parser.parse(sim_store, ["corpus/part1.txt"]))
        builder.build_from_documents(documents, index_name="dup-index")
        searcher = MultiIndexSearcher.open(sim_store, ["part1-index", "dup-index"])
        result = searcher.search("alpha")
        refs = [doc.ref for doc in result.documents]
        assert len(refs) == len(set(refs)) == 2

    def test_top_k_applies_after_merge(self, sim_store, two_indexes):
        searcher = MultiIndexSearcher.open(sim_store, two_indexes)
        assert len(searcher.search("error", top_k=2).documents) == 2

    def test_latency_charges_parallel_indexes(self, sim_store, two_indexes):
        searcher = MultiIndexSearcher.open(sim_store, two_indexes)
        result = searcher.search("error")
        per_index = [s.search("error") for s in searcher.searchers]
        assert result.latency.lookup_ms == pytest.approx(
            max(r.latency.lookup_ms for r in per_index), rel=0.5
        )

    def test_init_latency_is_max_of_indexes(self, sim_store, two_indexes):
        searcher = MultiIndexSearcher(sim_store, two_indexes)
        init = searcher.initialize()
        assert init > 0
        assert searcher.index_names == two_indexes

    def test_boolean_search_merges_across_indexes(self, sim_store, two_indexes):
        searcher = MultiIndexSearcher.open(sim_store, two_indexes)
        result = searcher.search_boolean("disk OR stop")
        assert {doc.text for doc in result.documents} == {
            "error disk alpha",
            "warn disk gamma",
            "info stop delta",
        }

    def test_lookup_postings_merges_and_deduplicates(self, sim_store, two_indexes):
        searcher = MultiIndexSearcher.open(sim_store, two_indexes)
        postings, latency = searcher.lookup_postings("error")
        assert len(postings) == len(set(postings)) >= 3
        assert latency.round_trips == 2  # one lookup batch per index


class TestQueryCache:
    def test_cache_hit_skips_storage_traffic(self, sim_store, built_small_index):
        searcher = AirphantSearcher.open(
            sim_store, index_name=built_small_index.index_name, query_cache_size=16
        )
        first = searcher.search("error")
        sim_store.metrics.reset()
        second = searcher.search("error")
        assert searcher.cache_hits == 1
        assert {d.text for d in second.documents} == {d.text for d in first.documents}
        # Only document retrieval hits storage on the cached query.
        assert second.latency.lookup_ms == 0.0

    def test_cache_disabled_by_default(self, sim_store, built_small_index):
        searcher = AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)
        searcher.search("error")
        searcher.search("error")
        assert searcher.cache_hits == 0

    def test_cache_eviction_respects_capacity(self, sim_store, built_small_index):
        searcher = AirphantSearcher.open(
            sim_store, index_name=built_small_index.index_name, query_cache_size=2
        )
        for word in ["error", "info", "warn", "debug"]:
            searcher.search(word)
        assert len(searcher._query_cache) <= 2

    def test_cached_results_stay_correct(self, sim_store, built_small_index, small_documents):
        searcher = AirphantSearcher.open(
            sim_store, index_name=built_small_index.index_name, query_cache_size=8
        )
        expected = {d.text for d in small_documents if "info" in d.text.split()}
        for _ in range(3):
            assert {d.text for d in searcher.search("info").documents} == expected
