"""Unit tests for search results and latency accounting."""

import pytest

from repro.parsing.documents import Document, DocumentRef
from repro.search.results import LatencyBreakdown, SearchResult


class TestLatencyBreakdown:
    def test_add_lookup_accumulates(self):
        latency = LatencyBreakdown()
        latency.add_lookup(50.0, 45.0, 5.0, 1024)
        latency.add_lookup(60.0, 55.0, 5.0, 2048)
        assert latency.lookup_ms == pytest.approx(110.0)
        assert latency.wait_ms == pytest.approx(100.0)
        assert latency.download_ms == pytest.approx(10.0)
        assert latency.bytes_fetched == 3072
        assert latency.round_trips == 2

    def test_add_retrieval_accumulates_separately(self):
        latency = LatencyBreakdown()
        latency.add_lookup(50.0, 50.0, 0.0, 10)
        latency.add_retrieval(70.0, 60.0, 10.0, 500)
        assert latency.lookup_ms == pytest.approx(50.0)
        assert latency.retrieval_ms == pytest.approx(70.0)
        assert latency.total_ms == pytest.approx(120.0)

    def test_zero_initialized(self):
        latency = LatencyBreakdown()
        assert latency.total_ms == 0.0
        assert latency.bytes_fetched == 0


class TestSearchResult:
    def _document(self, index: int) -> Document:
        return Document(DocumentRef("b", index * 10, 5), f"text {index}")

    def test_counts(self):
        result = SearchResult(
            query="q",
            documents=[self._document(1), self._document(2)],
            candidate_postings=[self._document(i).ref for i in range(4)],
            false_positive_count=2,
        )
        assert result.num_results == 2
        assert result.num_candidates == 4

    def test_postings_are_refs_of_matched_documents(self):
        documents = [self._document(3)]
        result = SearchResult(query="q", documents=documents)
        assert result.postings == [documents[0].ref]

    def test_latency_ms_property(self):
        latency = LatencyBreakdown()
        latency.add_lookup(10.0, 10.0, 0.0, 1)
        result = SearchResult(query="q", latency=latency)
        assert result.latency_ms == pytest.approx(10.0)

    def test_empty_result_defaults(self):
        result = SearchResult(query="q")
        assert result.documents == []
        assert result.num_candidates == 0
        assert result.latency_ms == 0.0


class TestSerialization:
    def test_latency_to_dict_includes_derived_total(self):
        latency = LatencyBreakdown()
        latency.add_lookup(40.0, 30.0, 10.0, 512)
        latency.add_retrieval(20.0, 15.0, 5.0, 256)
        payload = latency.to_dict()
        assert payload["lookup_ms"] == pytest.approx(40.0)
        assert payload["retrieval_ms"] == pytest.approx(20.0)
        assert payload["total_ms"] == pytest.approx(60.0)
        assert payload["bytes_fetched"] == 768
        assert payload["round_trips"] == 2

    def test_result_to_dict_round_trips_through_json(self):
        import json

        document = Document(DocumentRef("corpus/a.txt", 0, 9), "error one")
        result = SearchResult(
            query="error",
            documents=[document],
            candidate_postings=[document.ref, DocumentRef("corpus/a.txt", 10, 7)],
            false_positive_count=1,
        )
        payload = json.loads(result.to_json())
        assert payload["query"] == "error"
        assert payload["num_results"] == 1
        assert payload["num_candidates"] == 2
        assert payload["false_positive_count"] == 1
        assert payload["documents"][0] == {
            "blob": "corpus/a.txt",
            "offset": 0,
            "length": 9,
            "text": "error one",
        }

    def test_result_to_dict_can_omit_text(self):
        document = Document(DocumentRef("corpus/a.txt", 0, 9), "error one")
        result = SearchResult(query="error", documents=[document])
        payload = result.to_dict(include_text=False)
        assert "text" not in payload["documents"][0]
        assert payload["documents"][0]["blob"] == "corpus/a.txt"
