"""Unit tests for search results and latency accounting."""

import pytest

from repro.parsing.documents import Document, DocumentRef
from repro.search.results import LatencyBreakdown, SearchResult


class TestLatencyBreakdown:
    def test_add_lookup_accumulates(self):
        latency = LatencyBreakdown()
        latency.add_lookup(50.0, 45.0, 5.0, 1024)
        latency.add_lookup(60.0, 55.0, 5.0, 2048)
        assert latency.lookup_ms == pytest.approx(110.0)
        assert latency.wait_ms == pytest.approx(100.0)
        assert latency.download_ms == pytest.approx(10.0)
        assert latency.bytes_fetched == 3072
        assert latency.round_trips == 2

    def test_add_retrieval_accumulates_separately(self):
        latency = LatencyBreakdown()
        latency.add_lookup(50.0, 50.0, 0.0, 10)
        latency.add_retrieval(70.0, 60.0, 10.0, 500)
        assert latency.lookup_ms == pytest.approx(50.0)
        assert latency.retrieval_ms == pytest.approx(70.0)
        assert latency.total_ms == pytest.approx(120.0)

    def test_zero_initialized(self):
        latency = LatencyBreakdown()
        assert latency.total_ms == 0.0
        assert latency.bytes_fetched == 0


class TestSearchResult:
    def _document(self, index: int) -> Document:
        return Document(DocumentRef("b", index * 10, 5), f"text {index}")

    def test_counts(self):
        result = SearchResult(
            query="q",
            documents=[self._document(1), self._document(2)],
            candidate_postings=[self._document(i).ref for i in range(4)],
            false_positive_count=2,
        )
        assert result.num_results == 2
        assert result.num_candidates == 4

    def test_postings_are_refs_of_matched_documents(self):
        documents = [self._document(3)]
        result = SearchResult(query="q", documents=documents)
        assert result.postings == [documents[0].ref]

    def test_latency_ms_property(self):
        latency = LatencyBreakdown()
        latency.add_lookup(10.0, 10.0, 0.0, 1)
        result = SearchResult(query="q", latency=latency)
        assert result.latency_ms == pytest.approx(10.0)

    def test_empty_result_defaults(self):
        result = SearchResult(query="q")
        assert result.documents == []
        assert result.num_candidates == 0
        assert result.latency_ms == 0.0
