"""Relevance regression against a checked-in ``cranqrel``-format judgment file.

:func:`repro.workloads.cranfield.load_qrels` was written to accept the real
Cranfield collection's judgment file verbatim; this suite proves the full
wiring with an actual file in that exact format — whitespace triples with
the historical 1-is-best codes, stray ``-1`` entries, and a malformed line —
over a small aerodynamics collection whose documents are judged per query.
The asserted nDCG@10 floor is a regression tripwire for the BM25 ranking
path, and the delete test pins the ranking-under-deletes contract: removing
the top document re-ranks exactly like a rebuild that never contained it.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from harness.relevance import ndcg_at_k

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.parsing.documents import Posting
from repro.search.searcher import AirphantSearcher
from repro.service.api import SearchRequest
from repro.service.config import ServiceConfig
from repro.service.facade import AirphantService
from repro.storage.memory import InMemoryObjectStore
from repro.workloads.cranfield import load_qrels

DATA_DIR = Path(__file__).resolve().parent.parent / "data"

#: The judged queries, keyed by the qrel file's query ids.
QUERY_TEXTS = {
    1: "boundary layer transition",
    2: "supersonic wing flutter",
    3: "stagnation point heat transfer",
    4: "shock wave interaction",
    5: "panel buckling thermal stress",
}

NDCG_FLOOR = 0.70


@pytest.fixture(scope="module")
def collection():
    store = InMemoryObjectStore()
    store.put("corpus/cranfield_mini.txt", (DATA_DIR / "cranfield_mini.txt").read_bytes())
    service = AirphantService(store, ServiceConfig(ingest_interval_s=0))
    service.build_index(
        "cran", ["corpus/cranfield_mini.txt"], sketch_config=SketchConfig(num_bins=256)
    )
    documents = list(
        LineDelimitedCorpusParser().parse(store, ["corpus/cranfield_mini.txt"])
    )
    # Cranfield judgments use 1-based document ids (the line number).
    doc_ids = {
        document.ref: position + 1 for position, document in enumerate(documents)
    }
    qrels = load_qrels((DATA_DIR / "cranqrel_mini").read_text())
    yield store, service, doc_ids, qrels
    service.close()


def _ranked_ids(service, doc_ids, query: str, index: str = "cran") -> list[int]:
    result = service.search(
        SearchRequest(index=index, query=query, mode="topk_bm25", top_k=10)
    )
    return [
        doc_ids[Posting(blob=d.blob, offset=d.offset, length=d.length)]
        for d in result.documents
    ]


class TestQrelsWiring:
    def test_load_qrels_accepts_the_real_format(self, collection):
        _, _, _, qrels = collection
        assert set(qrels) == set(QUERY_TEXTS)
        # The -1 code means "complete answer" (same as 1 → gain 4).
        assert qrels[1][3] == 4
        # Code 1 → gain 4, code 4 → gain 1; the malformed line is skipped.
        assert qrels[1][1] == 4
        assert qrels[1][16] == 1
        assert 999 not in qrels[5]

    def test_every_judged_document_exists(self, collection):
        _, _, doc_ids, qrels = collection
        known = set(doc_ids.values())
        judged = {doc for judgments in qrels.values() for doc in judgments}
        assert judged <= known


class TestRankingQuality:
    def test_ndcg_at_10_meets_the_floor(self, collection):
        _, service, doc_ids, qrels = collection
        scores = {}
        for query_id, query in QUERY_TEXTS.items():
            ranked = _ranked_ids(service, doc_ids, query)
            scores[query_id] = ndcg_at_k(ranked, qrels[query_id], k=10)
        mean = sum(scores.values()) / len(scores)
        assert mean >= NDCG_FLOOR, f"mean nDCG@10 {mean:.3f} below floor: {scores}"
        # No single query may collapse entirely.
        assert min(scores.values()) >= 0.4, scores

    def test_top_result_is_highly_relevant(self, collection):
        _, service, doc_ids, qrels = collection
        for query_id, query in QUERY_TEXTS.items():
            ranked = _ranked_ids(service, doc_ids, query)
            assert ranked, f"no results for {query!r}"
            assert qrels[query_id].get(ranked[0], 0) > 0, (
                f"top hit {ranked[0]} for {query!r} is unjudged"
            )


class TestRankingUnderDeletes:
    def test_deleting_the_top_document_reranks_like_a_rebuild(self):
        store = InMemoryObjectStore()
        store.put(
            "corpus/cranfield_mini.txt", (DATA_DIR / "cranfield_mini.txt").read_bytes()
        )
        sketch = SketchConfig(num_bins=256)
        service = AirphantService(store, ServiceConfig(ingest_interval_s=0))
        service.build_index("cran", ["corpus/cranfield_mini.txt"], sketch_config=sketch)
        query = QUERY_TEXTS[1]

        before = service.search(
            SearchRequest(index="cran", query=query, mode="topk_bm25", top_k=10)
        )
        top = before.documents[0]
        top_ref = Posting(blob=top.blob, offset=top.offset, length=top.length)
        service.delete_documents("cran", [top_ref])

        after = service.search(
            SearchRequest(index="cran", query=query, mode="topk_bm25", top_k=10)
        )
        survivors = [
            document
            for document in LineDelimitedCorpusParser().parse(
                store, ["corpus/cranfield_mini.txt"]
            )
            if document.ref != top_ref
        ]
        AirphantBuilder(store, config=sketch).build_from_documents(
            survivors, index_name="reference"
        )
        reference = AirphantSearcher.open(store, index_name="reference")
        expected = reference.search_topk(query, k=10)

        got = [
            ((d.blob, d.offset, d.length), round(d.score, 9))
            for d in after.documents
        ]
        want = [
            ((d.blob, d.offset, d.length), round(score, 9))
            for d, score in zip(expected.documents, expected.scores or [])
        ]
        assert got == want
        assert top_ref not in {
            Posting(blob=d.blob, offset=d.offset, length=d.length)
            for d in after.documents
        }
        reference.close()
        service.close()
