"""Relevance regression: BM25 must beat the unranked membership baseline.

The battery generates the Cranfield-shaped corpus with synthetic graded
judgments (see :func:`repro.workloads.cranfield.generate_judged_queries`),
then scores two systems with the same metrics:

* **bm25** — ``search_topk`` (mode ``topk_bm25``), documents in score order;
* **membership** — the plain conjunctive search, documents in posting order
  (the only ordering an unranked engine can offer), truncated to k.

Because every query is conjunctive and every matching document carries a
judgment, both systems retrieve the same *set* — P@10 and MAP tie by
construction.  nDCG@10 is the discriminating metric: it rewards putting the
high-gain documents first, which only the ranked mode can do.  The floors
below are the CI quality gate; they are deterministic (fixed seed, pure
computation), so any regression is a real ranking change, not noise.
"""

from __future__ import annotations

import pytest

from harness.relevance import evaluate_rankings
from repro.index.builder import AirphantBuilder
from repro.search.searcher import AirphantSearcher
from repro.storage.memory import InMemoryObjectStore
from repro.workloads.cranfield import generate_cranfield, generate_judged_queries

SEED = 11
NUM_QUERIES = 20
K = 10

#: CI quality gate: absolute nDCG@10 floor for BM25, and the minimum margin
#: over the unranked baseline.  Measured 0.891 vs 0.795 at SEED=11.
NDCG_FLOOR = 0.85
NDCG_MARGIN = 0.05


@pytest.fixture(scope="module")
def judged_setup():
    store = InMemoryObjectStore()
    corpus = generate_cranfield(store, seed=SEED)
    queries = generate_judged_queries(corpus, num_queries=NUM_QUERIES, seed=SEED)
    AirphantBuilder(store).build_from_documents(corpus.documents, index_name="cran")
    searcher = AirphantSearcher.open(store, index_name="cran")
    line_numbers = {document.ref: line for line, document in enumerate(corpus.documents)}
    yield searcher, queries, line_numbers
    searcher.close()


@pytest.fixture(scope="module")
def metrics(judged_setup):
    searcher, queries, line_numbers = judged_setup
    bm25_rankings, baseline_rankings, judgment_maps = [], [], []
    for judged in queries:
        ranked = searcher.search_topk(judged.query, k=K)
        bm25_rankings.append([line_numbers[d.ref] for d in ranked.documents])
        membership = searcher.search(judged.query)
        baseline_rankings.append([line_numbers[d.ref] for d in membership.documents][:K])
        judgment_maps.append(judged.judgments)
    return (
        evaluate_rankings(bm25_rankings, judgment_maps, k=K),
        evaluate_rankings(baseline_rankings, judgment_maps, k=K),
    )


class TestRankingQuality:
    def test_bm25_clears_absolute_ndcg_floor(self, metrics):
        bm25, _ = metrics
        assert bm25[f"ndcg@{K}"] >= NDCG_FLOOR

    def test_bm25_beats_membership_baseline_by_margin(self, metrics):
        bm25, baseline = metrics
        assert bm25[f"ndcg@{K}"] >= baseline[f"ndcg@{K}"] + NDCG_MARGIN

    def test_retrieved_sets_tie_so_the_gap_is_pure_ordering(self, metrics):
        # Sanity check on the experiment design: conjunctive retrieval means
        # both systems return the same (fully relevant) set, so set-based
        # metrics tie and the nDCG gap measures ordering skill alone.
        bm25, baseline = metrics
        assert bm25[f"p@{K}"] == baseline[f"p@{K}"] == 1.0
        assert bm25["map"] == pytest.approx(baseline["map"])

    def test_ranked_mode_is_deterministic_across_runs(self, judged_setup):
        searcher, queries, line_numbers = judged_setup
        query = queries[0].query
        first = searcher.search_topk(query, k=K)
        second = searcher.search_topk(query, k=K)
        assert [d.ref for d in first.documents] == [d.ref for d in second.documents]
        assert first.scores == second.scores
