"""Equivalence and behaviour tests for the sharded searcher.

The acceptance bar for sharding: a sharded build (N >= 4) must answer
keyword, Boolean, and regex queries — directly, through the service facade,
and over ``POST /search`` — identically to a single-shard index built over
the same corpus.
"""

import json
import threading
import urllib.request

import pytest

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.search.regexsearch import RegexSearcher
from repro.search.sharded import ShardedSearcher
from repro.service import AirphantService, SearchRequest, ServiceConfig
from repro.service.http import create_server
from repro.workloads.logs import generate_log_corpus


@pytest.fixture
def corpus(sim_store):
    return generate_log_corpus(sim_store, "hdfs", num_documents=400, seed=13)


@pytest.fixture
def searchers(sim_store, corpus):
    config = SketchConfig(num_bins=512, target_false_positives=1.0, seed=7)
    AirphantBuilder(sim_store, config=config).build_from_documents(
        corpus.documents, index_name="single"
    )
    AirphantBuilder(sim_store, config=config, num_shards=4).build_from_documents(
        corpus.documents, index_name="sharded"
    )
    single = ShardedSearcher.open(sim_store, index_name="single")
    sharded = ShardedSearcher.open(sim_store, index_name="sharded")
    return single, sharded


def doc_keys(result):
    return {(d.blob, d.offset, d.length) for d in result.documents}


class TestShardedEquivalence:
    def test_opens_all_shards(self, searchers):
        single, sharded = searchers
        assert single.num_shards == 1
        assert sharded.num_shards == 4
        assert sharded.shard_manifest is not None
        assert sharded.is_initialized

    def test_merged_metadata_covers_whole_corpus(self, searchers, corpus):
        single, sharded = searchers
        assert sharded.metadata.num_documents == len(corpus.documents)
        assert sharded.metadata.num_documents == single.metadata.num_documents

    def test_keyword_queries_match_single_shard(self, searchers):
        single, sharded = searchers
        for query in ["ERROR", "block", "ERROR WRITE_BLOCK", "nonexistentzzz"]:
            assert doc_keys(sharded.search(query)) == doc_keys(single.search(query))

    def test_boolean_queries_match_single_shard(self, searchers):
        single, sharded = searchers
        for query in [
            "ERROR AND block",
            "WRITE_BLOCK OR READ_BLOCK",
            "ERROR AND (WRITE_BLOCK OR nonexistentzzz)",
        ]:
            assert doc_keys(sharded.search_boolean(query)) == doc_keys(
                single.search_boolean(query)
            )

    def test_regex_queries_match_single_shard(self, searchers):
        single, sharded = searchers
        pattern = r"ERROR\s+\S+"
        single_result = RegexSearcher(single).search(pattern)
        sharded_result = RegexSearcher(sharded).search(pattern)
        assert doc_keys(sharded_result) == doc_keys(single_result)

    def test_lookup_postings_match_single_shard(self, searchers):
        single, sharded = searchers
        postings_single, _ = single.lookup_postings("ERROR")
        postings_sharded, _ = sharded.lookup_postings("ERROR")
        assert set(postings_single) == set(postings_sharded)

    def test_query_is_still_two_round_trip_waves(self, searchers):
        _, sharded = searchers
        result = sharded.search_boolean("ERROR AND (block OR WRITE_BLOCK)")
        # One coalesced superpost batch across all 4 shards + one document batch.
        assert result.latency.round_trips == 2

    def test_top_k_limits_results(self, searchers):
        _, sharded = searchers
        result = sharded.search("ERROR", top_k=3)
        assert len(result.documents) == 3

    def test_no_false_positives_in_final_results(self, searchers):
        _, sharded = searchers
        for document in sharded.search("ERROR").documents:
            assert "ERROR" in document.text.split()

    def test_query_cache_works_across_shards(self, sim_store, corpus):
        config = SketchConfig(num_bins=512, seed=7)
        AirphantBuilder(sim_store, config=config, num_shards=4).build_from_documents(
            corpus.documents, index_name="cached"
        )
        searcher = ShardedSearcher.open(sim_store, index_name="cached", query_cache_size=8)
        first = searcher.search("ERROR")
        second = searcher.search("ERROR")
        assert doc_keys(first) == doc_keys(second)
        assert searcher.cache_hits == 1
        assert second.latency.lookup_ms == 0.0  # postings memoized, no superpost fetch

    def test_uninitialized_query_raises(self, sim_store, searchers):
        searcher = ShardedSearcher(sim_store, index_name="sharded")
        with pytest.raises(RuntimeError):
            searcher.search("ERROR")


class TestShardedThroughService:
    @pytest.fixture
    def service(self, sim_store, corpus):
        service = AirphantService(sim_store, ServiceConfig(coalesce_gap=128))
        config = SketchConfig(num_bins=512, seed=7)
        service.build_index("single", list(corpus.blob_names), sketch_config=config)
        service.build_index(
            "sharded", list(corpus.blob_names), sketch_config=config, num_shards=4
        )
        return service

    def test_index_info_exposes_shard_stats(self, service, corpus):
        info = service.index_info("sharded")
        assert info.num_shards == 4
        assert len(info.shards) == 4
        assert sum(shard.num_documents for shard in info.shards) == len(corpus.documents)
        assert service.index_info("single").num_shards == 1

    def test_catalog_hides_shard_sub_indexes(self, service):
        names = service.catalog.names()
        assert "sharded" in names
        assert not any("/shard-" in name for name in names)
        assert not service.catalog.contains("sharded/shard-0000")

    @pytest.mark.parametrize(
        ("mode", "query"),
        [
            ("keyword", "ERROR block"),
            ("boolean", "ERROR AND (WRITE_BLOCK OR READ_BLOCK)"),
            ("regex", r"ERROR\s+\S+block"),
        ],
    )
    def test_all_modes_match_single_shard(self, service, mode, query):
        single = service.search(SearchRequest(query=query, index="single", mode=mode))
        sharded = service.search(SearchRequest(query=query, index="sharded", mode=mode))
        assert {(d.blob, d.offset) for d in single.documents} == {
            (d.blob, d.offset) for d in sharded.documents
        }

    def test_post_search_works_unchanged_on_sharded_index(self, service):
        server = create_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            results = {}
            for index in ("single", "sharded"):
                body = json.dumps({"index": index, "query": "ERROR"}).encode()
                request = urllib.request.Request(f"{server.url}/search", data=body)
                with urllib.request.urlopen(request) as response:
                    payload = json.loads(response.read())
                results[index] = {
                    (d["blob"], d["offset"]) for d in payload["documents"]
                }
            assert results["single"] == results["sharded"]
        finally:
            server.shutdown()
            server.server_close()

    def test_service_close_releases_searchers(self, service):
        service.search(SearchRequest(query="ERROR", index="sharded"))
        assert service.catalog.is_open("sharded")
        service.close()
        assert not service.catalog.is_open("sharded")
        # Still usable afterwards: the index simply reopens.
        response = service.search(SearchRequest(query="ERROR", index="sharded"))
        assert response.num_results > 0


class TestShardRestriction:
    """restrict(): the node-side half of the cluster scatter-gather."""

    def test_disjoint_subsets_partition_the_results(self, searchers):
        _, sharded = searchers
        full = doc_keys(sharded.search("ERROR"))
        union = set()
        for ordinals in [(0, 2), (1, 3)]:
            subset = doc_keys(sharded.restrict(ordinals).search("ERROR"))
            assert union.isdisjoint(subset)
            union |= subset
        assert union == full

    def test_single_ordinal_views_cover_all_modes(self, searchers):
        single, sharded = searchers
        for query, run in [
            ("ERROR", lambda s: s.search("ERROR")),
            ("ERROR AND block", lambda s: s.search_boolean("ERROR AND block")),
        ]:
            expected = doc_keys(run(single))
            union = set()
            for ordinal in range(sharded.num_shards):
                union |= doc_keys(run(sharded.restrict([ordinal])))
            assert union == expected

    def test_full_subset_returns_self(self, searchers):
        _, sharded = searchers
        assert sharded.restrict(range(sharded.num_shards)) is sharded

    def test_view_shares_fetcher_but_not_query_cache(self, searchers):
        _, sharded = searchers
        view = sharded.restrict([1])
        assert view is not sharded
        assert view._fetcher is sharded._fetcher
        view.search("ERROR")
        view.search("ERROR")
        assert view.cache_hits == 0  # cache disabled on views

    def test_view_metadata_covers_only_the_subset(self, searchers):
        _, sharded = searchers
        view = sharded.restrict([0, 1])
        assert view.num_shards == 2
        assert 0 < view.metadata.num_documents < sharded.metadata.num_documents

    def test_empty_subset_raises(self, searchers):
        _, sharded = searchers
        with pytest.raises(ValueError):
            sharded.restrict([])

    def test_out_of_range_ordinal_raises(self, searchers):
        _, sharded = searchers
        with pytest.raises(ValueError):
            sharded.restrict([sharded.num_shards])

    def test_single_shard_index_only_accepts_ordinal_zero(self, searchers):
        single, _ = searchers
        assert single.restrict([0]) is single
        with pytest.raises(ValueError):
            single.restrict([1])

    def test_uninitialized_restrict_raises(self, sim_store, searchers):
        searcher = ShardedSearcher(sim_store, index_name="sharded")
        with pytest.raises(RuntimeError):
            searcher.restrict([0])


class TestShardedConcurrencyScaling:
    """The 16-shard regression fix: the fetcher widens with the shard count."""

    def test_initialize_scales_fetcher_concurrency(self, sim_store, corpus):
        from repro.search.sharded import MAX_SHARDED_CONCURRENCY

        config = SketchConfig(num_bins=512, target_false_positives=1.0, seed=7)
        AirphantBuilder(sim_store, config=config, num_shards=4).build_from_documents(
            corpus.documents, index_name="scaled"
        )
        searcher = ShardedSearcher(sim_store, index_name="scaled")
        base = searcher._fetcher.max_concurrency
        searcher.initialize()
        assert searcher._fetcher.max_concurrency == min(
            base * 4, MAX_SHARDED_CONCURRENCY
        )

    def test_single_shard_keeps_base_concurrency(self, sim_store, corpus):
        config = SketchConfig(num_bins=512, target_false_positives=1.0, seed=7)
        AirphantBuilder(sim_store, config=config).build_from_documents(
            corpus.documents, index_name="plain"
        )
        searcher = ShardedSearcher(sim_store, index_name="plain")
        base = searcher._fetcher.max_concurrency
        searcher.initialize()
        assert searcher._fetcher.max_concurrency == base
