"""Unit tests for the Boolean query tree and parser."""

import pytest

from repro.core.superpost import Superpost
from repro.parsing.documents import Posting
from repro.search.boolean import And, Or, Term, parse_boolean_query


def _posting(index: int) -> Posting:
    return Posting("b", index, 1)


def _lookup(word: str) -> Superpost:
    table = {
        "a": {_posting(1), _posting(2)},
        "b": {_posting(2), _posting(3)},
        "c": {_posting(4)},
    }
    return Superpost(set(table.get(word, set())))


class TestQueryTree:
    def test_term_candidates_and_terms(self):
        term = Term("a")
        assert term.terms() == {"a"}
        assert term.candidates(_lookup).postings == {_posting(1), _posting(2)}

    def test_term_matches(self):
        assert Term("a").matches({"a", "x"})
        assert not Term("a").matches({"b"})

    def test_and_intersects_candidates(self):
        query = And(Term("a"), Term("b"))
        assert query.candidates(_lookup).postings == {_posting(2)}

    def test_or_unions_candidates(self):
        query = Or(Term("a"), Term("c"))
        assert query.candidates(_lookup).postings == {_posting(1), _posting(2), _posting(4)}

    def test_nested_distribution(self):
        query = Or(And(Term("a"), Term("b")), Term("c"))
        assert query.candidates(_lookup).postings == {_posting(2), _posting(4)}

    def test_and_or_matches_predicate(self):
        query = And(Term("a"), Or(Term("b"), Term("c")))
        assert query.matches({"a", "c"})
        assert query.matches({"a", "b"})
        assert not query.matches({"a"})
        assert not query.matches({"b", "c"})

    def test_terms_collects_all_leaves(self):
        query = Or(And(Term("a"), Term("b")), Term("c"))
        assert query.terms() == {"a", "b", "c"}

    def test_empty_operators_rejected(self):
        with pytest.raises(ValueError):
            And()
        with pytest.raises(ValueError):
            Or()


class TestParser:
    def test_single_word(self):
        assert parse_boolean_query("hello") == Term("hello")

    def test_and_chain(self):
        query = parse_boolean_query("a AND b AND c")
        assert query == And(Term("a"), Term("b"), Term("c"))

    def test_bare_adjacency_means_and(self):
        assert parse_boolean_query("a b") == And(Term("a"), Term("b"))

    def test_or_has_lower_precedence_than_and(self):
        query = parse_boolean_query("a AND b OR c")
        assert query == Or(And(Term("a"), Term("b")), Term("c"))

    def test_parentheses_override_precedence(self):
        query = parse_boolean_query("a AND (b OR c)")
        assert query == And(Term("a"), Or(Term("b"), Term("c")))

    def test_operators_case_insensitive(self):
        assert parse_boolean_query("a and b or c") == Or(And(Term("a"), Term("b")), Term("c"))

    def test_nested_parentheses(self):
        query = parse_boolean_query("((a OR b) AND (c OR d))")
        assert query == And(Or(Term("a"), Term("b")), Or(Term("c"), Term("d")))

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            parse_boolean_query("   ")

    def test_unbalanced_parenthesis_rejected(self):
        with pytest.raises(ValueError):
            parse_boolean_query("(a OR b")
        with pytest.raises(ValueError):
            parse_boolean_query("a OR b)")

    def test_dangling_operator_rejected(self):
        with pytest.raises(ValueError):
            parse_boolean_query("a AND")
        with pytest.raises(ValueError):
            parse_boolean_query("OR a")
