"""Unit and integration tests for the Airphant Searcher."""

import pytest

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.parsing.tokenizer import WhitespaceAnalyzer
from repro.search.replication import HedgingPolicy
from repro.search.searcher import AirphantSearcher


@pytest.fixture
def searcher(sim_store, built_small_index) -> AirphantSearcher:
    return AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)


class TestInitialization:
    def test_open_initializes(self, searcher):
        assert searcher.is_initialized
        assert searcher.metadata is not None
        assert searcher.init_latency_ms > 0

    def test_query_before_initialize_raises(self, sim_store, built_small_index):
        uninitialized = AirphantSearcher(sim_store, index_name=built_small_index.index_name)
        with pytest.raises(RuntimeError):
            uninitialized.search("error")

    def test_initialize_downloads_header_once(self, sim_store, built_small_index):
        searcher = AirphantSearcher(sim_store, index_name=built_small_index.index_name)
        sim_store.metrics.reset()
        searcher.initialize()
        assert sim_store.metrics.round_trips == 1

    def test_mht_accessible_after_init(self, searcher, built_small_index):
        assert searcher.mht.num_layers == built_small_index.mht.num_layers


class TestSingleKeywordSearch:
    def test_finds_all_matching_documents(self, searcher):
        result = searcher.search("error")
        texts = {document.text for document in result.documents}
        assert texts == {
            "error disk full on node1",
            "error timeout connecting to node2",
            "warn retry after error on node3",
            "error disk failure on node3",
            "error timeout reading block beta",
        }

    def test_no_false_positives_in_final_results(self, searcher):
        result = searcher.search("node2")
        for document in result.documents:
            assert "node2" in document.text.split()

    def test_unknown_word_returns_nothing(self, searcher):
        result = searcher.search("nonexistentkeyword")
        assert result.documents == []

    def test_result_counts_candidates_and_false_positives(self, searcher):
        result = searcher.search("error")
        assert result.num_candidates >= result.num_results
        assert result.false_positive_count == result.num_candidates - result.num_results

    def test_empty_query_returns_empty_result(self, searcher):
        result = searcher.search("   ")
        assert result.documents == []
        assert result.latency_ms == 0.0

    def test_latency_includes_lookup_and_retrieval(self, searcher):
        result = searcher.search("error")
        assert result.latency.lookup_ms > 0
        assert result.latency.retrieval_ms > 0
        assert result.latency_ms == pytest.approx(
            result.latency.lookup_ms + result.latency.retrieval_ms
        )

    def test_lookup_is_a_single_round_trip(self, sim_store, built_small_index):
        searcher = AirphantSearcher.open(sim_store, index_name=built_small_index.index_name)
        sim_store.metrics.reset()
        searcher.lookup_postings("error")
        # One *batch* of concurrent superpost reads == one logical round-trip.
        assert sim_store.metrics.round_trips <= 1


class TestMultiKeywordSearch:
    def test_multi_word_query_is_conjunctive(self, searcher):
        result = searcher.search("error timeout")
        texts = {document.text for document in result.documents}
        assert texts == {
            "error timeout connecting to node2",
            "error timeout reading block beta",
        }

    def test_word_order_does_not_matter(self, searcher):
        first = {d.text for d in searcher.search("error timeout").documents}
        second = {d.text for d in searcher.search("timeout error").documents}
        assert first == second

    def test_conjunction_with_unknown_word_is_empty(self, searcher):
        assert searcher.search("error zzzznotaword").documents == []


class TestTopK:
    def test_top_k_limits_results(self, searcher):
        result = searcher.search("error", top_k=2)
        assert len(result.documents) == 2
        for document in result.documents:
            assert "error" in document.text.split()

    def test_top_k_larger_than_matches_returns_all(self, searcher):
        result = searcher.search("error", top_k=100)
        assert len(result.documents) == 5

    def test_top_k_fetches_no_more_than_candidates(self, searcher):
        result = searcher.search("error", top_k=1)
        assert result.num_candidates >= 1


class TestLookupPostings:
    def test_lookup_contains_all_true_postings(self, searcher, small_documents):
        postings, _ = searcher.lookup_postings("info")
        true_refs = {
            document.ref for document in small_documents if "info" in document.text.split()
        }
        assert true_refs <= set(postings)

    def test_lookup_latency_positive(self, searcher):
        _, latency = searcher.lookup_postings("error")
        assert latency.lookup_ms > 0
        assert latency.retrieval_ms == 0


class TestHedging:
    def test_hedged_searcher_still_returns_correct_results(self, sim_store, small_documents):
        config = SketchConfig(num_bins=64, num_layers=3, seed=5)
        builder = AirphantBuilder(sim_store, config=config)
        built = builder.build_from_documents(small_documents, index_name="hedged")
        searcher = AirphantSearcher.open(
            sim_store, index_name="hedged", hedging=HedgingPolicy(drop_slowest=1)
        )
        result = searcher.search("error")
        assert {d.text for d in result.documents} == {
            d.text for d in small_documents if "error" in d.text.split()
        }
        assert built.metadata.num_layers == 3


class TestBooleanSearch:
    def test_or_query(self, searcher):
        result = searcher.search_boolean("timeout OR heartbeat")
        texts = {document.text for document in result.documents}
        assert texts == {
            "error timeout connecting to node2",
            "error timeout reading block beta",
            "info heartbeat ok node2",
        }

    def test_and_query_matches_plain_search(self, searcher):
        boolean = {d.text for d in searcher.search_boolean("error AND disk").documents}
        plain = {d.text for d in searcher.search("error disk").documents}
        assert boolean == plain

    def test_nested_query(self, searcher):
        result = searcher.search_boolean("error AND (timeout OR disk)")
        texts = {document.text for document in result.documents}
        assert texts == {
            "error timeout connecting to node2",
            "error timeout reading block beta",
            "error disk full on node1",
            "error disk failure on node3",
        }

    def test_boolean_top_k(self, searcher):
        result = searcher.search_boolean("error OR info", top_k=3)
        assert len(result.documents) == 3

    def test_all_terms_fetched_in_one_lookup_wave(self, searcher):
        # Every referenced term's superposts go out as a single parallel
        # batch, so a Boolean query costs one lookup round trip plus one
        # retrieval round trip regardless of how many terms it names.
        result = searcher.search_boolean("error AND (timeout OR disk OR info)")
        assert result.latency.round_trips == 2

    def test_missing_term_in_or_does_not_block_others(self, searcher):
        result = searcher.search_boolean("zzznotaword OR heartbeat")
        assert {d.text for d in result.documents} == {"info heartbeat ok node2"}


class TestCommonWordPath:
    def test_common_word_answered_exactly(self, sim_store, small_documents):
        # Reserve enough common-word slots that "on" (document frequency 5)
        # is handled exactly.
        config = SketchConfig(num_bins=100, common_word_fraction=0.05, seed=3)
        builder = AirphantBuilder(sim_store, config=config)
        builder.build_from_documents(small_documents, index_name="common")
        searcher = AirphantSearcher.open(sim_store, index_name="common")
        assert searcher.mht.num_common_words == 5
        common_word = next(iter(searcher.mht.common_word_pointers))
        result = searcher.search(common_word)
        assert result.false_positive_count == 0
        for document in result.documents:
            assert common_word in document.text.split()


class TestTokenizerConsistency:
    def test_searcher_uses_same_analyzer_semantics_as_builder(self, searcher):
        # Whitespace analyzer: punctuation is part of the token, so "node1"
        # must not match "node10"-style prefixes.
        result = searcher.search("node1")
        for document in result.documents:
            assert "node1" in WhitespaceAnalyzer().tokenize(document.text)
