"""Unit tests for corpus-document parsers.

The critical invariant: every parsed document's (blob, offset, length) must
point at exactly the bytes of its text, because Airphant later fetches
documents directly by those byte ranges.
"""

import pytest

from repro.parsing.corpus import (
    LineDelimitedCorpusParser,
    WholeBlobCorpusParser,
    parse_corpus,
)
from repro.storage.memory import InMemoryObjectStore


@pytest.fixture
def store() -> InMemoryObjectStore:
    return InMemoryObjectStore()


class TestLineDelimitedParser:
    def test_one_document_per_line(self, store):
        store.put("c.txt", b"first line\nsecond line\nthird line")
        documents = parse_corpus(store, ["c.txt"])
        assert [doc.text for doc in documents] == ["first line", "second line", "third line"]

    def test_offsets_point_at_exact_bytes(self, store):
        data = b"alpha beta\ngamma\ndelta epsilon zeta"
        store.put("c.txt", data)
        documents = parse_corpus(store, ["c.txt"])
        for document in documents:
            fetched = store.get_range(document.blob, document.offset, document.length)
            assert fetched.decode("utf-8") == document.text

    def test_skips_empty_lines_by_default(self, store):
        store.put("c.txt", b"one\n\ntwo\n")
        documents = parse_corpus(store, ["c.txt"])
        assert [doc.text for doc in documents] == ["one", "two"]

    def test_keeps_empty_lines_when_requested(self, store):
        store.put("c.txt", b"one\n\ntwo")
        parser = LineDelimitedCorpusParser(skip_empty=False)
        documents = list(parser.parse(store, ["c.txt"]))
        assert [doc.text for doc in documents] == ["one", "", "two"]

    def test_trailing_newline_does_not_create_document(self, store):
        store.put("c.txt", b"only\n")
        assert len(parse_corpus(store, ["c.txt"])) == 1

    def test_multiple_blobs(self, store):
        store.put("a.txt", b"doc a1\ndoc a2")
        store.put("b.txt", b"doc b1")
        documents = parse_corpus(store, ["a.txt", "b.txt"])
        assert [doc.text for doc in documents] == ["doc a1", "doc a2", "doc b1"]
        assert {doc.blob for doc in documents} == {"a.txt", "b.txt"}

    def test_unicode_content_offsets_are_byte_based(self, store):
        data = "naïve résumé\nplain ascii".encode("utf-8")
        store.put("c.txt", data)
        documents = parse_corpus(store, ["c.txt"])
        assert documents[0].text == "naïve résumé"
        fetched = store.get_range(documents[1].blob, documents[1].offset, documents[1].length)
        assert fetched.decode("utf-8") == "plain ascii"

    def test_empty_blob_produces_no_documents(self, store):
        store.put("c.txt", b"")
        assert parse_corpus(store, ["c.txt"]) == []


class TestWholeBlobParser:
    def test_each_blob_is_one_document(self, store):
        store.put("a.txt", b"entire abstract text")
        store.put("b.txt", b"another abstract")
        parser = WholeBlobCorpusParser()
        documents = list(parser.parse(store, ["a.txt", "b.txt"]))
        assert len(documents) == 2
        assert documents[0].text == "entire abstract text"
        assert documents[0].offset == 0
        assert documents[0].length == len(b"entire abstract text")

    def test_range_read_recovers_whole_blob(self, store):
        store.put("a.txt", b"abc def")
        parser = WholeBlobCorpusParser()
        (document,) = parser.parse(store, ["a.txt"])
        assert store.read(document.ref.to_range_read()) == b"abc def"
