"""Unit tests for document-word parsers (analyzers)."""

import pytest

from repro.parsing.tokenizer import SimpleAnalyzer, WhitespaceAnalyzer


class TestWhitespaceAnalyzer:
    def test_splits_on_whitespace_only(self):
        analyzer = WhitespaceAnalyzer()
        assert analyzer.tokenize("hello world") == ["hello", "world"]

    def test_preserves_case_and_punctuation(self):
        analyzer = WhitespaceAnalyzer()
        assert analyzer.tokenize("Error: blk_42,") == ["Error:", "blk_42,"]

    def test_handles_tabs_and_multiple_spaces(self):
        analyzer = WhitespaceAnalyzer()
        assert analyzer.tokenize("a\tb   c\n d") == ["a", "b", "c", "d"]

    def test_empty_text(self):
        assert WhitespaceAnalyzer().tokenize("") == []

    def test_duplicates_preserved_in_tokenize(self):
        assert WhitespaceAnalyzer().tokenize("a b a") == ["a", "b", "a"]

    def test_distinct_terms_deduplicates(self):
        assert WhitespaceAnalyzer().distinct_terms("a b a") == {"a", "b"}


class TestSimpleAnalyzer:
    def test_lowercases_and_strips_punctuation(self):
        analyzer = SimpleAnalyzer()
        assert analyzer.tokenize("Hello, World!") == ["hello", "world"]

    def test_splits_on_non_alphanumeric(self):
        analyzer = SimpleAnalyzer()
        assert analyzer.tokenize("blk_42-failed") == ["blk", "42", "failed"]

    def test_min_length_filters_short_tokens(self):
        analyzer = SimpleAnalyzer(min_length=3)
        assert analyzer.tokenize("a an the word") == ["the", "word"]

    def test_min_length_must_be_positive(self):
        with pytest.raises(ValueError):
            SimpleAnalyzer(min_length=0)

    def test_numbers_are_tokens(self):
        assert SimpleAnalyzer().tokenize("42 packets") == ["42", "packets"]

    def test_empty_text(self):
        assert SimpleAnalyzer().tokenize("") == []
