"""Unit tests for document and posting types."""

import pytest

from repro.parsing.documents import Document, DocumentRef, Posting
from repro.storage.base import RangeRead


class TestDocumentRef:
    def test_posting_is_an_alias_of_document_ref(self):
        assert Posting is DocumentRef

    def test_to_range_read(self):
        ref = DocumentRef(blob="corpus/a.txt", offset=100, length=25)
        assert ref.to_range_read() == RangeRead(blob="corpus/a.txt", offset=100, length=25)

    def test_refs_are_hashable_and_comparable(self):
        a = DocumentRef("blob", 0, 10)
        b = DocumentRef("blob", 20, 10)
        assert a == DocumentRef("blob", 0, 10)
        assert a < b
        assert len({a, b, DocumentRef("blob", 0, 10)}) == 2

    def test_ordering_is_by_blob_then_offset(self):
        refs = [DocumentRef("b", 0, 1), DocumentRef("a", 50, 1), DocumentRef("a", 10, 1)]
        assert sorted(refs) == [
            DocumentRef("a", 10, 1),
            DocumentRef("a", 50, 1),
            DocumentRef("b", 0, 1),
        ]

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            DocumentRef("blob", -1, 10)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            DocumentRef("blob", 0, -10)


class TestDocument:
    def test_properties_delegate_to_ref(self):
        ref = DocumentRef("blob", 5, 11)
        document = Document(ref=ref, text="hello world")
        assert document.blob == "blob"
        assert document.offset == 5
        assert document.length == 11
        assert document.text == "hello world"
