"""Ablation: elastic (decoupled) vs peak-provisioned (coupled) compute fleets.

Complements the Figure 9 cost model with a time-domain simulation: the same
peak-trough demand trace is served by an autoscaling fleet of Airphant
Searcher nodes (possible because all index state lives on cloud storage) and
by a fixed fleet sized for the peak (what a coupled cluster must run).
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.bench.tables import format_table
from repro.cost.model import PeakTroughWorkload
from repro.deploy.simulator import AutoscalingPolicy, DeploymentSimulator
from repro.deploy.workload import WorkloadTrace

#: The paper's Figure 9 operating point: peak = one Elasticsearch server's
#: throughput, trough = peak / 20, peak for 20% of the time.
WORKLOAD = PeakTroughWorkload(peak_ops=154.08, trough_ops=154.08 / 20, peak_fraction=0.2)


def _run():
    trace = WorkloadTrace.from_peak_trough(
        WORKLOAD, num_intervals=288, interval_seconds=300, jitter=0.1, seed=73
    )
    simulator = DeploymentSimulator(node_throughput_ops=5.71, node_monthly_cost=13.23)
    return simulator.compare(trace, AutoscalingPolicy(headroom=0.1, cold_start_seconds=2.0))


def test_ablation_elastic_vs_fixed_fleet(benchmark):
    reports = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        [
            report.policy_name,
            report.peak_nodes,
            report.node_hours,
            report.monthly_compute_cost,
            report.unserved_fraction,
            report.late_fraction,
        ]
        for report in reports.values()
    ]
    table = format_table(
        ["policy", "peak nodes", "node hours", "monthly compute $", "unserved", "late"], rows
    )
    save_result("ablation_elasticity", table)

    coupled = reports["coupled (fixed fleet)"]
    decoupled = reports["decoupled (autoscaling)"]
    # Elasticity pays: far fewer node-hours for the same served workload.
    assert decoupled.node_hours < 0.6 * coupled.node_hours
    assert decoupled.unserved_fraction < 0.01
    # The price of elasticity is a small fraction of queries hitting cold starts.
    assert decoupled.late_fraction < 0.05
