"""Figure 14: term-index lookup latency, SQLite's B-tree vs Airphant.

Airphant and the SQLite baseline share the document-retrieval routine, so
their end-to-end difference comes from the term-index lookup.  The paper
shows Airphant's single-round-trip lookup beats SQLite's (cached) B-tree
traversal on every corpus, both on average and at the 99th percentile.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DEFAULT_BENCH_CONFIG, save_result
from repro.bench.harness import LatencyStats, build_standard_engines
from repro.bench.tables import format_table
from repro.workloads.queries import sample_query_words

DATASETS = ["diag", "zipf", "cranfield", "hdfs", "spark"]
QUERIES = 25


def _run_dataset(catalog, dataset: str):
    corpus = catalog.corpus(dataset)
    profile = catalog.profile(dataset)
    engines = build_standard_engines(
        catalog.store,
        corpus.documents,
        config=DEFAULT_BENCH_CONFIG,
        engine_names=["SQLite", "Airphant"],
        corpus_name=f"fig14/{dataset}",
    )
    for engine in engines.values():
        engine.initialize()
    words = sample_query_words(profile, QUERIES, seed=29)
    stats = {}
    for name, engine in engines.items():
        latencies = [engine.lookup_postings(word)[1].lookup_ms for word in words]
        stats[name] = LatencyStats.from_latencies(latencies)
    return stats


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig14_term_lookup_latency(benchmark, catalog, dataset):
    stats = benchmark.pedantic(_run_dataset, args=(catalog, dataset), rounds=1, iterations=1)

    rows = [
        [name, values.mean_ms, values.p99_ms] for name, values in stats.items()
    ]
    save_result(
        f"fig14_lookup_{dataset}", format_table(["engine", "mean ms", "p99 ms"], rows)
    )

    airphant = stats["Airphant"]
    sqlite = stats["SQLite"]
    # Airphant's single concurrent batch beats the B-tree's dependent reads on
    # average; the paper reports up to 2.79x — we only require a strict win.
    assert airphant.mean_ms < sqlite.mean_ms
    assert airphant.p99_ms < sqlite.p99_ms * 1.2
    benchmark.extra_info["speedup_vs_sqlite"] = sqlite.mean_ms / airphant.mean_ms
