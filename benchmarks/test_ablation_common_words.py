"""Ablation: exact common-word bins on vs off (Section IV-E).

Without the reserved exact bins, the postings lists of very frequent words
are merged into hashed bins, polluting every superpost they touch and
inflating false positives for *other* queries.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.baselines.airphant import AirphantEngine
from repro.bench.tables import format_table
from repro.core.config import SketchConfig
from repro.profiling.profiler import profile_documents
from repro.workloads.queries import sample_query_words

QUERIES = 40
NUM_BINS = 512


def _mean_false_positives(engine, words) -> float:
    results = [engine.search(word, top_k=None) for word in words]
    return sum(result.false_positive_count for result in results) / len(results)


def _run(catalog):
    corpus = catalog.corpus("windows")
    profile = catalog.profile("windows")
    # Query the non-common vocabulary: the point of common-word bins is to
    # protect *other* queries from the frequent words' huge postings lists.
    common = set(profile.most_common_words(int(NUM_BINS * 0.05)))
    words = [
        word
        for word in sample_query_words(profile, QUERIES * 3, seed=53)
        if word not in common
    ][:QUERIES]

    with_common = AirphantEngine(
        catalog.store,
        index_name="ablation/common-on",
        config=SketchConfig(num_bins=NUM_BINS, num_layers=2, common_word_fraction=0.05, seed=3),
    )
    with_common.build(corpus.documents)
    with_common.initialize()

    without_common = AirphantEngine(
        catalog.store,
        index_name="ablation/common-off",
        config=SketchConfig(num_bins=NUM_BINS, num_layers=2, common_word_fraction=0.0, seed=3),
    )
    without_common.build(corpus.documents)
    without_common.initialize()

    return _mean_false_positives(with_common, words), _mean_false_positives(
        without_common, words
    )


def test_ablation_common_word_bins(benchmark, catalog):
    fp_with, fp_without = benchmark.pedantic(_run, args=(catalog,), rounds=1, iterations=1)
    table = format_table(
        ["configuration", "false positives / query"],
        [["common-word bins on (5%)", fp_with], ["common-word bins off", fp_without]],
    )
    save_result("ablation_common_words", table)

    # Handling frequent words exactly must not hurt, and should measurably
    # reduce the false positives seen by ordinary queries.
    assert fp_with <= fp_without
    assert fp_without > 0
