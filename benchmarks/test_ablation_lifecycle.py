"""Ablation: query cost under tombstoned deletes, before and after purge.

The tombstone lifecycle trades write latency for read-side filtering: a
DELETE is one WAL record, and every query thereafter filters condemned
references until compaction rebuilds the base generation without them.
This benchmark quantifies that trade across delete ratios:

* ``filtered`` — queries answered while tombstones are pending (the
  combined view filters every tier);
* ``purged``   — the same queries after ``compact`` physically dropped the
  deleted documents and retired the tombstone records.

Recorded per ratio: query latencies (p50/p99) and simulated bytes/query in
both phases, pending-tombstone counts before and after the compaction, and
a correctness count (filtered and purged answers must be identical — purge
must never change visibility, only cost).  This doubles as the CI
**lifecycle soak**: under ``AIRPHANT_BENCH_SMOKE=1`` a short run exercises
delete → filtered reads → compact → purged reads at every ratio.

The machine-readable record lands in ``results/BENCH_lifecycle.json``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import save_json, save_result, smoke_mode
from repro.bench.tables import format_table
from repro.core.config import SketchConfig
from repro.observability import MetricsRegistry
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.service import AirphantService, SearchRequest, ServiceConfig
from repro.storage.memory import InMemoryObjectStore
from repro.workloads.logs import generate_log_corpus

INDEX = "ablation-lifecycle"

DELETE_RATIOS = [0.0, 0.1, 0.3]


def _settings():
    if smoke_mode():
        return {
            "documents": 300,
            "bins": 256,
            "queries_per_phase": 24,
        }
    return {
        "documents": 4_000,
        "bins": 2_048,
        "queries_per_phase": 150,
    }


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def _corpus_text(documents: int) -> bytes:
    seed_store = InMemoryObjectStore()
    corpus = generate_log_corpus(seed_store, "hdfs", num_documents=documents, seed=3)
    return seed_store.get(corpus.blob_names[0])


def _query_phase(service: AirphantService, settings: dict) -> dict:
    queries = ["ERROR", "INFO block", "WARN"]
    elapsed_ms: list[float] = []
    bytes_fetched: list[int] = []
    total_results = 0
    for position in range(settings["queries_per_phase"]):
        query = queries[position % len(queries)]
        started = time.perf_counter()
        result = service.execute(SearchRequest(query=query, index=INDEX))
        elapsed_ms.append((time.perf_counter() - started) * 1000.0)
        bytes_fetched.append(result.latency.bytes_fetched)
        total_results += len(result.documents)
    return {
        "query_p50_ms": round(_percentile(elapsed_ms, 50), 3),
        "query_p99_ms": round(_percentile(elapsed_ms, 99), 3),
        "bytes_per_query": round(sum(bytes_fetched) / len(bytes_fetched), 1),
        "total_results": total_results,
    }


def _run_ratio(corpus: bytes, ratio: float, settings: dict) -> dict:
    store = InMemoryObjectStore()
    store.put("corpus/base.txt", corpus)
    service = AirphantService(
        store, ServiceConfig(ingest_interval_s=0), metrics=MetricsRegistry()
    )
    service.build_index(
        INDEX, ["corpus/base.txt"], sketch_config=SketchConfig(num_bins=settings["bins"], seed=7)
    )

    documents = list(LineDelimitedCorpusParser().parse(store, ["corpus/base.txt"]))
    stride = int(round(1.0 / ratio)) if ratio else 0
    doomed = [document.ref for position, document in enumerate(documents) if stride and position % stride == 0]
    started = time.perf_counter()
    if doomed:
        service.delete_documents(INDEX, doomed)
    delete_ms = (time.perf_counter() - started) * 1000.0

    pending_before = len(service.ingest.tombstone_refs(INDEX))
    filtered = _query_phase(service, settings)

    compact_outcome = service.compact_index(INDEX)
    pending_after = len(service.ingest.tombstone_refs(INDEX))
    purged = _query_phase(service, settings)

    outcome = {
        "delete_ratio": ratio,
        "documents": len(documents),
        "deleted": len(doomed),
        "delete_batch_ms": round(delete_ms, 3),
        "tombstones_pending_before_compact": pending_before,
        "tombstones_pending_after_compact": pending_after,
        "tombstones_purged": compact_outcome.get("tombstones_purged", 0),
        "filtered": filtered,
        "purged": purged,
    }
    service.close()
    return outcome


def _run():
    settings = _settings()
    corpus = _corpus_text(settings["documents"])
    scenarios = {f"{ratio:.0%}": _run_ratio(corpus, ratio, settings) for ratio in DELETE_RATIOS}
    return settings, scenarios


def test_ablation_lifecycle(benchmark):
    settings, scenarios = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        [
            name,
            entry["deleted"],
            entry["filtered"]["query_p99_ms"],
            entry["purged"]["query_p99_ms"],
            entry["filtered"]["bytes_per_query"],
            entry["purged"]["bytes_per_query"],
            entry["tombstones_pending_before_compact"],
            entry["tombstones_pending_after_compact"],
        ]
        for name, entry in scenarios.items()
    ]
    save_result(
        "ablation_lifecycle",
        format_table(
            [
                "deleted",
                "docs gone",
                "filtered p99 ms",
                "purged p99 ms",
                "filtered B/q",
                "purged B/q",
                "tombs before",
                "tombs after",
            ],
            rows,
        ),
    )
    save_json(
        "BENCH_lifecycle",
        {
            "experiment": "lifecycle_delete_ratio_ablation",
            "clock": "wall",
            "settings": settings,
            "smoke_mode": smoke_mode(),
            "scenarios": scenarios,
        },
    )

    # Correctness first: purge must never change answers, only their cost —
    # filtered and purged phases return identical result counts.
    for name, entry in scenarios.items():
        assert entry["filtered"]["total_results"] == entry["purged"]["total_results"], name

    # The soak contract: every pending tombstone is gone after compaction,
    # the purge count matches the delete count, and deleting documents
    # strictly shrinks the answer set.
    for entry in scenarios.values():
        assert entry["tombstones_pending_before_compact"] == entry["deleted"]
        assert entry["tombstones_pending_after_compact"] == 0
        assert entry["tombstones_purged"] == entry["deleted"]
    baseline = scenarios["0%"]["filtered"]["total_results"]
    assert baseline > 0
    for name, entry in scenarios.items():
        if entry["deleted"]:
            assert entry["filtered"]["total_results"] < baseline, name
