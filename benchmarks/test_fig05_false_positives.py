"""Figure 5: average and expected false positives vs (B, L) on Cranfield.

The paper shows that (a) the analytical expectation F(L) closely tracks the
observed average number of false positives, and (b) for a fixed bin budget B
the error drops rapidly as L grows from 1 and eventually rises again once the
bins per layer become too few.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.bench.tables import format_series
from repro.core.analysis import expected_false_positives
from repro.core.sketch import IoUSketch
from repro.workloads.queries import sample_query_words

#: Bin budgets and layer counts swept (the paper uses B in 500..5000, L in 1..16,
#: scaled here to the smaller Cranfield-like corpus).
BIN_BUDGETS = [500, 1000, 2000, 4000]
LAYER_COUNTS = [1, 2, 4, 6, 8, 12, 16]
NUM_QUERY_WORDS = 80


def _observed_false_positives(documents, profile, num_bins, num_layers, query_words):
    sketch = IoUSketch.build(num_layers=num_layers, total_bins=num_bins, seed=3)
    truth: dict[str, set] = {}
    for document in documents:
        for word in set(document.text.split()):
            truth.setdefault(word, set()).add(document.ref)
    for word, postings in truth.items():
        sketch.insert(word, postings)
    total = sum(sketch.false_positives(word, truth[word]) for word in query_words)
    return total / len(query_words)


def _run(catalog):
    documents = catalog.corpus("cranfield").documents
    profile = catalog.profile("cranfield")
    query_words = sample_query_words(profile, NUM_QUERY_WORDS, seed=5)
    observed: dict[int, list[float]] = {}
    expected: dict[int, list[float]] = {}
    for num_bins in BIN_BUDGETS:
        observed[num_bins] = [
            _observed_false_positives(documents, profile, num_bins, layers, query_words)
            for layers in LAYER_COUNTS
        ]
        expected[num_bins] = [
            expected_false_positives(layers, num_bins, profile) for layers in LAYER_COUNTS
        ]
    return observed, expected


def test_fig05_false_positives_vs_layers(benchmark, catalog):
    observed, expected = benchmark.pedantic(_run, args=(catalog,), rounds=1, iterations=1)

    lines = ["(a) observed average false positives per query"]
    for num_bins, series in observed.items():
        lines.append(format_series(f"B={num_bins}", LAYER_COUNTS, series))
    lines.append("")
    lines.append("(b) expected false positives F(L)")
    for num_bins, series in expected.items():
        lines.append(format_series(f"B={num_bins}", LAYER_COUNTS, series))
    save_result("fig05_false_positives", "\n".join(lines))

    for num_bins in BIN_BUDGETS:
        # Multi-layer sketches beat the single-layer hash table dramatically.
        assert observed[num_bins][1] < observed[num_bins][0]
        assert min(observed[num_bins]) < 0.2 * observed[num_bins][0] + 1e-9
        # The analytical expectation tracks the observation at L = 1 to within
        # sampling noise (80 query words on a small corpus).
        assert observed[num_bins][0] <= 3.0 * expected[num_bins][0] + 5.0
        assert expected[num_bins][0] <= 3.0 * observed[num_bins][0] + 5.0
    # Larger bin budgets give fewer false positives at every layer count.
    for index in range(len(LAYER_COUNTS)):
        assert observed[BIN_BUDGETS[-1]][index] <= observed[BIN_BUDGETS[0]][index] + 1e-9
