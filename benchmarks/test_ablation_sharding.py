"""Ablation: index sharding and the coalescing read pipeline.

Builds the same corpus at shard counts {1, 4, 16} and replays an identical
multi-term query workload against each, recording:

* build wall-clock time (sharded builds parallelize across a thread pool);
* mean simulated query latency and bytes fetched;
* store requests — the *raw* per-superpost/per-document count a naive
  fetcher would issue versus what the read pipeline actually sent after
  deduplication and coalescing.

The machine-readable record lands in ``results/BENCH_sharding.json`` so the
performance trajectory of the sharded read path can be tracked PR over PR.
Set ``AIRPHANT_BENCH_SMOKE=1`` to run on a tiny corpus (CI smoke mode).
"""

from __future__ import annotations

import time

from benchmarks.conftest import save_json, save_result, smoke_mode
from repro.bench.tables import format_table
from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.observability import get_registry
from repro.observability.tracing import Tracer
from repro.parsing.tokenizer import WhitespaceAnalyzer
from repro.search.sharded import ShardedSearcher
from repro.storage.latency import AffineLatencyModel
from repro.storage.simulated import SimulatedCloudStore
from repro.workloads.logs import generate_log_corpus

SHARD_COUNTS = (1, 4, 16)
#: Bridge superpost reads that land within this many bytes of each other.
COALESCE_GAP = 4096


def _settings():
    if smoke_mode():
        return {"documents": 400, "queries": 10, "bins": 256}
    return {"documents": 12_000, "queries": 40, "bins": 2048}


def _run(catalog):
    settings = _settings()
    store = catalog.store
    corpus = generate_log_corpus(
        store, "hdfs", num_documents=settings["documents"], name="sharding", seed=23
    )
    config = SketchConfig(num_bins=settings["bins"], target_false_positives=1.0, seed=7)
    # Multi-term (conjunctive) queries whose words co-occur by construction:
    # both terms come from the same sampled document, so every query matches
    # at least one document at every shard count.
    tokenizer = WhitespaceAnalyzer()
    queries = []
    step = max(1, len(corpus.documents) // settings["queries"])
    for document in corpus.documents[:: step]:
        terms = sorted(tokenizer.distinct_terms(document.text))
        if len(terms) >= 2:
            queries.append(f"{terms[0]} {terms[-1]}")
        if len(queries) == settings["queries"]:
            break

    rows = []
    record = {}
    for num_shards in SHARD_COUNTS:
        index_name = f"ablation/sharding-{num_shards:02d}"
        builder = AirphantBuilder(store, config=config, num_shards=num_shards)
        started = time.perf_counter()
        builder.build_from_documents(corpus.documents, index_name=index_name)
        build_seconds = time.perf_counter() - started

        searcher = ShardedSearcher.open(
            store, index_name=index_name, coalesce_gap=COALESCE_GAP
        )
        latencies = []
        results = 0
        for query in queries:
            result = searcher.search(query)
            latencies.append(result.latency.total_ms)
            results += result.num_results
        stats = searcher.pipeline.stats
        searcher.close()

        mean_latency = sum(latencies) / len(latencies)
        rows.append(
            [
                num_shards,
                round(build_seconds, 3),
                round(mean_latency, 2),
                stats.bytes_fetched,
                stats.requests_in,
                stats.requests_out,
            ]
        )
        record[str(num_shards)] = {
            "num_shards": num_shards,
            "build_seconds": build_seconds,
            "mean_query_latency_ms": mean_latency,
            "bytes_fetched": stats.bytes_fetched,
            "bytes_requested": stats.bytes_requested,
            "raw_store_requests": stats.requests_in,
            "pipeline_store_requests": stats.requests_out,
            "requests_saved": stats.requests_saved,
            "coalesced_requests": stats.coalesced_requests,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "batches": stats.batches,
            "total_results": results,
        }
    # The headline sharding number: latency relative to the single-shard
    # build of the same corpus.  Before the fetcher learned to scale its
    # concurrency with the shard count this sat at ~1.31x for 16 shards
    # (the lookup wave spilled into extra concurrency waves); it must stay
    # close to 1.0 now.
    single = record["1"]["mean_query_latency_ms"]
    for entry in record.values():
        entry["latency_vs_single_shard"] = entry["mean_query_latency_ms"] / single
    for row, num_shards in zip(rows, SHARD_COUNTS):
        row.append(round(record[str(num_shards)]["latency_vs_single_shard"], 3))
    overhead = _metrics_overhead(store, queries)
    tracing_overhead = _tracing_overhead(store, queries)
    return corpus, queries, rows, record, overhead, tracing_overhead


def _metrics_overhead(store, queries):
    """Replay the 4-shard workload with metrics on vs. off.

    Both replays run over the same blobs behind *fresh* identically seeded
    latency models, so the simulated query latencies are directly
    comparable; recording on/off is toggled on the process-wide registry.
    The wall-clock replay times are recorded too (informational only —
    they include Python scheduling noise).
    """
    index_name = "ablation/sharding-04"

    def _replay(sim_store):
        searcher = ShardedSearcher.open(
            sim_store, index_name=index_name, coalesce_gap=COALESCE_GAP
        )
        started = time.perf_counter()
        latencies = [searcher.search(query).latency.total_ms for query in queries]
        wall_seconds = time.perf_counter() - started
        searcher.close()
        return sum(latencies) / len(latencies), wall_seconds

    def _fresh_store():
        return SimulatedCloudStore(
            backend=store.backend,
            latency_model=AffineLatencyModel(seed=99, jitter_sigma=0.1),
        )

    registry = get_registry()
    mean_on, wall_on = _replay(_fresh_store())
    registry.disable()
    try:
        mean_off, wall_off = _replay(_fresh_store())
    finally:
        registry.enable()
    return {
        "mean_query_latency_ms_metrics_on": mean_on,
        "mean_query_latency_ms_metrics_off": mean_off,
        "latency_overhead_ratio": mean_on / mean_off if mean_off else 1.0,
        "wall_seconds_metrics_on": wall_on,
        "wall_seconds_metrics_off": wall_off,
    }


def _tracing_overhead(store, queries):
    """Replay the 4-shard workload untraced vs. fully traced.

    Same fresh identically seeded stores as :func:`_metrics_overhead`.  The
    untraced replay runs with no ambient span, i.e. the tracing-disabled
    path (each instrumented site costs one contextvar read); the traced
    replay opens a root span per query at ``sample_rate=1.0`` so every
    span tree is built and retained.  Simulated latency must be identical
    either way — tracing observes the fetch pattern, it must never change
    it — and the ratios are asserted within 5%.
    """
    index_name = "ablation/sharding-04"

    def _fresh_store():
        return SimulatedCloudStore(
            backend=store.backend,
            latency_model=AffineLatencyModel(seed=99, jitter_sigma=0.1),
        )

    def _replay(sim_store, tracer=None):
        searcher = ShardedSearcher.open(
            sim_store, index_name=index_name, coalesce_gap=COALESCE_GAP
        )
        started = time.perf_counter()
        latencies = []
        for query in queries:
            handle = tracer.begin("query", query=query) if tracer is not None else None
            latencies.append(searcher.search(query).latency.total_ms)
            if handle is not None:
                handle.finish()
        wall_seconds = time.perf_counter() - started
        searcher.close()
        return sum(latencies) / len(latencies), wall_seconds

    mean_untraced, wall_untraced = _replay(_fresh_store())
    tracer = Tracer(sample_rate=1.0, capacity=len(queries) + 1)
    mean_traced, wall_traced = _replay(_fresh_store(), tracer)
    return {
        "mean_query_latency_ms_untraced": mean_untraced,
        "mean_query_latency_ms_traced": mean_traced,
        "latency_overhead_ratio": (
            mean_traced / mean_untraced if mean_untraced else 1.0
        ),
        "wall_seconds_untraced": wall_untraced,
        "wall_seconds_traced": wall_traced,
        "retained_traces": len(tracer.store),
    }


def test_ablation_sharding(benchmark, catalog):
    corpus, queries, rows, record, overhead, tracing_overhead = benchmark.pedantic(
        _run, args=(catalog,), rounds=1, iterations=1
    )
    table = format_table(
        [
            "shards",
            "build s",
            "mean query ms",
            "bytes fetched",
            "raw requests",
            "pipeline requests",
            "vs 1 shard",
        ],
        rows,
    )
    save_result("ablation_sharding", table)
    registry_summary = {
        name: value
        for name, value in get_registry().summary().items()
        if name.startswith(("airphant_pipeline_", "airphant_sim_"))
    }
    save_json(
        "BENCH_sharding",
        {
            "experiment": "sharding_ablation",
            "corpus": {"kind": "hdfs", "documents": corpus.num_documents},
            "queries": len(queries),
            "coalesce_gap": COALESCE_GAP,
            "smoke_mode": smoke_mode(),
            "by_shard_count": record,
            "metrics_overhead": overhead,
            "tracing_overhead": tracing_overhead,
            # Process-wide registry totals at the time of the run — the
            # same counters GET /metrics would export while serving.
            "registry_summary": registry_summary,
        },
    )

    # Every configuration must answer the whole workload...
    for entry in record.values():
        assert entry["total_results"] > 0
    # ...and the pipeline must issue strictly fewer store requests than the
    # raw per-superpost/per-document batches for these multi-term queries.
    for entry in record.values():
        assert entry["pipeline_store_requests"] < entry["raw_store_requests"]
    # Results are identical across shard counts, so every configuration
    # matched the same documents.
    totals = {entry["total_results"] for entry in record.values()}
    assert len(totals) == 1
    # Sharding must not cost latency: with the fetcher scaling its
    # concurrency to the shard count, the 16-shard lookup wave stays a
    # single concurrency wave and the old ~1.31x regression is gone.
    assert record["16"]["latency_vs_single_shard"] <= 1.15
    # Metrics recording must be invisible in query latency (<= 5%): the two
    # replays use identically seeded latency models, so any drift here is
    # the accounting path changing what gets fetched — a bug.
    assert abs(overhead["latency_overhead_ratio"] - 1.0) <= 0.05
    # Same contract for tracing: neither the tracing-disabled path (no
    # ambient span) nor a fully traced replay may change what gets fetched.
    assert abs(tracing_overhead["latency_overhead_ratio"] - 1.0) <= 0.05
    assert tracing_overhead["retained_traces"] == len(queries)
