"""Ablation: index sharding and the coalescing read pipeline.

Builds the same corpus at shard counts {1, 4, 16} and replays an identical
multi-term query workload against each, recording:

* build wall-clock time (sharded builds parallelize across a thread pool);
* mean simulated query latency and bytes fetched;
* store requests — the *raw* per-superpost/per-document count a naive
  fetcher would issue versus what the read pipeline actually sent after
  deduplication and coalescing.

The machine-readable record lands in ``results/BENCH_sharding.json`` so the
performance trajectory of the sharded read path can be tracked PR over PR.
Set ``AIRPHANT_BENCH_SMOKE=1`` to run on a tiny corpus (CI smoke mode).
"""

from __future__ import annotations

import time

from benchmarks.conftest import save_json, save_result, smoke_mode
from repro.bench.tables import format_table
from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.parsing.tokenizer import WhitespaceAnalyzer
from repro.search.sharded import ShardedSearcher
from repro.workloads.logs import generate_log_corpus

SHARD_COUNTS = (1, 4, 16)
#: Bridge superpost reads that land within this many bytes of each other.
COALESCE_GAP = 4096


def _settings():
    if smoke_mode():
        return {"documents": 400, "queries": 10, "bins": 256}
    return {"documents": 12_000, "queries": 40, "bins": 2048}


def _run(catalog):
    settings = _settings()
    store = catalog.store
    corpus = generate_log_corpus(
        store, "hdfs", num_documents=settings["documents"], name="sharding", seed=23
    )
    config = SketchConfig(num_bins=settings["bins"], target_false_positives=1.0, seed=7)
    # Multi-term (conjunctive) queries whose words co-occur by construction:
    # both terms come from the same sampled document, so every query matches
    # at least one document at every shard count.
    tokenizer = WhitespaceAnalyzer()
    queries = []
    step = max(1, len(corpus.documents) // settings["queries"])
    for document in corpus.documents[:: step]:
        terms = sorted(tokenizer.distinct_terms(document.text))
        if len(terms) >= 2:
            queries.append(f"{terms[0]} {terms[-1]}")
        if len(queries) == settings["queries"]:
            break

    rows = []
    record = {}
    for num_shards in SHARD_COUNTS:
        index_name = f"ablation/sharding-{num_shards:02d}"
        builder = AirphantBuilder(store, config=config, num_shards=num_shards)
        started = time.perf_counter()
        builder.build_from_documents(corpus.documents, index_name=index_name)
        build_seconds = time.perf_counter() - started

        searcher = ShardedSearcher.open(
            store, index_name=index_name, coalesce_gap=COALESCE_GAP
        )
        latencies = []
        results = 0
        for query in queries:
            result = searcher.search(query)
            latencies.append(result.latency.total_ms)
            results += result.num_results
        stats = searcher.pipeline.stats
        searcher.close()

        mean_latency = sum(latencies) / len(latencies)
        rows.append(
            [
                num_shards,
                round(build_seconds, 3),
                round(mean_latency, 2),
                stats.bytes_fetched,
                stats.requests_in,
                stats.requests_out,
            ]
        )
        record[str(num_shards)] = {
            "num_shards": num_shards,
            "build_seconds": build_seconds,
            "mean_query_latency_ms": mean_latency,
            "bytes_fetched": stats.bytes_fetched,
            "bytes_requested": stats.bytes_requested,
            "raw_store_requests": stats.requests_in,
            "pipeline_store_requests": stats.requests_out,
            "requests_saved": stats.requests_saved,
            "coalesced_requests": stats.coalesced_requests,
            "total_results": results,
        }
    return corpus, queries, rows, record


def test_ablation_sharding(benchmark, catalog):
    corpus, queries, rows, record = benchmark.pedantic(
        _run, args=(catalog,), rounds=1, iterations=1
    )
    table = format_table(
        [
            "shards",
            "build s",
            "mean query ms",
            "bytes fetched",
            "raw requests",
            "pipeline requests",
        ],
        rows,
    )
    save_result("ablation_sharding", table)
    save_json(
        "BENCH_sharding",
        {
            "experiment": "sharding_ablation",
            "corpus": {"kind": "hdfs", "documents": corpus.num_documents},
            "queries": len(queries),
            "coalesce_gap": COALESCE_GAP,
            "smoke_mode": smoke_mode(),
            "by_shard_count": record,
        },
    )

    # Every configuration must answer the whole workload...
    for entry in record.values():
        assert entry["total_results"] > 0
    # ...and the pipeline must issue strictly fewer store requests than the
    # raw per-superpost/per-document batches for these multi-term queries.
    for entry in record.values():
        assert entry["pipeline_store_requests"] < entry["raw_store_requests"]
    # Results are identical across shard counts, so every configuration
    # matched the same documents.
    totals = {entry["total_results"] for entry in record.values()}
    assert len(totals) == 1
