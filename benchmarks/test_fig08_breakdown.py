"""Figures 8 and 11: search-latency breakdown into wait time and download time.

The paper captures TCP traffic on the Spark dataset and splits each query's
latency into time spent *waiting* for responses and time spent *downloading*
data.  Two extreme patterns emerge: hierarchical indexes (Lucene, SQLite) are
wait-heavy because of dependent sequential reads, while the single-layer
HashTable is download/volume-heavy because of its false positives.  Airphant
keeps both components small.  The simulator measures the same two quantities
directly.
"""

from __future__ import annotations

from benchmarks.conftest import DEFAULT_BENCH_CONFIG, save_result
from repro.bench.breakdown import per_query_breakdown, summarize_breakdown
from repro.bench.harness import build_standard_engines, run_comparison
from repro.bench.tables import format_table
from repro.workloads.queries import QueryWorkload

ENGINES = ["Lucene", "Elasticsearch", "SQLite", "HashTable", "Airphant"]
QUERIES = 32  # the paper samples 32 queries per method for this analysis


def _run(catalog):
    corpus = catalog.corpus("spark")
    profile = catalog.profile("spark")
    engines = build_standard_engines(
        catalog.store,
        corpus.documents,
        config=DEFAULT_BENCH_CONFIG,
        engine_names=ENGINES,
        corpus_name="fig08/spark",
    )
    workload = QueryWorkload.from_profile(profile, num_queries=QUERIES, top_k=10, seed=21)
    return run_comparison(engines, workload)


def test_fig08_latency_breakdown(benchmark, catalog):
    runs = benchmark.pedantic(_run, args=(catalog,), rounds=1, iterations=1)
    summaries = {name: summarize_breakdown(run) for name, run in runs.items()}

    rows = [
        [name, summary.mean_wait_ms, summary.mean_download_ms, summary.mean_total_ms]
        for name, summary in summaries.items()
    ]
    lines = [format_table(["engine", "wait ms", "download ms", "total ms"], rows), ""]
    lines.append("per-query scatter (wait ms, download ms) — Figure 11")
    for name, run in runs.items():
        points = per_query_breakdown(run)
        formatted = " ".join(f"({wait:.0f}, {download:.2f})" for wait, download in points[:10])
        lines.append(f"{name}: {formatted} ...")
    save_result("fig08_breakdown_spark", "\n".join(lines))

    airphant = summaries["Airphant"]
    lucene = summaries["Lucene"]
    hashtable = summaries["HashTable"]
    # Lucene is wait-heavy: dependent reads dominate, and its wait time far
    # exceeds Airphant's.
    assert lucene.mean_wait_ms > 3 * airphant.mean_wait_ms
    assert lucene.mean_wait_ms > 10 * lucene.mean_download_ms
    # HashTable moves more bytes per query than Airphant (false positives).
    airphant_bytes = sum(r.latency.bytes_fetched for r in runs["Airphant"].results)
    hashtable_bytes = sum(r.latency.bytes_fetched for r in runs["HashTable"].results)
    assert hashtable_bytes > airphant_bytes
    # Airphant minimizes the total of both components.
    assert airphant.mean_total_ms <= min(
        summary.mean_total_ms for name, summary in summaries.items() if name != "Airphant"
    ) * 1.05
    assert hashtable.mean_total_ms >= airphant.mean_total_ms * 0.95
