"""Ablation: storage-backend resilience (retries + hedged reads) under faults.

Unlike the other benchmarks (virtual-clock simulation), this one runs on the
*wall clock*: the index lives in memory behind a
:class:`~repro.storage.faults.FlakyStore` that injects real sleeps ("slow
replicas") and real transient errors, and a
:class:`~repro.storage.resilient.ResilientStore` wraps it exactly the way
``airphant search --store URI --retries N --hedge-ms D`` would.  The same
query workload replays under four scenarios:

* ``clean``          — no faults, no resilience: the baseline floor;
* ``slow-unhedged``  — stragglers injected, hedging off: p99 collapses to
  the straggler delay (one slow read stalls the whole query batch);
* ``slow-hedged``    — same faults, hedged duplicate reads on: the hedge
  races past the straggler, cutting p99 back down;
* ``flaky-retried``  — transient errors injected, bounded retries on: every
  query still answers, and the retry win rate is recorded.

The machine-readable record (tail latencies, retry/hedge win rates, injected
fault counts) lands in ``results/BENCH_backends.json``.  Set
``AIRPHANT_BENCH_SMOKE=1`` for the tiny CI configuration.
"""

from __future__ import annotations

import time

from benchmarks.conftest import save_json, save_result, smoke_mode
from repro.bench.tables import format_table
from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.observability import MetricsRegistry
from repro.parsing.tokenizer import WhitespaceAnalyzer
from repro.search.searcher import AirphantSearcher
from repro.storage.faults import FlakyStore
from repro.storage.memory import InMemoryObjectStore
from repro.storage.resilient import ResilientStore
from repro.workloads.logs import generate_log_corpus

INDEX_NAME = "ablation/backends"


def _settings():
    if smoke_mode():
        return {
            "documents": 400,
            "queries": 15,
            "bins": 256,
            "top_k": 5,
            "slow_ms": 15.0,
            "slow_rate": 0.05,
            "error_rate": 0.05,
            "hedge_ms": 4.0,
        }
    return {
        "documents": 4_000,
        "queries": 60,
        "bins": 2_048,
        "top_k": 5,
        "slow_ms": 40.0,
        "slow_rate": 0.03,
        "error_rate": 0.05,
        "hedge_ms": 5.0,
    }


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(round(q / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[index]


def _sample_queries(documents, count: int) -> list[str]:
    """One rare-ish term per sampled document, so every query matches and
    keeps its candidate set small (the tail is dominated by lookups, not by
    a giant document-retrieval batch)."""
    tokenizer = WhitespaceAnalyzer()
    queries: list[str] = []
    step = max(1, len(documents) // count)
    for document in documents[::step]:
        terms = sorted(tokenizer.distinct_terms(document.text))
        if terms:
            queries.append(terms[-1])
        if len(queries) == count:
            break
    return queries


def _replay(store, queries: list[str], top_k: int) -> tuple[list[float], int]:
    """Open the index over ``store`` and replay ``queries``, timing each."""
    searcher = AirphantSearcher.open(store, index_name=INDEX_NAME)
    latencies: list[float] = []
    results = 0
    for query in queries:
        started = time.perf_counter()
        result = searcher.search(query, top_k=top_k)
        latencies.append((time.perf_counter() - started) * 1000.0)
        results += result.num_results
    searcher.close()
    store.close()
    return latencies, results


def _run():
    settings = _settings()
    base = InMemoryObjectStore()
    corpus = generate_log_corpus(
        base, "hdfs", num_documents=settings["documents"], name="backends", seed=31
    )
    AirphantBuilder(
        base,
        config=SketchConfig(num_bins=settings["bins"], target_false_positives=1.0, seed=7),
    ).build_from_documents(corpus.documents, index_name=INDEX_NAME)
    queries = _sample_queries(corpus.documents, settings["queries"])

    scenarios = {}

    def _scenario(name, error_rate=0.0, slow_rate=0.0, retries=0, hedge_ms=0.0):
        # One private registry per scenario: the recorded counters are
        # exactly this replay's, not the whole process's.
        registry = MetricsRegistry()
        flaky = FlakyStore(
            base,
            error_rate=error_rate,
            slow_rate=slow_rate,
            slow_ms=settings["slow_ms"],
            seed=5,
        )
        store = ResilientStore(
            flaky,
            retries=retries,
            backoff_ms=2.0,
            backoff_jitter=0.1,
            hedge_ms=hedge_ms,
            hedge_concurrency=64,
            seed=13,
            metrics=registry,
        )
        latencies, results = _replay(store, queries, settings["top_k"])
        ordered = sorted(latencies)
        scenarios[name] = {
            "p50_ms": _percentile(ordered, 50),
            "p95_ms": _percentile(ordered, 95),
            "p99_ms": _percentile(ordered, 99),
            "max_ms": ordered[-1],
            "mean_ms": sum(ordered) / len(ordered),
            "total_results": results,
            "injected_errors": flaky.injected_errors,
            "injected_slow": flaky.injected_slow,
            "resilience": store.stats.to_dict(),
            # The registry view of the same accounting (what GET /metrics
            # would export for this traffic) — must agree with the stats.
            "registry_counters": {
                name: value
                for name, value in registry.summary().items()
                if name.startswith("airphant_resilience_")
            },
        }

    _scenario("clean")
    _scenario("slow-unhedged", slow_rate=settings["slow_rate"], retries=1)
    _scenario(
        "slow-hedged",
        slow_rate=settings["slow_rate"],
        retries=1,
        hedge_ms=settings["hedge_ms"],
    )
    _scenario("flaky-retried", error_rate=settings["error_rate"], retries=5)
    return settings, queries, scenarios


def test_ablation_backends(benchmark):
    settings, queries, scenarios = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        [
            name,
            round(entry["p50_ms"], 2),
            round(entry["p99_ms"], 2),
            round(entry["mean_ms"], 2),
            entry["resilience"]["retries"],
            entry["resilience"]["hedges"],
            entry["resilience"]["hedge_wins"],
        ]
        for name, entry in scenarios.items()
    ]
    save_result(
        "ablation_backends",
        format_table(
            ["scenario", "p50 ms", "p99 ms", "mean ms", "retries", "hedges", "hedge wins"],
            rows,
        ),
    )
    save_json(
        "BENCH_backends",
        {
            "experiment": "backends_resilience_ablation",
            "clock": "wall",
            "queries": len(queries),
            "settings": settings,
            "smoke_mode": smoke_mode(),
            "scenarios": scenarios,
        },
    )

    # Every scenario must answer the full workload with identical results
    # (faults may slow queries down but can never change their answers).
    totals = {entry["total_results"] for entry in scenarios.values()}
    assert len(totals) == 1 and totals.pop() > 0

    # Slow replicas were actually injected in both slow scenarios...
    assert scenarios["slow-unhedged"]["injected_slow"] > 0
    assert scenarios["slow-hedged"]["injected_slow"] > 0
    # ...hedges fired and won against them...
    assert scenarios["slow-hedged"]["resilience"]["hedges"] > 0
    assert scenarios["slow-hedged"]["resilience"]["hedge_wins"] > 0
    # ...and hedged reads cut the p99 tail versus no hedging.
    assert scenarios["slow-hedged"]["p99_ms"] < scenarios["slow-unhedged"]["p99_ms"]

    # Transient errors were injected, retried, and fully absorbed.
    retried = scenarios["flaky-retried"]
    assert retried["injected_errors"] > 0
    assert retried["resilience"]["retries"] > 0
    assert retried["resilience"]["failures"] == 0
    assert retried["resilience"]["retry_win_rate"] == 1.0

    # The registry mirror agrees with the stats object in every scenario.
    for entry in scenarios.values():
        counters = entry["registry_counters"]
        assert counters["airphant_resilience_retries_total"] == entry["resilience"]["retries"]
        assert counters["airphant_resilience_hedges_total"] == entry["resilience"]["hedges"]
