"""Ablation: mixed read/write workload through the live ingestion subsystem.

A wall-clock benchmark of the write path the paper leaves as future work:
one service node over an in-memory store runs an interleaved workload —
query waves alternating with append batches — under three maintenance
regimes:

* ``no-flush``   — everything stays in the memtable (upper bound on memtable
  read cost; no delta indexes at all);
* ``flush``      — the flush policy folds memtables into delta indexes, so
  reads fan out over base + deltas;
* ``flush+compact`` — compaction keeps folding deltas back into the base
  generation, bounding read amplification.

Recorded per regime: append/query latencies (p50/p99), flush/compaction
counts and durations, stacked-delta peak, and a correctness count (every
regime must return the identical number of results — maintenance must never
change answers).  This doubles as the CI **ingest soak**: under
``AIRPHANT_BENCH_SMOKE=1`` a short run exercises append → flush → compact
with the background policies enabled.

The machine-readable record lands in ``results/BENCH_ingest.json``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import save_json, save_result, smoke_mode
from repro.bench.tables import format_table
from repro.core.config import SketchConfig
from repro.observability import MetricsRegistry
from repro.service import AirphantService, SearchRequest, ServiceConfig
from repro.storage.memory import InMemoryObjectStore
from repro.workloads.logs import generate_log_corpus

INDEX = "ablation-ingest"


def _settings():
    if smoke_mode():
        return {
            "base_documents": 300,
            "batches": 6,
            "batch_size": 25,
            "queries_per_wave": 8,
            "bins": 256,
            "flush_docs": 40,
            "compact_deltas": 2,
        }
    return {
        "base_documents": 4_000,
        "batches": 24,
        "batch_size": 120,
        "queries_per_wave": 25,
        "bins": 2_048,
        "flush_docs": 250,
        "compact_deltas": 3,
    }


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def _corpus_lines(store: InMemoryObjectStore, documents: int) -> list[str]:
    corpus = generate_log_corpus(store, "hdfs", num_documents=documents, seed=3)
    text = store.get(corpus.blob_names[0]).decode("utf-8")
    return [line for line in text.splitlines() if line.strip()]


def _run_scenario(
    name: str,
    lines: list[str],
    settings: dict,
    flush: bool,
    compact: bool,
) -> dict:
    store = InMemoryObjectStore()
    store.put("corpus/base.txt", ("\n".join(lines[: settings["base_documents"]]) + "\n").encode())
    config = ServiceConfig(
        ingest_interval_s=0,  # the benchmark drives maintenance deterministically
        ingest_flush_docs=settings["flush_docs"],
        ingest_compact_deltas=settings["compact_deltas"] if compact else 0,
    )
    registry = MetricsRegistry()
    service = AirphantService(store, config, metrics=registry)
    service.build_index(
        INDEX, ["corpus/base.txt"], sketch_config=SketchConfig(num_bins=settings["bins"], seed=7)
    )

    ingest_lines = lines[settings["base_documents"] :]
    queries = ["ERROR", "INFO block", "WARN"]
    append_ms: list[float] = []
    query_ms: list[float] = []
    total_results = 0
    peak_deltas = 0
    batch_size = settings["batch_size"]

    for wave in range(settings["batches"]):
        batch = ingest_lines[wave * batch_size : (wave + 1) * batch_size]
        if batch:
            started = time.perf_counter()
            service.append_documents(INDEX, batch)
            append_ms.append((time.perf_counter() - started) * 1000.0)
        if flush:
            service.ingest.run_maintenance()
        live = service.ingest.live(INDEX)
        if live is not None:
            peak_deltas = max(peak_deltas, live.delta_count)
        for position in range(settings["queries_per_wave"]):
            query = queries[position % len(queries)]
            started = time.perf_counter()
            result = service.execute(
                SearchRequest(query=query, index=INDEX, top_k=20)
            )
            query_ms.append((time.perf_counter() - started) * 1000.0)
            total_results += result.num_results

    summary = registry.summary()
    outcome = {
        "append_p50_ms": round(_percentile(append_ms, 50), 3),
        "append_p99_ms": round(_percentile(append_ms, 99), 3),
        "query_p50_ms": round(_percentile(query_ms, 50), 3),
        "query_p99_ms": round(_percentile(query_ms, 99), 3),
        "appended_documents": int(summary.get("airphant_ingest_documents_total", 0)),
        "flushes": int(summary.get("airphant_ingest_flushes_total", 0)),
        "compactions": int(summary.get("airphant_ingest_compactions_total", 0)),
        "flush_seconds": summary.get("airphant_ingest_flush_seconds", {}),
        "compact_seconds": summary.get("airphant_ingest_compact_seconds", {}),
        "peak_stacked_deltas": peak_deltas,
        "final_memtable_documents": service.ingest.summary()["memtable_documents"],
        "total_results": total_results,
    }
    service.close()
    return outcome


def _run():
    settings = _settings()
    seed_store = InMemoryObjectStore()
    needed = settings["base_documents"] + settings["batches"] * settings["batch_size"]
    lines = _corpus_lines(seed_store, needed)
    scenarios = {
        "no-flush": _run_scenario("no-flush", lines, settings, flush=False, compact=False),
        "flush": _run_scenario("flush", lines, settings, flush=True, compact=False),
        "flush+compact": _run_scenario(
            "flush+compact", lines, settings, flush=True, compact=True
        ),
    }
    return settings, scenarios


def test_ablation_ingest(benchmark):
    settings, scenarios = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        [
            name,
            entry["append_p50_ms"],
            entry["query_p50_ms"],
            entry["query_p99_ms"],
            entry["flushes"],
            entry["compactions"],
            entry["peak_stacked_deltas"],
        ]
        for name, entry in scenarios.items()
    ]
    save_result(
        "ablation_ingest",
        format_table(
            [
                "scenario",
                "append p50 ms",
                "query p50 ms",
                "query p99 ms",
                "flushes",
                "compactions",
                "peak deltas",
            ],
            rows,
        ),
    )
    save_json(
        "BENCH_ingest",
        {
            "experiment": "ingest_mixed_read_write_ablation",
            "clock": "wall",
            "settings": settings,
            "smoke_mode": smoke_mode(),
            "scenarios": scenarios,
        },
    )

    # Correctness first: maintenance must never change answers — every
    # regime saw the same documents, so result counts are identical.
    totals = {entry["total_results"] for entry in scenarios.values()}
    assert len(totals) == 1 and totals.pop() > 0
    appended = {entry["appended_documents"] for entry in scenarios.values()}
    assert len(appended) == 1 and appended.pop() > 0

    # The soak contract: the flush regime flushed, the compacting regime
    # compacted, and compaction bounded the delta stack.
    assert scenarios["no-flush"]["flushes"] == 0
    assert scenarios["flush"]["flushes"] > 0
    assert scenarios["flush+compact"]["compactions"] > 0
    assert (
        scenarios["flush+compact"]["peak_stacked_deltas"]
        <= settings["compact_deltas"]
    )
    # Without flushes every appended document sits in the memtable.
    assert (
        scenarios["no-flush"]["final_memtable_documents"]
        == scenarios["no-flush"]["appended_documents"]
    )
