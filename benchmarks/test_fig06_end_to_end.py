"""Figure 6: end-to-end search latencies of all five engines on all corpora.

The headline experiment.  The paper reports mean and 99th-percentile search
latency for Lucene, Elasticsearch, SQLite, HashTable, and Airphant on seven
corpora, with Airphant fastest (or close) everywhere except the tiny
Cranfield corpus, where Lucene's fully-cached term index wins.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DEFAULT_BENCH_CONFIG, save_result
from repro.bench.harness import build_standard_engines, run_comparison
from repro.bench.tables import format_table
from repro.workloads.queries import QueryWorkload

#: Corpora benchmarked (all seven of the paper's datasets, scaled down).
DATASETS = ["diag", "unif", "zipf", "cranfield", "hdfs", "windows", "spark"]
QUERIES_PER_DATASET = 25
ENGINES = ["Lucene", "Elasticsearch", "SQLite", "HashTable", "Airphant"]


def _engine_overrides(dataset: str) -> dict[str, dict[str, object]]:
    """Per-dataset engine tweaks.

    Cranfield is the one corpus we use at its *real* size (1398 abstracts), so
    the baselines keep realistic multi-megabyte caches — their term indexes fit
    entirely, which is exactly why Lucene wins on Cranfield in the paper.  The
    log and synthetic corpora are scaled down ~1000x, so their caches stay at
    the scaled defaults chosen by the harness.
    """
    if dataset != "cranfield":
        return {}
    real_cache = {"cache_bytes": 2 * 1024 * 1024}
    return {"Lucene": dict(real_cache), "SQLite": dict(real_cache), "Elasticsearch": dict(real_cache)}


def _run_dataset(catalog, dataset: str):
    corpus = catalog.corpus(dataset)
    profile = catalog.profile(dataset)
    engines = build_standard_engines(
        catalog.store,
        corpus.documents,
        config=DEFAULT_BENCH_CONFIG,
        engine_names=ENGINES,
        corpus_name=f"fig06/{dataset}",
        engine_overrides=_engine_overrides(dataset),
    )
    workload = QueryWorkload.from_profile(
        profile, num_queries=QUERIES_PER_DATASET, top_k=10, seed=13
    )
    return run_comparison(engines, workload)


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig06_end_to_end_latency(benchmark, catalog, dataset):
    runs = benchmark.pedantic(_run_dataset, args=(catalog, dataset), rounds=1, iterations=1)

    rows = [
        [name, run.stats.mean_ms, run.stats.p99_ms, run.mean_false_positives]
        for name, run in runs.items()
    ]
    table = format_table(["engine", "mean ms", "p99 ms", "false positives/query"], rows)
    save_result(f"fig06_end_to_end_{dataset}", table)

    airphant = runs["Airphant"].stats.mean_ms
    benchmark.extra_info["airphant_mean_ms"] = airphant

    # Airphant stays well under a second on every (scaled) corpus.
    assert airphant < 1000.0

    if dataset == "cranfield":
        # The paper's one exception: Lucene is faster on the small Cranfield
        # corpus because its whole term index fits in cache.
        assert runs["Lucene"].stats.mean_ms < 2 * airphant
    else:
        # Everywhere else Airphant beats the wait-heavy hierarchical indexes.
        assert airphant < runs["Lucene"].stats.mean_ms
        assert airphant < runs["Elasticsearch"].stats.mean_ms
        assert airphant <= runs["SQLite"].stats.mean_ms * 1.05
    # The single-layer HashTable pays for its false positives on every corpus
    # where terms share bins (diag has one term per document, so it is exact).
    if dataset not in ("diag",):
        assert runs["HashTable"].mean_false_positives >= runs["Airphant"].mean_false_positives
