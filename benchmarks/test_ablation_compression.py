"""Ablation: string-table compression of postings (Section IV-C).

Airphant compresses the repeated blob names inside postings into integer
keys before serializing superposts.  This ablation measures the bytes a
query must download per superpost with and without that compression.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.bench.tables import format_table
from repro.core.superpost import Superpost
from repro.index.serialization import (
    StringTable,
    decode_superpost,
    encode_superpost,
    encode_varint,
)
from repro.index.builder import AirphantBuilder
from repro.core.config import SketchConfig
from repro.search.searcher import AirphantSearcher
from repro.workloads.queries import sample_query_words


def _uncompressed_size(superpost: Superpost) -> int:
    """Size of the same superpost with blob names stored inline (no table)."""
    total = len(encode_varint(len(superpost)))
    for posting in superpost.sorted_postings():
        name = posting.blob.encode("utf-8")
        total += len(encode_varint(len(name))) + len(name)
        total += len(encode_varint(posting.offset)) + len(encode_varint(posting.length))
    return total


def _run(catalog):
    corpus = catalog.corpus("spark")
    profile = catalog.profile("spark")
    config = SketchConfig(num_bins=1024, num_layers=2, seed=23)
    AirphantBuilder(catalog.store, config=config).build_from_documents(
        corpus.documents, index_name="ablation/compression"
    )
    searcher = AirphantSearcher.open(catalog.store, index_name="ablation/compression")
    words = sample_query_words(profile, 30, seed=71)

    compressed_bytes = 0
    uncompressed_bytes = 0
    table = StringTable()
    for word in words:
        for pointer in searcher.mht.pointers_for(word):
            if pointer.is_empty:
                continue
            payload = catalog.store.backend.get_range(
                pointer.blob, pointer.offset, pointer.length
            )
            compressed_bytes += len(payload)
            superpost = decode_superpost(payload, _searcher_string_table(searcher))
            uncompressed_bytes += _uncompressed_size(superpost)
            encode_superpost(superpost, table)
    return compressed_bytes, uncompressed_bytes


def _searcher_string_table(searcher: AirphantSearcher) -> StringTable:
    return searcher._string_table  # test-only access to the decoded header


def test_ablation_string_table_compression(benchmark, catalog):
    compressed, uncompressed = benchmark.pedantic(_run, args=(catalog,), rounds=1, iterations=1)
    ratio = uncompressed / compressed
    table = format_table(
        ["encoding", "bytes fetched over 30 queries"],
        [["string-table compression (Airphant)", compressed], ["inline blob names", uncompressed]],
    )
    save_result("ablation_compression", table + f"\nsavings: {ratio:.2f}x")

    # Inline blob names would inflate the bytes every query downloads.
    assert uncompressed > compressed
    benchmark.extra_info["compression_ratio"] = ratio
