"""Ablation: superpost compression (v1 vs v2 codec) and co-access layout.

The v1 codec already interns blob names through the string table (Section
IV-C); the v2 codec additionally groups each superpost's postings by blob
and delta-codes offsets within a group, and v2 builds place superposts in
co-access order so the coalescing read pipeline can merge a query's layer
fetches into fewer, fatter ranges.

Each fig06 corpus is built twice — v1/plain layout (the legacy format) and
v2/co-access (the default) — and an identical occurrence-weighted keyword
workload is replayed against both over identically seeded simulated stores,
recording blob bytes, bytes fetched per query, raw-vs-pipeline request
counts, and p50/p99 latency.  A decode micro-benchmark quantifies the
``Superpost.from_sorted`` hot-path fix (decoders emit sorted postings, so
the old per-decode re-sort is gone).

The machine-readable record lands in ``results/BENCH_compression.json`` so
codec regressions are caught PR over PR.  Set ``AIRPHANT_BENCH_SMOKE=1`` for
CI smoke mode (tiny corpora, relaxed thresholds).
"""

from __future__ import annotations

import time

from benchmarks.conftest import new_store, save_json, save_result, smoke_mode
from repro.bench.tables import format_table
from repro.core.config import SketchConfig
from repro.core.superpost import Superpost
from repro.index.builder import AirphantBuilder
from repro.index.serialization import decode_superpost
from repro.observability import get_registry
from repro.profiling.profiler import profile_documents
from repro.search.searcher import AirphantSearcher
from repro.storage.latency import AffineLatencyModel
from repro.storage.simulated import SimulatedCloudStore
from repro.workloads.logs import generate_log_corpus
from repro.workloads.synthetic import SyntheticSpec, generate_zipf
from repro.workloads.queries import sample_query_words

#: Bridge superpost reads that land within this many bytes of each other.
COALESCE_GAP = 4096

#: The two on-disk formats under comparison: (label, format_version, layout).
SCENARIOS = (("v1", 1, "plain"), ("v2", 2, "coaccess"))


def _settings():
    if smoke_mode():
        return {"corpora": ("hdfs", "zipf"), "documents": 1_200, "queries": 15, "bins": 512}
    return {
        "corpora": ("hdfs", "windows", "spark", "zipf"),
        "documents": 12_000,
        "queries": 60,
        "bins": 2048,
    }


def _generate(store, kind: str, documents: int):
    if kind == "zipf":
        spec = SyntheticSpec(
            num_documents=documents, num_words=documents // 2, words_per_document=10
        )
        return generate_zipf(store, spec, name="compression-zipf", seed=11)
    return generate_log_corpus(
        store, kind, num_documents=documents, name=f"compression-{kind}", seed=11
    )


def _replay_store(backend) -> SimulatedCloudStore:
    """A fresh store over the same blobs with identically seeded latencies."""
    return SimulatedCloudStore(
        backend=backend, latency_model=AffineLatencyModel(seed=555, jitter_sigma=0.1)
    )


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _run_corpus(kind: str, settings) -> dict:
    store = new_store(seed=1)
    corpus = _generate(store, kind, settings["documents"])
    profile = profile_documents(corpus.documents)
    config = SketchConfig(
        num_bins=settings["bins"], target_false_positives=1.0, seed=7
    )
    # Occurrence-weighted sampling: production query traffic is head-heavy,
    # which is exactly the traffic the co-access layout optimizes for.
    words = sample_query_words(
        profile, settings["queries"], seed=71, mode="occurrence"
    )

    raw_counter = get_registry().counter(
        "airphant_codec_bytes_raw_total", label_names=("format",)
    )
    record: dict[str, dict] = {}
    for label, format_version, layout in SCENARIOS:
        index_name = f"ablation/compression-{kind}-{label}"
        raw_before = raw_counter.value(format=label)
        AirphantBuilder(
            store, config=config, format_version=format_version, layout=layout
        ).build_from_documents(corpus.documents, index_name=index_name)
        searcher = AirphantSearcher.open(
            _replay_store(store.backend),
            index_name=index_name,
            coalesce_gap=COALESCE_GAP,
        )
        latencies = []
        results = 0
        for word in words:
            result = searcher.search(word)
            latencies.append(result.latency.total_ms)
            results += result.num_results
        stats = searcher.pipeline.stats
        searcher.close()
        record[label] = {
            "format_version": format_version,
            "layout": layout,
            "superpost_blob_bytes": store.size(f"{index_name}/superposts.bin"),
            "uncompressed_bytes": raw_counter.value(format=label) - raw_before,
            "bytes_fetched_per_query": stats.bytes_fetched / len(words),
            "raw_store_requests": stats.requests_in,
            "pipeline_store_requests": stats.requests_out,
            "p50_ms": _percentile(latencies, 0.50),
            "p99_ms": _percentile(latencies, 0.99),
            "mean_ms": sum(latencies) / len(latencies),
            "total_results": results,
        }
    record["compression_ratio"] = (
        record["v1"]["superpost_blob_bytes"] / record["v2"]["superpost_blob_bytes"]
    )
    record["bytes_per_query_ratio"] = (
        record["v1"]["bytes_fetched_per_query"] / record["v2"]["bytes_fetched_per_query"]
    )
    return record


def _decode_microbench(settings) -> dict:
    """The decode hot-path fix: decoders hand sorted postings to
    ``Superpost.from_sorted``, so ``sorted_postings`` never re-sorts.

    Measures decode + sorted_postings per superpost through the current fast
    path versus a simulation of the old path (rebuild the set, then sort it
    from scratch) over the same v2 payloads.
    """
    store = new_store(seed=1)
    corpus = _generate(store, "hdfs", settings["documents"])
    config = SketchConfig(num_bins=settings["bins"], target_false_positives=1.0, seed=7)
    AirphantBuilder(store, config=config).build_from_documents(
        corpus.documents, index_name="ablation/decode-bench"
    )
    searcher = AirphantSearcher.open(store, index_name="ablation/decode-bench")
    words = sample_query_words(
        profile_documents(corpus.documents), 40, seed=99, mode="occurrence"
    )
    payloads = []
    for word in words:
        for pointer in searcher.mht.pointers_for(word):
            if not pointer.is_empty:
                payloads.append(
                    store.backend.get_range(pointer.blob, pointer.offset, pointer.length)
                )
    table = searcher._string_table  # noqa: SLF001 - bench-only header access
    searcher.close()

    rounds = 3 if smoke_mode() else 10
    started = time.perf_counter()
    for _ in range(rounds):
        for payload in payloads:
            decode_superpost(payload, table, 2).sorted_postings()
    fast_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(rounds):
        for payload in payloads:
            # The pre-fix path: a fresh set, then a from-scratch sort.
            Superpost(set(decode_superpost(payload, table, 2).postings)).sorted_postings()
    resort_seconds = time.perf_counter() - started

    decodes = rounds * len(payloads)
    return {
        "superposts_decoded": decodes,
        "fast_path_us_per_decode": fast_seconds / decodes * 1e6,
        "resort_path_us_per_decode": resort_seconds / decodes * 1e6,
        "speedup": resort_seconds / fast_seconds if fast_seconds else 1.0,
    }


def _run(_catalog):
    settings = _settings()
    by_corpus = {kind: _run_corpus(kind, settings) for kind in settings["corpora"]}
    decode_bench = _decode_microbench(settings)
    return settings, by_corpus, decode_bench


def test_ablation_compression(benchmark, catalog):
    settings, by_corpus, decode_bench = benchmark.pedantic(
        _run, args=(catalog,), rounds=1, iterations=1
    )

    rows = []
    for kind, record in by_corpus.items():
        for label, _, _ in SCENARIOS:
            entry = record[label]
            rows.append(
                [
                    kind,
                    label,
                    entry["superpost_blob_bytes"],
                    round(entry["bytes_fetched_per_query"], 1),
                    entry["pipeline_store_requests"],
                    round(entry["p50_ms"], 2),
                    round(entry["p99_ms"], 2),
                ]
            )
        rows.append(
            [kind, "v1/v2", f"{record['compression_ratio']:.2f}x",
             f"{record['bytes_per_query_ratio']:.2f}x", "", "", ""]
        )
    table = format_table(
        ["corpus", "format", "blob bytes", "bytes/query", "pipeline reqs", "p50 ms", "p99 ms"],
        rows,
    )
    note = (
        "decode hot path: {fast:.1f}us/superpost via from_sorted vs "
        "{slow:.1f}us with the old re-sort ({speedup:.2f}x)".format(
            fast=decode_bench["fast_path_us_per_decode"],
            slow=decode_bench["resort_path_us_per_decode"],
            speedup=decode_bench["speedup"],
        )
    )
    save_result("ablation_compression", table + "\n" + note)
    save_json(
        "BENCH_compression",
        {
            "experiment": "compression_ablation",
            "smoke_mode": smoke_mode(),
            "documents_per_corpus": settings["documents"],
            "queries": settings["queries"],
            "coalesce_gap": COALESCE_GAP,
            "by_corpus": by_corpus,
            "decode_microbench": decode_bench,
        },
    )

    for kind, record in by_corpus.items():
        # Identical answers in both formats (byte-for-byte the same postings
        # feed the same document fetches).
        assert record["v1"]["total_results"] == record["v2"]["total_results"] > 0
        # The delta codec must shrink the blob and the per-query download.
        assert record["compression_ratio"] > 1.0, kind
        assert record["bytes_per_query_ratio"] > 1.0, kind
        # The co-access layout must not cost physical requests, and the
        # smaller/denser format must not cost tail latency (identical
        # latency-model seeds make the replays directly comparable).
        assert (
            record["v2"]["pipeline_store_requests"]
            <= record["v1"]["pipeline_store_requests"]
        ), kind
        assert record["v2"]["p99_ms"] <= record["v1"]["p99_ms"] * 1.05, kind

    # The headline acceptance number: >= 1.5x smaller superposts on at least
    # two fig06 corpora (smoke corpora are tiny — offsets short — so the
    # full-size threshold only applies to the real run).
    threshold = 1.2 if smoke_mode() else 1.5
    ratios = [record["compression_ratio"] for record in by_corpus.values()]
    assert sum(ratio >= threshold for ratio in ratios) >= 2

    # The decode fast path must actually beat the old re-sorting decode.
    assert decode_bench["speedup"] > 1.0

    benchmark.extra_info["compression_ratios"] = {
        kind: round(record["compression_ratio"], 3) for kind, record in by_corpus.items()
    }
