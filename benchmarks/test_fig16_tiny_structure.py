"""Figure 16: tiny IoU Sketch structures on Cranfield.

A restrictive sweep (B in 1000..3000, L in 1..16) on the Cranfield corpus,
measuring false positives, search latency, lookup latency, and storage usage.
Key shapes: a U-shaped false-positive curve in L for fixed B, storage growing
sub-linearly in L (hash collisions merge postings), and lookup latency
growing with L but far more slowly than 16x thanks to concurrent fetches.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.baselines.airphant import AirphantEngine
from repro.bench.harness import LatencyStats
from repro.bench.tables import format_series
from repro.core.analysis import expected_false_positives
from repro.core.config import SketchConfig
from repro.workloads.queries import sample_query_words

BIN_BUDGETS = [1000, 2000, 3000]
LAYER_COUNTS = [1, 2, 4, 8, 16]
QUERIES = 12


def _run(catalog):
    corpus = catalog.corpus("cranfield")
    profile = catalog.profile("cranfield")
    words = sample_query_words(profile, QUERIES, seed=41)

    false_positives: dict[int, list[float]] = {}
    search_ms: dict[int, list[float]] = {}
    lookup_ms: dict[int, list[float]] = {}
    storage: dict[int, list[int]] = {}
    for num_bins in BIN_BUDGETS:
        false_positives[num_bins] = []
        search_ms[num_bins] = []
        lookup_ms[num_bins] = []
        storage[num_bins] = []
        for layers in LAYER_COUNTS:
            config = SketchConfig(num_bins=num_bins, num_layers=layers, seed=13)
            engine = AirphantEngine(
                catalog.store, index_name=f"fig16/b{num_bins}-l{layers}", config=config
            )
            engine.build(corpus.documents)
            engine.initialize()
            results = [engine.search(word, top_k=10) for word in words]
            lookups = [engine.lookup_postings(word)[1] for word in words]
            false_positives[num_bins].append(
                expected_false_positives(layers, num_bins, profile)
            )
            search_ms[num_bins].append(
                LatencyStats.from_latencies([r.latency_ms for r in results]).mean_ms
            )
            lookup_ms[num_bins].append(
                LatencyStats.from_latencies([l.lookup_ms for l in lookups]).mean_ms
            )
            storage[num_bins].append(engine.index_storage_bytes())
    return false_positives, search_ms, lookup_ms, storage


def test_fig16_tiny_structures_on_cranfield(benchmark, catalog):
    false_positives, search_ms, lookup_ms, storage = benchmark.pedantic(
        _run, args=(catalog,), rounds=1, iterations=1
    )

    sections = [
        ("(a) expected false positives", false_positives),
        ("(b) average search latency (ms)", search_ms),
        ("(c) average lookup latency (ms)", lookup_ms),
        ("(d) index storage (bytes)", storage),
    ]
    lines: list[str] = []
    for title, data in sections:
        lines.append(title)
        lines += [format_series(f"B={b}", LAYER_COUNTS, data[b]) for b in BIN_BUDGETS]
        lines.append("")
    save_result("fig16_tiny_structure_cranfield", "\n".join(lines))

    for num_bins in BIN_BUDGETS:
        fp = false_positives[num_bins]
        # For a fixed B there is an interior optimum L*: the error first drops...
        assert min(fp) < fp[0]
        best_index = fp.index(min(fp))
        # ...and rises again (or stays flat) past the optimum for the smallest B.
        if num_bins == BIN_BUDGETS[0]:
            assert fp[-1] > min(fp)
        # Lookup latency grows with L but much more slowly than proportionally
        # (concurrent fetches), as the paper highlights for L = 16.
        assert lookup_ms[num_bins][-1] < 16 * lookup_ms[num_bins][0]
        # Storage grows with L but sub-linearly.
        assert storage[num_bins][-1] > storage[num_bins][0]
        assert storage[num_bins][-1] < 16 * storage[num_bins][0]
    # More bins means fewer false positives at every L.
    for index in range(len(LAYER_COUNTS)):
        assert (
            false_positives[BIN_BUDGETS[-1]][index]
            <= false_positives[BIN_BUDGETS[0]][index] + 1e-9
        )
