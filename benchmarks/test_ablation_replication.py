"""Ablation: hedged (L+) superpost requests under straggler injection.

Section IV-G: because the slowest of the L parallel requests defines lookup
latency, occasional stragglers inflate the tail.  Over-provisioning layers
and waiting for only the fastest L keeps the tail flat at the cost of a few
extra (later-filtered) false positives.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_result
from repro.bench.tables import format_table
from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.search.replication import HedgingPolicy
from repro.search.searcher import AirphantSearcher
from repro.storage.latency import AffineLatencyModel
from repro.storage.simulated import SimulatedCloudStore
from repro.workloads.logs import generate_log_corpus
from repro.workloads.queries import sample_query_words
from repro.profiling.profiler import profile_documents

QUERIES = 60


def _run():
    # A store with a pronounced long tail: 5% of requests are 20x slower.
    store = SimulatedCloudStore(
        latency_model=AffineLatencyModel(
            jitter_sigma=0.05, straggler_probability=0.05, straggler_multiplier=20.0, seed=59
        )
    )
    corpus = generate_log_corpus(store, "hdfs", num_documents=8000, seed=61)
    profile = profile_documents(corpus.documents)
    # Over-provisioned sketch: L+ = 4 layers where 2 would meet the target.
    config = SketchConfig(num_bins=2048, num_layers=4, seed=19)
    AirphantBuilder(store, config=config).build_from_documents(
        corpus.documents, index_name="ablation/hedge"
    )
    words = sample_query_words(profile, QUERIES, seed=67)

    plain = AirphantSearcher.open(store, index_name="ablation/hedge")
    hedged = AirphantSearcher.open(
        store, index_name="ablation/hedge", hedging=HedgingPolicy(drop_slowest=2)
    )

    def run(searcher):
        latencies, false_positives = [], []
        for word in words:
            result = searcher.search(word, top_k=10)
            latencies.append(result.latency.lookup_ms)
            false_positives.append(result.false_positive_count)
        return latencies, false_positives

    return run(plain), run(hedged)


def test_ablation_hedged_requests(benchmark):
    (plain_ms, plain_fp), (hedged_ms, hedged_fp) = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    rows = [
        [
            "wait for all L+ layers",
            float(np.mean(plain_ms)),
            float(np.percentile(plain_ms, 95)),
            float(np.mean(plain_fp)),
        ],
        [
            "hedged: drop 2 slowest",
            float(np.mean(hedged_ms)),
            float(np.percentile(hedged_ms, 95)),
            float(np.mean(hedged_fp)),
        ],
    ]
    table = format_table(
        ["strategy", "mean lookup ms", "p95 lookup ms", "false positives / query"], rows
    )
    save_result("ablation_replication", table)

    # Hedging shrinks the straggler-dominated tail...
    assert rows[1][2] < rows[0][2]
    assert rows[1][1] <= rows[0][1] * 1.05
    # ...and never loses recall (false positives may rise slightly; they are
    # filtered during document retrieval anyway).
    assert rows[1][3] >= 0
