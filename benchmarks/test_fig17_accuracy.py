"""Figure 17: effect of a tighter accuracy constraint F0 on L* and latency.

Dropping F0 from 1.0 to 0.01 to 0.0001 only increases the optimal number of
layers slightly (the expected false positives decrease exponentially in L),
and consequently search / lookup latencies grow only mildly.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.baselines.airphant import AirphantEngine
from repro.bench.harness import LatencyStats
from repro.bench.tables import format_table
from repro.core.config import SketchConfig
from repro.core.optimizer import minimize_layers
from repro.workloads.queries import sample_query_words

ACCURACY_TARGETS = [1.0, 0.01, 0.0001]
NUM_BINS = 4096
QUERIES = 15


def _run(catalog):
    corpus = catalog.corpus("hdfs")
    profile = catalog.profile("hdfs")
    words = sample_query_words(profile, QUERIES, seed=43)
    rows = []
    for target in ACCURACY_TARGETS:
        optimum = minimize_layers(NUM_BINS, target, profile)
        config = SketchConfig(
            num_bins=NUM_BINS, target_false_positives=target, seed=17
        )
        engine = AirphantEngine(
            catalog.store, index_name=f"fig17/f{target}", config=config
        )
        engine.build(corpus.documents)
        engine.initialize()
        searches = [engine.search(word, top_k=10) for word in words]
        lookups = [engine.lookup_postings(word)[1] for word in words]
        rows.append(
            {
                "target": target,
                "layers": optimum.num_layers,
                "search_ms": LatencyStats.from_latencies(
                    [r.latency_ms for r in searches]
                ).mean_ms,
                "lookup_ms": LatencyStats.from_latencies(
                    [l.lookup_ms for l in lookups]
                ).mean_ms,
            }
        )
    return rows


def test_fig17_accuracy_constraint(benchmark, catalog):
    rows = benchmark.pedantic(_run, args=(catalog,), rounds=1, iterations=1)

    table = format_table(
        ["F0", "optimal layers L*", "search ms", "lookup ms"],
        [[row["target"], row["layers"], row["search_ms"], row["lookup_ms"]] for row in rows],
    )
    save_result("fig17_accuracy_constraint", table)

    layers = [row["layers"] for row in rows]
    # Tightening the constraint by four orders of magnitude adds only a couple
    # of layers (exponential error decay), exactly the paper's observation.
    assert layers == sorted(layers)
    assert layers[-1] - layers[0] <= 3
    # Latencies grow only mildly with the tighter constraint.
    assert rows[-1]["search_ms"] < 2.5 * rows[0]["search_ms"]
    assert rows[-1]["lookup_ms"] < 2.5 * rows[0]["lookup_ms"]
