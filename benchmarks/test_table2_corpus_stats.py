"""Table II: corpus statistics (#documents, #terms, #words, sigma_X).

The paper's table characterizes each corpus.  Our corpora are scaled down,
so absolute counts differ; the *relationships* that matter to the index
(short log lines vs long abstracts, Zipf-vs-uniform vocabularies, the
ordering of sigma_X across corpora) must still hold.
"""

from __future__ import annotations

from benchmarks.conftest import CORPUS_SIZES, save_result
from repro.bench.tables import format_table


def _collect_stats(catalog) -> dict[str, dict[str, float]]:
    stats = {}
    for name in CORPUS_SIZES:
        profile = catalog.profile(name)
        stats[name] = {
            "documents": profile.num_documents,
            "terms": profile.num_terms,
            "words": profile.num_words,
            "sigma_x": profile.sigma_x(),
        }
    return stats


def test_table2_corpus_statistics(benchmark, catalog):
    stats = benchmark.pedantic(_collect_stats, args=(catalog,), rounds=1, iterations=1)
    rows = [
        [name, values["documents"], values["terms"], values["words"], values["sigma_x"]]
        for name, values in stats.items()
    ]
    table = format_table(["corpus", "#documents", "#terms", "#words", "sigma_X"], rows)
    save_result("table2_corpus_stats", table)

    # diag: one word per document -> #documents == #terms == #words, sigma_X ~ 1.
    diag = stats["diag"]
    assert diag["documents"] == diag["terms"] == diag["words"]
    assert abs(diag["sigma_x"] - 1.0) < 0.05

    # zipf under-generates distinct words relative to unif (coupon collector).
    assert stats["zipf"]["terms"] < stats["unif"]["terms"]

    # Log corpora: many documents, far fewer distinct terms (template words),
    # matching the HDFS/Windows/Spark rows of Table II.
    for log_corpus in ("hdfs", "windows", "spark"):
        assert stats[log_corpus]["terms"] < stats[log_corpus]["documents"]

    # Cranfield: long documents -> words >> documents, and a sigma_X below the
    # synthetic corpora (0.51 in the paper, the smallest in the table).
    assert stats["cranfield"]["words"] > 20 * stats["cranfield"]["documents"]
    assert stats["cranfield"]["sigma_x"] < stats["diag"]["sigma_x"]
