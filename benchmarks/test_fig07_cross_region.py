"""Figures 7, 12, 13: cross-region end-to-end search latencies.

The storage bucket stays in the US; the compute node moves to Europe and
Asia.  Every engine slows down as the round-trip time grows; the paper's
point is that Airphant's absolute latency stays lowest and its slowdown is no
worse than the hierarchical baselines'.  Figure 7 reports Windows; Figures 12
and 13 report all datasets from London and Singapore — we sweep a
representative subset to keep the benchmark quick.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DEFAULT_BENCH_CONFIG, save_result
from repro.bench.harness import build_standard_engines, run_workload
from repro.bench.tables import format_table
from repro.storage.latency import REGION_PROFILES
from repro.workloads.queries import QueryWorkload

REGIONS = ["us-central1", "europe-west2", "asia-southeast1"]
ENGINES = ["Lucene", "Elasticsearch", "SQLite", "HashTable", "Airphant"]
DATASETS = ["windows", "hdfs"]  # Figure 7 uses Windows; HDFS covers Figs 12/13 shape.
QUERIES = 20


def _run_dataset(catalog, dataset: str):
    corpus = catalog.corpus(dataset)
    profile = catalog.profile(dataset)
    workload = QueryWorkload.from_profile(profile, num_queries=QUERIES, top_k=10, seed=17)
    # Build all indexes once, in the US, against the shared backend.
    build_standard_engines(
        catalog.store,
        corpus.documents,
        config=DEFAULT_BENCH_CONFIG,
        engine_names=ENGINES,
        corpus_name=f"fig07/{dataset}",
    )
    results: dict[str, dict[str, float]] = {}
    base_model = catalog.store.latency_model
    for region in REGIONS:
        # The data never moves; only the compute node's view of the network does.
        regional_store = catalog.store.with_latency_model(base_model.with_region(region))
        regional_engines = build_standard_engines(
            regional_store,
            corpus.documents,
            config=DEFAULT_BENCH_CONFIG,
            engine_names=ENGINES,
            corpus_name=f"fig07/{dataset}",
            skip_build=True,
        )
        results[region] = {
            name: run_workload(engine, workload).stats.mean_ms
            for name, engine in regional_engines.items()
        }
    return results


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig07_cross_region_latency(benchmark, catalog, dataset):
    results = benchmark.pedantic(_run_dataset, args=(catalog, dataset), rounds=1, iterations=1)

    rows = [[region] + [results[region][name] for name in ENGINES] for region in REGIONS]
    table = format_table(["region"] + ENGINES, rows)
    save_result(f"fig07_cross_region_{dataset}", table)

    us = results["us-central1"]
    asia = results["asia-southeast1"]
    # Latency grows with distance for every engine.
    for name in ENGINES:
        assert asia[name] > us[name]
    # Airphant keeps the lowest (or tied-lowest) latency in every region among
    # the wait-heavy engines, and its slowdown is no worse than Lucene's.
    for region in REGIONS:
        assert results[region]["Airphant"] < results[region]["Lucene"]
        assert results[region]["Airphant"] < results[region]["Elasticsearch"]
    airphant_slowdown = asia["Airphant"] / us["Airphant"]
    lucene_slowdown = asia["Lucene"] / us["Lucene"]
    assert airphant_slowdown <= lucene_slowdown * 1.25
    rtt_multiplier = REGION_PROFILES["asia-southeast1"].rtt_multiplier
    assert airphant_slowdown <= rtt_multiplier * 1.2
