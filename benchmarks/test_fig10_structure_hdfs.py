"""Figure 10: effect of the IoU Sketch structure (B, L) on HDFS.

The paper varies the bin budget B and layer count L on the HDFS corpus and
measures (a) expected false positives, (b) end-to-end search latency, and
(c) term-lookup latency.  Observations to reproduce:

* false positives collapse from enormous at L = 1 to ~0 within a few layers;
* the optimizer picks a small L* (2 in the paper) for F0 = 1;
* search latency is worst at L = 1 (false-positive filtering) and grows again
  slowly for large L (more superposts to fetch per query);
* lookup latency grows with L.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.bench.harness import LatencyStats
from repro.bench.tables import format_series
from repro.baselines.airphant import AirphantEngine
from repro.core.analysis import expected_false_positives
from repro.core.config import SketchConfig
from repro.core.optimizer import minimize_layers
from repro.workloads.queries import sample_query_words

#: Scaled sweep: the paper uses B in {50k..400k} for ~11M documents; the
#: scaled HDFS corpus has 15k documents, so the bin budgets scale accordingly.
BIN_BUDGETS = [512, 1024, 2048, 4096]
LAYER_COUNTS = [1, 2, 4, 8, 16]
QUERIES = 15


def _run(catalog):
    corpus = catalog.corpus("hdfs")
    profile = catalog.profile("hdfs")
    query_words = sample_query_words(profile, QUERIES, seed=23)

    expected: dict[int, list[float]] = {}
    search_ms: dict[int, list[float]] = {}
    lookup_ms: dict[int, list[float]] = {}
    for num_bins in BIN_BUDGETS:
        expected[num_bins] = [
            expected_false_positives(layers, num_bins, profile) for layers in LAYER_COUNTS
        ]
        search_ms[num_bins] = []
        lookup_ms[num_bins] = []
        for layers in LAYER_COUNTS:
            config = SketchConfig(num_bins=num_bins, num_layers=layers, seed=9)
            engine = AirphantEngine(
                catalog.store,
                index_name=f"fig10/hdfs-b{num_bins}-l{layers}",
                config=config,
            )
            engine.build(corpus.documents)
            engine.initialize()
            searches = [engine.search(word, top_k=10) for word in query_words]
            lookups = [engine.lookup_postings(word)[1] for word in query_words]
            search_ms[num_bins].append(
                LatencyStats.from_latencies([result.latency_ms for result in searches]).mean_ms
            )
            lookup_ms[num_bins].append(
                LatencyStats.from_latencies([latency.lookup_ms for latency in lookups]).mean_ms
            )

    optimum = minimize_layers(BIN_BUDGETS[-1], 1.0, profile)
    return expected, search_ms, lookup_ms, optimum


def test_fig10_structure_effects_on_hdfs(benchmark, catalog):
    expected, search_ms, lookup_ms, optimum = benchmark.pedantic(
        _run, args=(catalog,), rounds=1, iterations=1
    )

    lines = ["(a) expected false positives"]
    lines += [format_series(f"B={b}", LAYER_COUNTS, expected[b]) for b in BIN_BUDGETS]
    lines += ["", "(b) average search latency (ms)"]
    lines += [format_series(f"B={b}", LAYER_COUNTS, search_ms[b]) for b in BIN_BUDGETS]
    lines += ["", "(c) average term lookup latency (ms)"]
    lines += [format_series(f"B={b}", LAYER_COUNTS, lookup_ms[b]) for b in BIN_BUDGETS]
    lines += ["", f"optimizer choice at B={BIN_BUDGETS[-1]}, F0=1: L* = {optimum.num_layers}"]
    save_result("fig10_structure_hdfs", "\n".join(lines))

    for num_bins in BIN_BUDGETS:
        # (a) a couple of layers wipe out the single-layer error.
        assert expected[num_bins][1] < 0.25 * expected[num_bins][0]
        assert expected[num_bins][-1] < 1.0
        # (c) lookup latency grows (weakly) with the number of layers.
        assert lookup_ms[num_bins][-1] >= lookup_ms[num_bins][0] * 0.9
    # (b) the single-layer hash table pays for filtering at small B.
    assert search_ms[BIN_BUDGETS[0]][0] > search_ms[BIN_BUDGETS[0]][1]
    # The optimizer picks a small layer count, as in the paper (L* = 2 there).
    assert 1 <= optimum.num_layers <= 4
