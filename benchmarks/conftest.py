"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on
scaled-down corpora (the scale factors are recorded in EXPERIMENTS.md).  The
rendered rows/series are written to ``results/<experiment>.txt`` so they can
be inspected after a run and copied into EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.config import SketchConfig
from repro.profiling.profiler import CorpusProfile, profile_documents
from repro.storage.latency import AffineLatencyModel
from repro.storage.simulated import SimulatedCloudStore
from repro.workloads.cranfield import generate_cranfield
from repro.workloads.logs import generate_log_corpus
from repro.workloads.synthetic import (
    GeneratedCorpus,
    SyntheticSpec,
    generate_diag,
    generate_unif,
    generate_zipf,
)

#: Directory where every benchmark writes its rendered table/series.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Scaled-down corpus sizes (documents) used across the benchmark suite.
CORPUS_SIZES = {
    "diag": 10_000,
    "unif": 10_000,
    "zipf": 10_000,
    "cranfield": 1_398,
    "hdfs": 15_000,
    "windows": 15_000,
    "spark": 15_000,
}

#: Default sketch configuration for the benchmark corpora (the paper's
#: B = 1e5 / F0 = 1 scaled to the smaller corpora).
DEFAULT_BENCH_CONFIG = SketchConfig(num_bins=2048, target_false_positives=1.0, seed=7)


def save_result(name: str, text: str) -> None:
    """Persist the rendered output of one experiment under ``results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def save_json(name: str, payload: object) -> None:
    """Persist a machine-readable experiment record under ``results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def smoke_mode() -> bool:
    """Whether the suite runs in CI smoke mode (tiny corpora, fast)."""
    return os.environ.get("AIRPHANT_BENCH_SMOKE", "") not in ("", "0")


def new_store(seed: int = 1, jitter: float = 0.1) -> SimulatedCloudStore:
    """A fresh simulated cloud store with the benchmark latency model."""
    return SimulatedCloudStore(latency_model=AffineLatencyModel(seed=seed, jitter_sigma=jitter))


def generate_corpus(store: SimulatedCloudStore, name: str) -> GeneratedCorpus:
    """Generate one of the paper's seven corpora (scaled) onto ``store``."""
    size = CORPUS_SIZES[name]
    if name == "diag":
        return generate_diag(store, num_documents=size, name="diag")
    if name == "unif":
        spec = SyntheticSpec(num_documents=size, num_words=size, words_per_document=10)
        return generate_unif(store, spec, name="unif", seed=11)
    if name == "zipf":
        spec = SyntheticSpec(num_documents=size, num_words=size // 2, words_per_document=10)
        return generate_zipf(store, spec, name="zipf", seed=11)
    if name == "cranfield":
        return generate_cranfield(store, num_documents=size, name="cranfield", seed=11)
    return generate_log_corpus(store, name, num_documents=size, name=name, seed=11)


class CorpusCatalog:
    """Lazily generates and caches corpora plus their profiles for a session."""

    def __init__(self) -> None:
        self.store = new_store(seed=1)
        self._corpora: dict[str, GeneratedCorpus] = {}
        self._profiles: dict[str, CorpusProfile] = {}

    def corpus(self, name: str) -> GeneratedCorpus:
        if name not in self._corpora:
            self._corpora[name] = generate_corpus(self.store, name)
        return self._corpora[name]

    def profile(self, name: str) -> CorpusProfile:
        if name not in self._profiles:
            self._profiles[name] = profile_documents(self.corpus(name).documents)
        return self._profiles[name]


@pytest.fixture(scope="session")
def catalog() -> CorpusCatalog:
    """Session-wide corpus catalog shared by all benchmarks."""
    return CorpusCatalog()


@pytest.fixture(scope="session")
def bench_config() -> SketchConfig:
    """Default sketch configuration used by the engine-comparison benchmarks."""
    return DEFAULT_BENCH_CONFIG
