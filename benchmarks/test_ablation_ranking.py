"""Ablation: BM25 top-k ranked retrieval vs unranked membership.

Two questions, one record:

* **Cost** — on the fig06 log corpora, what does ranking add to (or save
  from) query latency and bytes fetched?  Ranked queries score candidates
  from the persisted stats blob and fetch text only for the final top-k, so
  on head-heavy traffic they download *less* than membership queries, which
  must retrieve every candidate to filter false positives.  Both sides
  replay the identical occurrence-weighted workload over identically seeded
  simulated stores.
* **Quality** — on the Cranfield-shaped corpus with synthetic graded
  judgments, how much better is the BM25 ordering than posting order?
  nDCG@10 for both systems, measured by the same ``harness.relevance``
  helpers the regression tests assert on.

The machine-readable record lands in ``results/BENCH_ranking.json`` so
ranking regressions are caught PR over PR.  Set ``AIRPHANT_BENCH_SMOKE=1``
for CI smoke mode (tiny corpora, same quality floors).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from benchmarks.conftest import new_store, save_json, save_result, smoke_mode
from harness.relevance import evaluate_rankings
from repro.bench.tables import format_table
from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.profiling.profiler import profile_documents
from repro.search.searcher import AirphantSearcher
from repro.storage.latency import AffineLatencyModel
from repro.storage.simulated import SimulatedCloudStore
from repro.workloads.cranfield import generate_cranfield, generate_judged_queries
from repro.workloads.logs import generate_log_corpus
from repro.workloads.queries import sample_query_words

#: Ranked result count for the cost comparison (the mode's default k).
RANKED_K = 10

#: CI quality gate, shared with tests/search/test_ranking_quality.py.
NDCG_FLOOR = 0.85
NDCG_MARGIN = 0.05


def _settings():
    if smoke_mode():
        return {
            "corpora": ("hdfs", "zipf"),
            "documents": 1_200,
            "queries": 15,
            "bins": 512,
            "judged_queries": 10,
            "cranfield": dict(num_documents=400, vocabulary_size=1500, words_per_document=60),
            "judged_band": dict(min_df=8, max_df=200, min_matches=8),
        }
    return {
        "corpora": ("hdfs", "windows", "spark", "zipf"),
        "documents": 12_000,
        "queries": 60,
        "bins": 2048,
        "judged_queries": 20,
        "cranfield": {},
        "judged_band": {},
    }


def _generate(store, kind: str, documents: int):
    if kind == "zipf":
        from repro.workloads.synthetic import SyntheticSpec, generate_zipf

        spec = SyntheticSpec(
            num_documents=documents, num_words=documents // 2, words_per_document=10
        )
        return generate_zipf(store, spec, name="ranking-zipf", seed=11)
    return generate_log_corpus(
        store, kind, num_documents=documents, name=f"ranking-{kind}", seed=11
    )


def _replay_store(backend) -> SimulatedCloudStore:
    """A fresh store over the same blobs with identically seeded latencies."""
    return SimulatedCloudStore(
        backend=backend, latency_model=AffineLatencyModel(seed=555, jitter_sigma=0.1)
    )


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _run_corpus(kind: str, settings) -> dict:
    store = new_store(seed=1)
    corpus = _generate(store, kind, settings["documents"])
    profile = profile_documents(corpus.documents)
    config = SketchConfig(num_bins=settings["bins"], target_false_positives=1.0, seed=7)
    index_name = f"ablation/ranking-{kind}"
    AirphantBuilder(store, config=config).build_from_documents(
        corpus.documents, index_name=index_name
    )
    words = sample_query_words(profile, settings["queries"], seed=71, mode="occurrence")

    record: dict[str, dict] = {}
    for label in ("membership", "topk_bm25"):
        searcher = AirphantSearcher.open(_replay_store(store.backend), index_name=index_name)
        latencies: list[float] = []
        bytes_fetched = 0
        results = 0
        subset_violations = 0
        membership_refs: list[set] = record.get("membership_refs", [])
        for position, word in enumerate(words):
            if label == "membership":
                result = searcher.search(word)
                membership_refs.append({d.ref for d in result.documents})
            else:
                result = searcher.search_topk(word, k=RANKED_K)
                if not {d.ref for d in result.documents} <= membership_refs[position]:
                    subset_violations += 1
            latencies.append(result.latency.total_ms)
            bytes_fetched += result.latency.bytes_fetched
            results += result.num_results
        if label == "membership":
            record["membership_refs"] = membership_refs
        searcher.close()
        record[label] = {
            "bytes_fetched_per_query": bytes_fetched / len(words),
            "p50_ms": _percentile(latencies, 0.50),
            "p99_ms": _percentile(latencies, 0.99),
            "mean_ms": sum(latencies) / len(latencies),
            "total_results": results,
            "subset_violations": subset_violations,
        }
    record.pop("membership_refs")
    record["bytes_per_query_ratio"] = (
        record["membership"]["bytes_fetched_per_query"]
        / max(record["topk_bm25"]["bytes_fetched_per_query"], 1e-9)
    )
    return record


def _run_quality(settings) -> dict:
    """Cranfield quality: BM25 order vs posting order, same judged queries."""
    store = new_store(seed=1)
    corpus = generate_cranfield(store, seed=11, **settings["cranfield"])
    queries = generate_judged_queries(
        corpus, num_queries=settings["judged_queries"], seed=11, **settings["judged_band"]
    )
    AirphantBuilder(store).build_from_documents(corpus.documents, index_name="ablation/ranking-cran")
    searcher = AirphantSearcher.open(store, index_name="ablation/ranking-cran")
    line_numbers = {document.ref: line for line, document in enumerate(corpus.documents)}
    bm25_rankings, baseline_rankings, judgment_maps = [], [], []
    for judged in queries:
        ranked = searcher.search_topk(judged.query, k=RANKED_K)
        bm25_rankings.append([line_numbers[d.ref] for d in ranked.documents])
        membership = searcher.search(judged.query)
        baseline_rankings.append([line_numbers[d.ref] for d in membership.documents][:RANKED_K])
        judgment_maps.append(judged.judgments)
    searcher.close()
    return {
        "num_judged_queries": len(queries),
        "bm25": evaluate_rankings(bm25_rankings, judgment_maps, k=RANKED_K),
        "membership_baseline": evaluate_rankings(baseline_rankings, judgment_maps, k=RANKED_K),
    }


def _run(_catalog):
    settings = _settings()
    by_corpus = {kind: _run_corpus(kind, settings) for kind in settings["corpora"]}
    quality = _run_quality(settings)
    return settings, by_corpus, quality


def test_ablation_ranking(benchmark, catalog):
    settings, by_corpus, quality = benchmark.pedantic(
        _run, args=(catalog,), rounds=1, iterations=1
    )

    rows = []
    for kind, record in by_corpus.items():
        for label in ("membership", "topk_bm25"):
            entry = record[label]
            rows.append(
                [
                    kind,
                    label,
                    round(entry["bytes_fetched_per_query"], 1),
                    round(entry["p50_ms"], 2),
                    round(entry["p99_ms"], 2),
                    entry["total_results"],
                ]
            )
        rows.append(
            [kind, "bytes ratio", f"{record['bytes_per_query_ratio']:.2f}x", "", "", ""]
        )
    table = format_table(
        ["corpus", "mode", "bytes/query", "p50 ms", "p99 ms", "results"], rows
    )
    note = (
        "cranfield quality over {n} judged queries: nDCG@10 {bm:.3f} (bm25) vs "
        "{base:.3f} (posting order)".format(
            n=quality["num_judged_queries"],
            bm=quality["bm25"][f"ndcg@{RANKED_K}"],
            base=quality["membership_baseline"][f"ndcg@{RANKED_K}"],
        )
    )
    save_result("ablation_ranking", table + "\n" + note)
    save_json(
        "BENCH_ranking",
        {
            "experiment": "ranking_ablation",
            "smoke_mode": smoke_mode(),
            "documents_per_corpus": settings["documents"],
            "queries": settings["queries"],
            "ranked_k": RANKED_K,
            "by_corpus": by_corpus,
            "cranfield_quality": quality,
        },
    )

    for kind, record in by_corpus.items():
        # The ranked mode's answer set is always contained in membership's.
        assert record["topk_bm25"]["subset_violations"] == 0, kind
        assert 0 < record["topk_bm25"]["total_results"] <= record["membership"]["total_results"]
        # Fetch-only-the-winners: ranked queries must move fewer bytes than
        # membership on head-heavy traffic (candidates >> k).
        assert record["bytes_per_query_ratio"] > 1.0, kind

    # The same quality gate CI asserts in tests/search/test_ranking_quality.py.
    bm25_ndcg = quality["bm25"][f"ndcg@{RANKED_K}"]
    baseline_ndcg = quality["membership_baseline"][f"ndcg@{RANKED_K}"]
    assert bm25_ndcg >= NDCG_FLOOR
    assert bm25_ndcg >= baseline_ndcg + NDCG_MARGIN

    benchmark.extra_info["bytes_per_query_ratios"] = {
        kind: round(record["bytes_per_query_ratio"], 3) for kind, record in by_corpus.items()
    }
    benchmark.extra_info["ndcg_at_10"] = {"bm25": round(bm25_ndcg, 4), "baseline": round(baseline_ndcg, 4)}
