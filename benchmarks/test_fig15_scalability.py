"""Figure 15: scalability with corpus size (latency and index storage).

The paper sweeps synthetic corpora from 10^3 to 10^8 documents and observes:

* for small corpora, the baselines (whose term indexes fit in cache) are
  faster, while Airphant's advantage grows with corpus size;
* index storage grows roughly linearly for every engine on a log-log scale,
  with Airphant using more storage than SQLite/Lucene (up to ~2.85x).

The sweep here covers 10^2.5 .. 10^4.5 documents of the zipf family.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.baselines.airphant import AirphantEngine
from repro.baselines.lucene_like import LuceneLikeEngine
from repro.baselines.sqlite_like import SQLiteLikeEngine
from repro.bench.harness import LatencyStats
from repro.bench.tables import format_series
from repro.core.config import SketchConfig
from repro.profiling.profiler import profile_documents
from repro.workloads.queries import sample_query_words
from repro.workloads.synthetic import SyntheticSpec, generate_zipf

CORPUS_SIZES = [300, 1_000, 3_000, 10_000, 30_000]
QUERIES = 12


def _engines_for(store, documents, corpus_bytes: int, tag: str):
    """The three engines Figure 15 compares, with caches scaled like Fig. 6."""
    config = SketchConfig(
        num_bins=max(256, len(documents) // 4), target_false_positives=1.0, seed=5
    )
    engines = {
        "SQLite": SQLiteLikeEngine(
            store, index_name=f"fig15/{tag}/sqlite", cache_bytes=max(2048, corpus_bytes // 200)
        ),
        "Lucene": LuceneLikeEngine(
            store, index_name=f"fig15/{tag}/lucene", cache_bytes=max(4096, corpus_bytes // 100)
        ),
        "Airphant": AirphantEngine(store, index_name=f"fig15/{tag}/airphant", config=config),
    }
    for engine in engines.values():
        engine.build(documents)
        engine.initialize()
    return engines


def _run(catalog):
    latencies: dict[str, list[float]] = {"SQLite": [], "Lucene": [], "Airphant": []}
    storage: dict[str, list[int]] = {"SQLite": [], "Lucene": [], "Airphant": []}
    for size in CORPUS_SIZES:
        spec = SyntheticSpec(num_documents=size, num_words=max(100, size), words_per_document=10)
        corpus = generate_zipf(catalog.store, spec, name=f"fig15-zipf-{size}", seed=31)
        profile = profile_documents(corpus.documents)
        corpus_bytes = sum(document.length for document in corpus.documents)
        engines = _engines_for(catalog.store, corpus.documents, corpus_bytes, f"zipf-{size}")
        words = sample_query_words(profile, QUERIES, seed=37)
        for name, engine in engines.items():
            per_query = [engine.search(word, top_k=10).latency_ms for word in words]
            latencies[name].append(LatencyStats.from_latencies(per_query).mean_ms)
            storage[name].append(engine.index_storage_bytes())
    return latencies, storage


def test_fig15_scalability_with_corpus_size(benchmark, catalog):
    latencies, storage = benchmark.pedantic(_run, args=(catalog,), rounds=1, iterations=1)

    lines = ["average search latency (ms) vs corpus size"]
    lines += [format_series(name, CORPUS_SIZES, values) for name, values in latencies.items()]
    lines += ["", "index storage (bytes) vs corpus size"]
    lines += [format_series(name, CORPUS_SIZES, values) for name, values in storage.items()]
    save_result("fig15_scalability_zipf", "\n".join(lines))

    # Airphant's relative advantage grows with corpus size: at the largest
    # size it clearly beats both baselines...
    largest = -1
    assert latencies["Airphant"][largest] < latencies["Lucene"][largest]
    assert latencies["Airphant"][largest] < latencies["SQLite"][largest] * 1.05
    # ...while at the smallest size the cached baselines are competitive
    # (within 2x of Airphant, often faster — the paper's "room for improvement").
    smallest = 0
    assert min(latencies["Lucene"][smallest], latencies["SQLite"][smallest]) < 2 * latencies[
        "Airphant"
    ][smallest]
    # Index storage grows monotonically with corpus size for every engine, and
    # Airphant uses more storage than the exact inverted indexes (<= ~3x).
    for name, values in storage.items():
        assert values == sorted(values)
    assert storage["Airphant"][largest] > storage["SQLite"][largest] * 0.8
    assert storage["Airphant"][largest] < storage["Lucene"][largest] * 4.0
