"""Figure 15: scalability with corpus size — and with cluster size.

The paper sweeps synthetic corpora from 10^3 to 10^8 documents and observes:

* for small corpora, the baselines (whose term indexes fit in cache) are
  faster, while Airphant's advantage grows with corpus size;
* index storage grows roughly linearly for every engine on a log-log scale,
  with Airphant using more storage than SQLite/Lucene (up to ~2.85x).

The sweep here covers 10^2.5 .. 10^4.5 documents of the zipf family.

The second half scales the *query tier* instead of the corpus: the same
sharded index is served by 1, 4, and 16 real HTTP searcher nodes behind the
cluster :class:`~repro.cluster.router.QueryRouter`, with every store read
paying a real (slept) straggler delay so per-node I/O capacity is the
bottleneck, exactly like a bucket-backed deployment.  Adding stateless
nodes must raise sustained QPS and cut tail latency; the measured per-node
throughput then feeds the deployment simulator's fixed-fleet vs autoscaling
cost projection (the paper's decoupled-compute argument).  The record
lands in ``results/BENCH_cluster.json``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict

from benchmarks.conftest import save_json, save_result, smoke_mode
from repro.baselines.airphant import AirphantEngine
from repro.baselines.lucene_like import LuceneLikeEngine
from repro.baselines.sqlite_like import SQLiteLikeEngine
from repro.bench.harness import LatencyStats
from repro.bench.tables import format_series, format_table
from repro.cluster.router import http_transport
from repro.core.config import SketchConfig
from repro.deploy.simulator import AutoscalingPolicy, DeploymentSimulator
from repro.deploy.workload import WorkloadTrace
from repro.profiling.profiler import profile_documents
from repro.service.api import SearchRequest
from repro.service.config import ServiceConfig
from repro.service.facade import AirphantService
from repro.service.http import create_server
from repro.storage.faults import FlakyStore
from repro.storage.memory import InMemoryObjectStore
from repro.workloads.logs import generate_log_corpus
from repro.workloads.queries import sample_query_words
from repro.workloads.synthetic import SyntheticSpec, generate_zipf

CORPUS_SIZES = [300, 1_000, 3_000, 10_000, 30_000]
QUERIES = 12


def _engines_for(store, documents, corpus_bytes: int, tag: str):
    """The three engines Figure 15 compares, with caches scaled like Fig. 6."""
    config = SketchConfig(
        num_bins=max(256, len(documents) // 4), target_false_positives=1.0, seed=5
    )
    engines = {
        "SQLite": SQLiteLikeEngine(
            store, index_name=f"fig15/{tag}/sqlite", cache_bytes=max(2048, corpus_bytes // 200)
        ),
        "Lucene": LuceneLikeEngine(
            store, index_name=f"fig15/{tag}/lucene", cache_bytes=max(4096, corpus_bytes // 100)
        ),
        "Airphant": AirphantEngine(store, index_name=f"fig15/{tag}/airphant", config=config),
    }
    for engine in engines.values():
        engine.build(documents)
        engine.initialize()
    return engines


def _run(catalog):
    latencies: dict[str, list[float]] = {"SQLite": [], "Lucene": [], "Airphant": []}
    storage: dict[str, list[int]] = {"SQLite": [], "Lucene": [], "Airphant": []}
    for size in CORPUS_SIZES:
        spec = SyntheticSpec(num_documents=size, num_words=max(100, size), words_per_document=10)
        corpus = generate_zipf(catalog.store, spec, name=f"fig15-zipf-{size}", seed=31)
        profile = profile_documents(corpus.documents)
        corpus_bytes = sum(document.length for document in corpus.documents)
        engines = _engines_for(catalog.store, corpus.documents, corpus_bytes, f"zipf-{size}")
        words = sample_query_words(profile, QUERIES, seed=37)
        for name, engine in engines.items():
            per_query = [engine.search(word, top_k=10).latency_ms for word in words]
            latencies[name].append(LatencyStats.from_latencies(per_query).mean_ms)
            storage[name].append(engine.index_storage_bytes())
    return latencies, storage


def test_fig15_scalability_with_corpus_size(benchmark, catalog):
    latencies, storage = benchmark.pedantic(_run, args=(catalog,), rounds=1, iterations=1)

    lines = ["average search latency (ms) vs corpus size"]
    lines += [format_series(name, CORPUS_SIZES, values) for name, values in latencies.items()]
    lines += ["", "index storage (bytes) vs corpus size"]
    lines += [format_series(name, CORPUS_SIZES, values) for name, values in storage.items()]
    save_result("fig15_scalability_zipf", "\n".join(lines))

    # Airphant's relative advantage grows with corpus size: at the largest
    # size it clearly beats both baselines...
    largest = -1
    assert latencies["Airphant"][largest] < latencies["Lucene"][largest]
    assert latencies["Airphant"][largest] < latencies["SQLite"][largest] * 1.05
    # ...while at the smallest size the cached baselines are competitive
    # (within 2x of Airphant, often faster — the paper's "room for improvement").
    smallest = 0
    assert min(latencies["Lucene"][smallest], latencies["SQLite"][smallest]) < 2 * latencies[
        "Airphant"
    ][smallest]
    # Index storage grows monotonically with corpus size for every engine.
    # Since the v2 delta codec, Airphant's superpost blobs come in *below*
    # the exact inverted indexes but stay the same order of magnitude (the
    # sketch still stores every chain's unioned postings).
    for name, values in storage.items():
        assert values == sorted(values)
    assert storage["Airphant"][largest] > storage["SQLite"][largest] * 0.4
    assert storage["Airphant"][largest] < storage["Lucene"][largest] * 4.0


# -- cluster scalability ---------------------------------------------------------------


def _cluster_settings():
    if smoke_mode():
        return {
            "documents": 400,
            "num_shards": 4,
            "node_counts": (1, 2),
            "clients": 4,
            "queries_per_client": 2,
            "slow_ms": 10.0,
        }
    return {
        "documents": 2_000,
        "num_shards": 16,
        "node_counts": (1, 4, 16),
        "clients": 8,
        "queries_per_client": 4,
        "slow_ms": 100.0,
    }


#: Per-node query-side config: a *narrow* fetch pool and no caches, so a
#: node's capacity is its read concurrency times the store's service rate —
#: the bucket-backed regime where every query pays real (GIL-releasing)
#: storage waits and scale-out adds read capacity, not just CPU.
def _node_config() -> ServiceConfig:
    return ServiceConfig(
        max_concurrency=1,  # sharded searchers scale this by num_shards
        query_cache_size=0,
        read_cache_bytes=0,
        probe_interval_s=0,
    )


def _measure_fleet(backend, num_nodes, queries, settings):
    """Sustained QPS and latency of ``num_nodes`` real HTTP nodes + router.

    Every node wraps the shared bucket in its own :class:`FlakyStore` with
    ``slow_rate=1.0``: each store read really sleeps, so a node's capacity
    is bounded by its I/O concurrency and the fleet's by the node count —
    the regime where adding stateless searcher nodes should pay off.
    """
    servers = []
    for node_ordinal in range(num_nodes):
        store = FlakyStore(
            backend, slow_rate=1.0, slow_ms=settings["slow_ms"], seed=node_ordinal
        )
        service = AirphantService(store, _node_config())
        server = create_server(service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
    peers = tuple(server.url for server in servers)
    router = AirphantService(
        backend,
        ServiceConfig(peers=peers, shard_timeout_s=60.0, probe_interval_s=0),
    )
    try:
        for server in servers:
            http_transport(
                server.url, "/search", {"query": "warmup", "index": "cluster-logs"}, 60.0
            )
        workload = queries * settings["clients"] * settings["queries_per_client"]

        def one_query(query):
            started = time.perf_counter()
            response = router.search(
                SearchRequest(query=query, index="cluster-logs", top_k=10)
            )
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            assert not response.partial
            return elapsed_ms, response.num_results

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=settings["clients"]) as pool:
            outcomes = list(pool.map(one_query, workload))
        elapsed_s = time.perf_counter() - started
        latencies = [latency for latency, _ in outcomes]
        stats = LatencyStats.from_latencies(latencies)
        return {
            "nodes": num_nodes,
            "queries": len(workload),
            "qps": len(workload) / elapsed_s,
            "mean_ms": stats.mean_ms,
            "p50_ms": stats.p50_ms,
            "p99_ms": stats.p99_ms,
            "total_results": sum(results for _, results in outcomes),
        }
    finally:
        router.close()
        for server in servers:
            server.shutdown()
            server.server_close()


def _run_cluster(settings):
    backend = InMemoryObjectStore()
    corpus = generate_log_corpus(
        backend, "hdfs", num_documents=settings["documents"], name="cluster", seed=29
    )
    builder_service = AirphantService(backend)
    builder_service.build_index(
        "cluster-logs",
        list(corpus.blob_names),
        sketch_config=SketchConfig(num_bins=512, target_false_positives=1.0, seed=7),
        num_shards=settings["num_shards"],
    )
    builder_service.close()
    profile = profile_documents(corpus.documents)
    queries = sample_query_words(profile, 8, seed=41)
    return [
        _measure_fleet(backend, num_nodes, queries, settings)
        for num_nodes in settings["node_counts"]
    ]


def test_fig15_cluster_scalability(benchmark):
    settings = _cluster_settings()
    sweep = benchmark.pedantic(_run_cluster, args=(settings,), rounds=1, iterations=1)

    rows = [
        [
            entry["nodes"],
            round(entry["qps"], 2),
            round(entry["mean_ms"], 1),
            round(entry["p50_ms"], 1),
            round(entry["p99_ms"], 1),
        ]
        for entry in sweep
    ]
    save_result(
        "fig15_cluster_scalability",
        format_table(["nodes", "qps", "mean ms", "p50 ms", "p99 ms"], rows),
    )

    # Project the measured per-node throughput onto the paper's
    # decoupled-deployment cost argument: a peak-provisioned fixed fleet vs
    # an autoscaler following a bursty diurnal trace.
    node_throughput = sweep[0]["qps"]
    peak = node_throughput * max(entry["nodes"] for entry in sweep)
    trace = WorkloadTrace(
        interval_seconds=300.0,
        demand_ops=tuple(
            peak * fraction
            for fraction in (0.05, 0.1, 0.3, 1.0, 0.8, 0.3, 0.1, 0.05)
        ),
    )
    simulator = DeploymentSimulator(node_throughput_ops=node_throughput)
    projection = {
        name: {
            **asdict(report),
            "unserved_fraction": report.unserved_fraction,
            "late_fraction": report.late_fraction,
        }
        for name, report in simulator.compare(
            trace, AutoscalingPolicy(min_nodes=1, headroom=0.1)
        ).items()
    }

    save_json(
        "BENCH_cluster",
        {
            "experiment": "cluster_scalability",
            "corpus": {"kind": "hdfs", "documents": settings["documents"]},
            "num_shards": settings["num_shards"],
            "replication_factor": ServiceConfig.replication_factor,
            "clients": settings["clients"],
            "store_read_sleep_ms": settings["slow_ms"],
            "smoke_mode": smoke_mode(),
            "by_node_count": {str(entry["nodes"]): entry for entry in sweep},
            "deployment_projection": projection,
        },
    )

    # Every fleet size answers the full workload identically.
    assert len({entry["total_results"] for entry in sweep}) == 1
    assert all(entry["total_results"] > 0 for entry in sweep)
    first, last = sweep[0], sweep[-1]
    if not smoke_mode():
        # Scaling out the stateless query tier must raise sustained
        # throughput and cut tail latency (Figure 15's cluster analogue).
        assert last["qps"] > 1.2 * first["qps"]
        assert last["p99_ms"] < first["p99_ms"]
