"""Figure 9: relative monthly cost of coupled Elasticsearch vs decoupled Airphant.

Pure analytic experiment using the paper's measured prices and throughputs:
C_E / C_A as a function of the fraction of peak time tau (x-axis) and the
indexed data size (one line per size).  The paper's observations:

* every curve decreases with tau (long peaks favour always-on Elasticsearch);
* larger corpora favour Airphant (cheap cloud storage vs local disks);
* the ratio approaches ~3.29x as the corpus grows without bound.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.bench.tables import format_table
from repro.cost.model import CostModel, PeakTroughWorkload

PEAK_OPS = 154.08           # throughput of a single Elasticsearch server
TROUGH_OPS = PEAK_OPS / 20  # the paper's a = A / 20
SIZES_TB = [1, 2, 4, 8, 16]
FRACTIONS = [0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0]


def _run():
    model = CostModel()
    curves = {}
    for size_tb in SIZES_TB:
        curves[size_tb] = [
            model.relative_cost(
                PeakTroughWorkload(PEAK_OPS, TROUGH_OPS, tau), data_gb=size_tb * 1024
            )
            for tau in FRACTIONS
        ]
    return model, curves


def test_fig09_relative_cost(benchmark):
    model, curves = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [[f"{size} TB"] + values for size, values in curves.items()]
    table = format_table(["size"] + [f"tau={tau}" for tau in FRACTIONS], rows)
    save_result("fig09_relative_cost", table)

    # Curves decrease with tau and increase with data size.
    for values in curves.values():
        assert values == sorted(values, reverse=True)
    for index in range(len(FRACTIONS)):
        column = [curves[size][index] for size in SIZES_TB]
        assert column == sorted(column)
    # The asymptote matches the paper's ~3.29x.
    assert abs(model.asymptotic_relative_cost() - 3.29) < 0.01
    # At 16 TB with short peaks, Airphant is markedly cheaper (ratio > 2).
    assert curves[16][0] > 2.0
    # With a constant peak and a small corpus, coupled Elasticsearch wins.
    assert curves[1][-1] < 1.0
