"""Figure 2: end-to-end latency vs size of data fetched from cloud storage.

The paper measures an affine curve against Google Cloud Storage: roughly
constant (~50 ms) up to about 2 MB, then growing linearly with the payload.
This benchmark sweeps the same fetch sizes against the simulated store and
reports the mean and standard deviation over 10 runs, like the original plot.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import new_store, save_result
from repro.bench.tables import format_table

#: The fetch sizes of the paper's Figure 2 (1 KB ... 64 MB; the largest sizes
#: are dropped to keep the simulated blob small).
FETCH_SIZES = [2**exponent for exponent in range(10, 27)]  # 1 KiB .. 64 MiB
RUNS_PER_SIZE = 10


def _measure_latency_curve() -> list[list[object]]:
    store = new_store(seed=2, jitter=0.1)
    store.put("payload.bin", b"\x00" * max(FETCH_SIZES))
    rows: list[list[object]] = []
    for size in FETCH_SIZES:
        samples = []
        for _ in range(RUNS_PER_SIZE):
            _, record = store.timed_get_range("payload.bin", 0, size)
            samples.append(record.total_ms)
        label = f"{size // 1024}KB" if size < 1024 * 1024 else f"{size // (1024 * 1024)}MB"
        rows.append([label, float(np.mean(samples)), float(np.std(samples))])
    return rows


def test_fig02_latency_vs_fetch_size(benchmark):
    rows = benchmark.pedantic(_measure_latency_curve, rounds=1, iterations=1)
    table = format_table(["fetch size", "mean latency (ms)", "std (ms)"], rows)
    save_result("fig02_latency_curve", table)

    latencies = [row[1] for row in rows]
    small = latencies[0]          # 1 KB
    knee = latencies[11]          # 2 MB
    large = latencies[-1]         # 64 MB
    # The paper's shape: flat until ~2 MB, then linear growth.
    assert knee < 3 * small
    assert large > 5 * small
    benchmark.extra_info["latency_1KB_ms"] = small
    benchmark.extra_info["latency_64MB_ms"] = large
