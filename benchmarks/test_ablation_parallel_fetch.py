"""Ablation: parallel vs sequential superpost fetches.

The systems core of the paper is replacing dependent sequential reads with a
single batch of concurrent reads.  This ablation issues the *same* superpost
requests both ways and measures the lookup-latency gap, isolating the benefit
from everything else (accuracy, compaction, common words).
"""

from __future__ import annotations

from benchmarks.conftest import DEFAULT_BENCH_CONFIG, save_result
from repro.bench.tables import format_table
from repro.index.builder import AirphantBuilder
from repro.search.searcher import AirphantSearcher
from repro.workloads.queries import sample_query_words

QUERIES = 20


def _run(catalog):
    corpus = catalog.corpus("hdfs")
    profile = catalog.profile("hdfs")
    config = DEFAULT_BENCH_CONFIG.with_layers(4)  # more layers -> more requests per query
    builder = AirphantBuilder(catalog.store, config=config)
    built = builder.build_from_documents(corpus.documents, index_name="ablation/parallel")
    searcher = AirphantSearcher.open(catalog.store, index_name="ablation/parallel")
    words = sample_query_words(profile, QUERIES, seed=47)

    parallel_ms = []
    sequential_ms = []
    for word in words:
        reads = searcher.mht.range_reads_for(word)
        _, batch = catalog.store.timed_batch(reads, max_concurrency=32)
        parallel_ms.append(batch.total_ms)
        _, records = catalog.store.timed_sequential(reads)
        sequential_ms.append(sum(record.total_ms for record in records))
    return built, parallel_ms, sequential_ms


def test_ablation_parallel_vs_sequential_fetch(benchmark, catalog):
    built, parallel_ms, sequential_ms = benchmark.pedantic(
        _run, args=(catalog,), rounds=1, iterations=1
    )
    mean_parallel = sum(parallel_ms) / len(parallel_ms)
    mean_sequential = sum(sequential_ms) / len(sequential_ms)
    table = format_table(
        ["fetch strategy", "mean lookup ms"],
        [["parallel batch (Airphant)", mean_parallel], ["sequential reads", mean_sequential]],
    )
    save_result("ablation_parallel_fetch", table)

    # With L = 4 layers the sequential strategy pays ~4 round-trips instead of 1.
    assert built.metadata.num_layers == 4
    assert mean_sequential > 2.5 * mean_parallel
