"""Naïve hash-table baseline.

The paper's HashTable baseline is "equivalent to IoU Sketch with the only
exception that it has a single layer (L = 1)": the same bin budget, the same
common-word handling, the same compaction — but no intersection, so every
query drags along all false positives of its single bin and pays for them in
document retrieval.
"""

from __future__ import annotations

from repro.baselines.airphant import AirphantEngine
from repro.core.config import SketchConfig
from repro.parsing.tokenizer import Tokenizer
from repro.search.replication import HedgingPolicy
from repro.storage.base import ObjectStore


class HashTableEngine(AirphantEngine):
    """IoU Sketch restricted to a single layer."""

    name = "HashTable"

    def __init__(
        self,
        store: ObjectStore,
        index_name: str = "hashtable-index",
        tokenizer: Tokenizer | None = None,
        max_concurrency: int = 32,
        config: SketchConfig | None = None,
        hedging: HedgingPolicy | None = None,
    ) -> None:
        base_config = config if config is not None else SketchConfig()
        super().__init__(
            store,
            index_name=index_name,
            tokenizer=tokenizer,
            max_concurrency=max_concurrency,
            config=base_config.with_layers(1),
            hedging=hedging,
        )
