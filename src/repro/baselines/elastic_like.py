"""Elasticsearch-like baseline: Lucene engine behind a searchable snapshot.

The paper benchmarks Elasticsearch with its index mounted as a *searchable
snapshot* on cloud storage.  Segments are hydrated lazily: queries that touch
a not-yet-downloaded region of the snapshot first pull a large recovery chunk
from storage, which dominates their latency; the small local cache means many
queries keep paying this cost.  This class layers that behaviour on top of
the Lucene-like engine.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Sequence

from repro.baselines._io import timed_single_read
from repro.baselines.lucene_like import LuceneLikeEngine
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer
from repro.search.results import LatencyBreakdown, SearchResult
from repro.storage.base import ObjectStore


class ElasticLikeEngine(LuceneLikeEngine):
    """Lucene-like engine with lazy searchable-snapshot hydration."""

    name = "Elasticsearch"

    def __init__(
        self,
        store: ObjectStore,
        index_name: str = "elastic-index",
        tokenizer: Tokenizer | None = None,
        max_concurrency: int = 32,
        cache_bytes: int | None = None,
        hydration_chunk_bytes: int = 4 * 1024 * 1024,
        hydration_cache_chunks: int = 4,
    ) -> None:
        super().__init__(store, index_name, tokenizer, max_concurrency, cache_bytes)
        if hydration_chunk_bytes <= 0:
            raise ValueError("hydration_chunk_bytes must be positive")
        if hydration_cache_chunks < 1:
            raise ValueError("hydration_cache_chunks must be at least 1")
        self._hydration_chunk_bytes = hydration_chunk_bytes
        self._hydration_cache_chunks = hydration_cache_chunks
        self._snapshot_blob = f"{index_name}/snapshot.segments"
        self._snapshot_size = 0
        self._hydrated: OrderedDict[int, bool] = OrderedDict()

    # -- lifecycle -------------------------------------------------------------------

    def build(self, documents: Sequence[Document]) -> None:
        super().build(documents)
        # The searchable snapshot contains the full segment data (term index +
        # postings); queries hydrate chunks of it on demand.
        segment_bytes = self._store.get(self._postings_blob) + self._store.get(
            self._term_index.nodes_blob
        )
        self._store.put(self._snapshot_blob, segment_bytes)

    def initialize(self) -> float:
        init_ms = super().initialize()
        self._snapshot_size = self._store.size(self._snapshot_blob)
        self._hydrated.clear()
        return init_ms

    # -- querying ---------------------------------------------------------------------

    def lookup_postings(self, word: str) -> tuple[list[Posting], LatencyBreakdown]:
        postings, latency = super().lookup_postings(word)
        self._hydrate_for(word, latency)
        return postings, latency

    def search(self, query: str, top_k: int | None = None) -> SearchResult:
        # Hydration is charged inside lookup_postings, which search() calls.
        return super().search(query, top_k=top_k)

    # -- snapshot hydration ---------------------------------------------------------------

    def _hydrate_for(self, word: str, latency: LatencyBreakdown) -> None:
        """Page in the snapshot chunk a query for ``word`` touches."""
        if self._snapshot_size <= 0:
            return
        num_chunks = max(1, -(-self._snapshot_size // self._hydration_chunk_bytes))
        digest = hashlib.blake2b(word.encode("utf-8"), digest_size=4).digest()
        chunk_index = int.from_bytes(digest, "big") % num_chunks
        if chunk_index in self._hydrated:
            self._hydrated.move_to_end(chunk_index)
            return
        offset = chunk_index * self._hydration_chunk_bytes
        length = min(self._hydration_chunk_bytes, self._snapshot_size - offset)
        _, record = timed_single_read(self._store, self._snapshot_blob, offset, length)
        latency.add_lookup(record.total_ms, record.wait_ms, record.download_ms, record.nbytes)
        self._hydrated[chunk_index] = True
        while len(self._hydrated) > self._hydration_cache_chunks:
            self._hydrated.popitem(last=False)
