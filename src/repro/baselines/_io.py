"""Timed single-read helper shared by the hierarchical-index baselines.

Hierarchical term indexes traverse node by node: each step is a *dependent*
read whose location is only known after the previous read completes, so the
simulated latencies of those reads add up sequentially.  This helper issues
one read and returns both payload and timing regardless of whether the store
is simulated.
"""

from __future__ import annotations

from repro.storage.base import ObjectStore
from repro.storage.metrics import RequestRecord
from repro.storage.simulated import SimulatedCloudStore


def timed_single_read(
    store: ObjectStore, blob: str, offset: int, length: int | None
) -> tuple[bytes, RequestRecord]:
    """Read one byte range, returning its (possibly zero) simulated timing."""
    if isinstance(store, SimulatedCloudStore):
        return store.timed_get_range(blob, offset, length)
    data = store.get_range(blob, offset, length)
    return data, RequestRecord(blob=blob, nbytes=len(data), wait_ms=0.0, download_ms=0.0)
