"""On-storage skip list term index (Apache Lucene's access pattern).

Lucene's term dictionary is traversed with *dependent sequential reads*: the
location of the next node is only known after the current node has been read.
When the index lives on cloud storage, every step pays a full network
round-trip, which is exactly the bottleneck the paper identifies.

The skip list is persisted as a single blob of fixed-width node records plus
a small JSON header holding the per-level head offsets.  Lookups walk the
list top-down, issuing one range read per previously-unseen node.  When the
whole node region fits in the configured cache budget it is loaded once at
initialization (modelling the OS page cache that makes small corpora fast for
Lucene in the paper's Cranfield results).
"""

from __future__ import annotations

import hashlib
import json
import math
import struct
from dataclasses import dataclass

from repro.core.mht import BinPointer
from repro.baselines._io import timed_single_read
from repro.search.results import LatencyBreakdown
from repro.storage.base import ObjectStore

#: Sentinel forward pointer meaning "no next node at this level".
_NO_NODE = 0xFFFFFFFFFFFFFFFF

#: Probability that a node is promoted to the next level (Lucene skip interval ~ 1/4).
_PROMOTION_PROBABILITY = 0.25


@dataclass(frozen=True)
class _Node:
    """Decoded skip-list node."""

    term: str
    postings_offset: int
    postings_length: int
    forwards: tuple[int, ...]


def _node_height(term: str, max_height: int) -> int:
    """Deterministic pseudo-random tower height for ``term``."""
    digest = hashlib.blake2b(term.encode("utf-8"), digest_size=8).digest()
    value = int.from_bytes(digest, "big")
    height = 1
    threshold = int(_PROMOTION_PROBABILITY * 2**64)
    while height < max_height:
        value, remainder = divmod(value * 6364136223846793005 + 1442695040888963407, 2**64)
        value = remainder
        if value >= threshold:
            break
        height += 1
    return height


def _encode_node(term: str, pointer: BinPointer, forwards: list[int]) -> bytes:
    term_bytes = term.encode("utf-8")
    parts = [struct.pack(">H", len(term_bytes)), term_bytes]
    parts.append(struct.pack(">QIB", pointer.offset, pointer.length, len(forwards)))
    for forward in forwards:
        parts.append(struct.pack(">Q", forward))
    return b"".join(parts)


def _node_size(term: str, height: int) -> int:
    return 2 + len(term.encode("utf-8")) + 13 + 8 * height


def _decode_node(data: bytes) -> _Node:
    term_length = struct.unpack_from(">H", data, 0)[0]
    term = data[2 : 2 + term_length].decode("utf-8")
    offset, length, height = struct.unpack_from(">QIB", data, 2 + term_length)
    forwards = struct.unpack_from(f">{height}Q", data, 2 + term_length + 13)
    return _Node(term=term, postings_offset=offset, postings_length=length, forwards=forwards)


class SkipListIndex:
    """A cloud-persisted skip list mapping terms to postings pointers."""

    NODES_BLOB = "skiplist.nodes"
    HEADER_BLOB = "skiplist.header"

    def __init__(self, store: ObjectStore, index_name: str, cache_bytes: int = 4 * 1024 * 1024):
        self._store = store
        self._index_name = index_name
        self._cache_bytes = cache_bytes
        self._heads: list[int] = []
        self._node_sizes: dict[int, int] = {}
        self._region_length = 0
        self._cached_region: bytes | None = None

    # -- blob names --------------------------------------------------------------

    @property
    def nodes_blob(self) -> str:
        """Blob holding the concatenated node records."""
        return f"{self._index_name}/{self.NODES_BLOB}"

    @property
    def header_blob(self) -> str:
        """Blob holding head pointers and node sizes."""
        return f"{self._index_name}/{self.HEADER_BLOB}"

    # -- build ---------------------------------------------------------------------

    def build(self, term_pointers: dict[str, BinPointer]) -> None:
        """Persist a skip list over ``term_pointers`` (term → postings pointer)."""
        terms = sorted(term_pointers)
        num_terms = len(terms)
        max_height = max(1, int(math.ceil(math.log(max(num_terms, 2), 4))) + 1)
        heights = [_node_height(term, max_height) for term in terms]

        # First pass: compute node offsets from their fixed-width sizes.
        offsets: list[int] = []
        cursor = 0
        for term, height in zip(terms, heights):
            offsets.append(cursor)
            cursor += _node_size(term, height)

        # Forward pointers: for each level, the next node of at least that height.
        forwards_per_node: list[list[int]] = [[_NO_NODE] * height for height in heights]
        for level in range(max_height):
            previous: int | None = None
            for node_index in range(num_terms - 1, -1, -1):
                if heights[node_index] > level:
                    forwards_per_node[node_index][level] = (
                        offsets[previous] if previous is not None else _NO_NODE
                    )
                    previous = node_index

        heads = [_NO_NODE] * max_height
        for level in range(max_height):
            for node_index in range(num_terms):
                if heights[node_index] > level:
                    heads[level] = offsets[node_index]
                    break

        blob = bytearray()
        for term, height, forwards in zip(terms, heights, forwards_per_node):
            blob += _encode_node(term, term_pointers[term], forwards)

        header = {
            "heads": heads,
            "num_terms": num_terms,
            "max_height": max_height,
            "region_length": len(blob),
            "node_sizes": {str(offset): _node_size(term, height)
                           for offset, term, height in zip(offsets, terms, heights)},
        }
        self._store.put(self.nodes_blob, bytes(blob))
        self._store.put(self.header_blob, json.dumps(header).encode("utf-8"))

    # -- query ---------------------------------------------------------------------

    def initialize(self, latency: LatencyBreakdown | None = None) -> None:
        """Load the header (and, if small enough, the whole node region)."""
        data, record = timed_single_read(self._store, self.header_blob, 0, None)
        if latency is not None:
            latency.add_lookup(record.total_ms, record.wait_ms, record.download_ms, record.nbytes)
        header = json.loads(data.decode("utf-8"))
        self._heads = [int(offset) for offset in header["heads"]]
        self._node_sizes = {int(offset): size for offset, size in header["node_sizes"].items()}
        self._region_length = int(header["region_length"])
        self._cached_region = None
        if 0 < self._region_length <= self._cache_bytes:
            region, record = timed_single_read(self._store, self.nodes_blob, 0, None)
            if latency is not None:
                latency.add_lookup(
                    record.total_ms, record.wait_ms, record.download_ms, record.nbytes
                )
            self._cached_region = region

    def lookup(self, term: str, latency: LatencyBreakdown) -> BinPointer | None:
        """Find the postings pointer of ``term`` via skip-list traversal.

        Every node examined that is not already cached costs one sequential
        round-trip, charged to ``latency``.
        """
        if not self._heads:
            raise RuntimeError("SkipListIndex.initialize() must be called before lookup()")
        query_cache: dict[int, _Node] = {}
        current_forwards: list[int] = list(self._heads)

        found: _Node | None = None
        for level in range(len(current_forwards) - 1, -1, -1):
            next_offset = current_forwards[level]
            while next_offset != _NO_NODE:
                node = self._read_node(next_offset, query_cache, latency)
                if node.term < term:
                    current_forwards = list(node.forwards) + current_forwards[len(node.forwards):]
                    next_offset = node.forwards[level] if level < len(node.forwards) else _NO_NODE
                else:
                    if node.term == term:
                        found = node
                    break
        if found is None:
            return None
        return BinPointer(
            blob=self._postings_blob_hint,
            offset=found.postings_offset,
            length=found.postings_length,
        )

    #: Name of the postings blob the pointers refer to; set by the owning engine.
    _postings_blob_hint: str = ""

    def set_postings_blob(self, blob_name: str) -> None:
        """Record which blob the stored postings offsets refer to."""
        self._postings_blob_hint = blob_name

    def _read_node(
        self, offset: int, query_cache: dict[int, _Node], latency: LatencyBreakdown
    ) -> _Node:
        if offset in query_cache:
            return query_cache[offset]
        size = self._node_sizes[offset]
        if self._cached_region is not None:
            node = _decode_node(self._cached_region[offset : offset + size])
        else:
            data, record = timed_single_read(self._store, self.nodes_blob, offset, size)
            latency.add_lookup(record.total_ms, record.wait_ms, record.download_ms, record.nbytes)
            node = _decode_node(data)
        query_cache[offset] = node
        return node
