"""Baseline search engines used in the paper's evaluation.

All baselines are implemented against the same simulated cloud storage and
share the same document-retrieval routine as Airphant; they differ only in
their *term index*, which is exactly the dimension the paper studies:

* :class:`~repro.baselines.lucene_like.LuceneLikeEngine` — inverted index
  with an on-storage skip list (Apache Lucene's term dictionary access
  pattern): dependent sequential reads during lookup.
* :class:`~repro.baselines.elastic_like.ElasticLikeEngine` — the Lucene-like
  engine behind a searchable-snapshot mount that lazily hydrates index
  segments from cloud storage (Elasticsearch's deployment in the paper).
* :class:`~repro.baselines.sqlite_like.SQLiteLikeEngine` — a paged B-tree
  term index with a page cache (SQLite's file format access pattern).
* :class:`~repro.baselines.hashtable.HashTableEngine` — IoU Sketch restricted
  to a single layer (L = 1): one cheap lookup, many false positives.
* :class:`~repro.baselines.airphant.AirphantEngine` — Airphant itself wrapped
  in the common engine interface so the harness can compare all systems
  uniformly.
"""

from repro.baselines.airphant import AirphantEngine
from repro.baselines.base import SearchEngine
from repro.baselines.btree import BTreeIndex
from repro.baselines.elastic_like import ElasticLikeEngine
from repro.baselines.hashtable import HashTableEngine
from repro.baselines.hierarchical import HierarchicalEngine
from repro.baselines.inverted import InvertedIndex, PostingsFile
from repro.baselines.lucene_like import LuceneLikeEngine
from repro.baselines.skiplist import SkipListIndex
from repro.baselines.sqlite_like import SQLiteLikeEngine

__all__ = [
    "AirphantEngine",
    "BTreeIndex",
    "ElasticLikeEngine",
    "HashTableEngine",
    "HierarchicalEngine",
    "InvertedIndex",
    "LuceneLikeEngine",
    "PostingsFile",
    "SearchEngine",
    "SkipListIndex",
    "SQLiteLikeEngine",
]
