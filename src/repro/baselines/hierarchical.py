"""Shared implementation of the hierarchical-term-index baselines.

The Lucene-like and SQLite-like engines differ only in the data structure
used as their term index (skip list vs B-tree); everything else — the exact
inverted index, the compacted postings blob, initialization, per-term lookup
and the search loop — is identical, so it lives here.
"""

from __future__ import annotations

import json
from typing import Protocol, Sequence

from repro.baselines._io import timed_single_read
from repro.baselines.base import SearchEngine
from repro.baselines.inverted import InvertedIndex, PostingsFile
from repro.core.mht import BinPointer
from repro.index.serialization import StringTable, decode_superpost
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer
from repro.search.results import LatencyBreakdown, SearchResult
from repro.storage.base import ObjectStore


class TermIndex(Protocol):
    """What a hierarchical engine needs from its term index."""

    def build(self, term_pointers: dict[str, BinPointer]) -> None: ...

    def initialize(self, latency: LatencyBreakdown | None = None) -> None: ...

    def lookup(self, term: str, latency: LatencyBreakdown) -> BinPointer | None: ...

    def set_postings_blob(self, blob_name: str) -> None: ...


class HierarchicalEngine(SearchEngine):
    """Exact inverted index + a cloud-persisted hierarchical term index."""

    def __init__(
        self,
        store: ObjectStore,
        index_name: str,
        tokenizer: Tokenizer | None = None,
        max_concurrency: int = 32,
    ) -> None:
        super().__init__(store, index_name, tokenizer, max_concurrency)
        self._term_index = self._make_term_index()
        self._postings_blob = f"{index_name}/postings.bin"
        self._meta_blob = f"{index_name}/postings.meta"
        self._string_table: StringTable | None = None

    def _make_term_index(self) -> TermIndex:
        """Create this engine's term index (skip list, B-tree, ...)."""
        raise NotImplementedError

    # -- lifecycle -------------------------------------------------------------------

    def build(self, documents: Sequence[Document]) -> None:
        inverted = InvertedIndex.from_documents(documents, self._tokenizer)
        postings_file = PostingsFile.write(self._store, self._postings_blob, inverted)
        self._store.put(
            self._meta_blob,
            json.dumps({"string_table": postings_file.string_table.to_list()}).encode("utf-8"),
        )
        self._term_index.build(postings_file.pointers)
        self._term_index.set_postings_blob(self._postings_blob)

    def initialize(self) -> float:
        latency = LatencyBreakdown()
        meta_data, record = timed_single_read(self._store, self._meta_blob, 0, None)
        latency.add_lookup(record.total_ms, record.wait_ms, record.download_ms, record.nbytes)
        meta = json.loads(meta_data.decode("utf-8"))
        self._string_table = StringTable.from_list(meta["string_table"])
        self._term_index.initialize(latency)
        self._term_index.set_postings_blob(self._postings_blob)
        return latency.total_ms

    # -- querying ---------------------------------------------------------------------

    def lookup_postings(self, word: str) -> tuple[list[Posting], LatencyBreakdown]:
        """Term-index traversal plus one range read for the postings list."""
        if self._string_table is None:
            raise RuntimeError("engine is not initialized; call initialize() first")
        latency = LatencyBreakdown()
        pointer = self._term_index.lookup(word, latency)
        if pointer is None or pointer.length == 0:
            return [], latency
        payload, record = timed_single_read(
            self._store, pointer.blob, pointer.offset, pointer.length
        )
        latency.add_lookup(record.total_ms, record.wait_ms, record.download_ms, record.nbytes)
        postings = decode_superpost(payload, self._string_table).sorted_postings()
        return postings, latency

    def search(self, query: str, top_k: int | None = None) -> SearchResult:
        words = list(dict.fromkeys(self._tokenizer.tokenize(query)))
        if not words:
            return SearchResult(query=query)
        latency = LatencyBreakdown()
        candidate_sets: list[set[Posting]] = []
        for word in words:
            postings, word_latency = self.lookup_postings(word)
            self._merge_latency(latency, word_latency)
            candidate_sets.append(set(postings))
            if not postings:
                return SearchResult(query=query, latency=latency)
        candidates = sorted(set.intersection(*candidate_sets))
        to_fetch = candidates if top_k is None else candidates[:top_k]
        documents = self._fetch_documents(to_fetch, latency)
        matched = self._filter_documents(documents, words)
        return SearchResult(
            query=query,
            documents=matched,
            candidate_postings=candidates,
            false_positive_count=len(documents) - len(matched),
            latency=latency,
        )

    @staticmethod
    def _merge_latency(total: LatencyBreakdown, part: LatencyBreakdown) -> None:
        total.lookup_ms += part.lookup_ms
        total.retrieval_ms += part.retrieval_ms
        total.wait_ms += part.wait_ms
        total.download_ms += part.download_ms
        total.bytes_fetched += part.bytes_fetched
        total.round_trips += part.round_trips
