"""Common interface of all benchmarked search engines."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer, WhitespaceAnalyzer
from repro.search.results import LatencyBreakdown, SearchResult
from repro.storage.base import ObjectStore
from repro.storage.parallel import ParallelFetcher


class SearchEngine(ABC):
    """A keyword search engine persisted on (simulated) cloud storage.

    The lifecycle matches the paper's benchmarks: :meth:`build` runs offline
    on a beefy indexing node, :meth:`initialize` runs once when a query node
    opens the corpus, and :meth:`search` serves each query.
    """

    #: Human-readable engine name used in benchmark tables.
    name: str = "engine"

    def __init__(
        self,
        store: ObjectStore,
        index_name: str,
        tokenizer: Tokenizer | None = None,
        max_concurrency: int = 32,
    ) -> None:
        self._store = store
        self._index_name = index_name
        self._tokenizer = tokenizer if tokenizer is not None else WhitespaceAnalyzer()
        self._fetcher = ParallelFetcher(store, max_concurrency=max_concurrency)

    @property
    def store(self) -> ObjectStore:
        """The object store holding this engine's index and documents."""
        return self._store

    @property
    def index_name(self) -> str:
        """Prefix under which this engine persists its index blobs."""
        return self._index_name

    # -- lifecycle -------------------------------------------------------------------

    @abstractmethod
    def build(self, documents: Sequence[Document]) -> None:
        """Index ``documents`` and persist all index structures."""

    @abstractmethod
    def initialize(self) -> float:
        """Open the index for querying; returns simulated init latency in ms."""

    @abstractmethod
    def lookup_postings(self, word: str) -> tuple[list[Posting], LatencyBreakdown]:
        """Term-index lookup: postings of ``word`` plus lookup latency."""

    @abstractmethod
    def search(self, query: str, top_k: int | None = None) -> SearchResult:
        """Return (up to ``top_k``) documents containing all query keywords."""

    def index_storage_bytes(self) -> int:
        """Bytes of cloud storage occupied by this engine's index blobs."""
        return self._store.total_bytes(prefix=self._index_name)

    # -- shared document retrieval ------------------------------------------------------

    def _fetch_documents(
        self,
        postings: Sequence[Posting],
        latency: LatencyBreakdown,
    ) -> list[Document]:
        """Fetch document contents for ``postings`` in one parallel batch.

        All engines (Airphant and baselines alike) share this routine, as in
        the paper's setup, so end-to-end differences come from the term index
        and from how many candidate documents must be fetched.
        """
        if not postings:
            return []
        requests = [posting.to_range_read() for posting in postings]
        fetch = self._fetcher.fetch(requests)
        latency.add_retrieval(
            fetch.batch.total_ms, fetch.batch.wait_ms, fetch.batch.download_ms, fetch.batch.nbytes
        )
        documents = []
        for posting, payload in zip(postings, fetch.payloads):
            if payload is None:
                continue
            documents.append(Document(ref=posting, text=payload.decode("utf-8", errors="replace")))
        return documents

    def _filter_documents(self, documents: list[Document], words: list[str]) -> list[Document]:
        """Keep only documents containing every query word."""
        required = set(words)
        return [
            document
            for document in documents
            if required <= self._tokenizer.distinct_terms(document.text)
        ]
