"""Lucene-like baseline: exact inverted index + on-storage skip list.

Reproduces how Apache Lucene behaves when its index directory is mounted on
cloud storage (the paper's gcsfuse setup): term lookups traverse a skip list
with dependent sequential reads, then the exact postings list is fetched and
documents are retrieved.  There are no false positives, but every level of
the term index costs a network round-trip.
"""

from __future__ import annotations

from repro.baselines.hierarchical import HierarchicalEngine
from repro.baselines.skiplist import SkipListIndex
from repro.parsing.tokenizer import Tokenizer
from repro.storage.base import ObjectStore


class LuceneLikeEngine(HierarchicalEngine):
    """Inverted index with a skip-list term dictionary on cloud storage."""

    name = "Lucene"

    #: Cache budget for the term index; small corpora fit entirely and become
    #: effectively local, matching Lucene's strong Cranfield numbers.
    DEFAULT_CACHE_BYTES = 2 * 1024 * 1024

    def __init__(
        self,
        store: ObjectStore,
        index_name: str = "lucene-index",
        tokenizer: Tokenizer | None = None,
        max_concurrency: int = 32,
        cache_bytes: int | None = None,
    ) -> None:
        self._cache_bytes = cache_bytes if cache_bytes is not None else self.DEFAULT_CACHE_BYTES
        super().__init__(store, index_name, tokenizer, max_concurrency)

    def _make_term_index(self) -> SkipListIndex:
        return SkipListIndex(self._store, self._index_name, cache_bytes=self._cache_bytes)
