"""Exact inverted index shared by the hierarchical-index baselines.

Every baseline stores one exact postings list per keyword.  As in the paper,
those postings are compressed with the same string-table codec Airphant uses
for its superposts, and all postings lists are compacted into a single
*postings blob* so any one of them can be fetched with a single range read.
The term index (skip list or B-tree) then only needs to map a keyword to the
``(offset, length)`` of its postings list inside that blob.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.core.mht import BinPointer
from repro.core.superpost import Superpost
from repro.index.serialization import StringTable, decode_superpost, encode_superpost
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer, WhitespaceAnalyzer
from repro.storage.base import ObjectStore


@dataclass
class InvertedIndex:
    """In-memory exact inverted index: word → set of postings."""

    postings_by_word: dict[str, set[Posting]]

    @classmethod
    def from_documents(
        cls, documents: Sequence[Document], tokenizer: Tokenizer | None = None
    ) -> "InvertedIndex":
        """Build the exact inverted index over ``documents``."""
        if tokenizer is None:
            tokenizer = WhitespaceAnalyzer()
        postings_by_word: dict[str, set[Posting]] = defaultdict(set)
        for document in documents:
            for word in tokenizer.distinct_terms(document.text):
                postings_by_word[word].add(document.ref)
        return cls(postings_by_word=dict(postings_by_word))

    @property
    def vocabulary(self) -> list[str]:
        """Sorted list of indexed keywords."""
        return sorted(self.postings_by_word)

    def postings(self, word: str) -> set[Posting]:
        """Exact postings of ``word`` (empty set if unindexed)."""
        return self.postings_by_word.get(word, set())


@dataclass
class PostingsFile:
    """A compacted postings blob plus the per-word pointers into it."""

    blob_name: str
    pointers: dict[str, BinPointer]
    string_table: StringTable

    @classmethod
    def write(
        cls, store: ObjectStore, blob_name: str, index: InvertedIndex
    ) -> "PostingsFile":
        """Serialize every postings list and persist the compacted blob.

        Words are written in sorted order so offsets are deterministic.
        """
        string_table = StringTable()
        blob = bytearray()
        pointers: dict[str, BinPointer] = {}
        for word in index.vocabulary:
            encoded = encode_superpost(Superpost(index.postings_by_word[word]), string_table)
            pointers[word] = BinPointer(blob=blob_name, offset=len(blob), length=len(encoded))
            blob += encoded
        store.put(blob_name, bytes(blob))
        return cls(blob_name=blob_name, pointers=pointers, string_table=string_table)

    def decode(self, payload: bytes) -> list[Posting]:
        """Decode one postings list payload fetched from the blob."""
        return decode_superpost(payload, self.string_table).sorted_postings()
