"""Paged B-tree term index (SQLite's access pattern).

SQLite stores its index in fixed-size pages and traverses root → leaf when
looking up a keyword.  Interior pages are small and are typically cached, so
an uncached lookup costs one dependent round-trip per tree level; a warm
cache reduces this to the leaf read only.  The paper uses SQLite as "a
practical B-tree implementation" and reports it as the closest competitor to
Airphant — slower mainly because of its remaining sequential reads.

Pages are serialized as JSON records concatenated into one blob; the header
blob records the root pointer.  A byte-budgeted LRU page cache models
SQLite's buffer pool.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass

from repro.baselines._io import timed_single_read
from repro.core.mht import BinPointer
from repro.search.results import LatencyBreakdown
from repro.storage.base import ObjectStore


@dataclass(frozen=True)
class _PageRef:
    """Location of a serialized page inside the pages blob."""

    offset: int
    length: int


class BTreeIndex:
    """A cloud-persisted B-tree mapping terms to postings pointers."""

    PAGES_BLOB = "btree.pages"
    HEADER_BLOB = "btree.header"

    def __init__(
        self,
        store: ObjectStore,
        index_name: str,
        fanout: int = 64,
        cache_bytes: int = 256 * 1024,
    ):
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self._store = store
        self._index_name = index_name
        self._fanout = fanout
        self._cache_bytes = cache_bytes
        self._root: _PageRef | None = None
        self._postings_blob = ""
        self._cache: OrderedDict[int, dict] = OrderedDict()
        self._cache_used = 0

    # -- blob names --------------------------------------------------------------

    @property
    def pages_blob(self) -> str:
        """Blob holding all serialized pages."""
        return f"{self._index_name}/{self.PAGES_BLOB}"

    @property
    def header_blob(self) -> str:
        """Blob holding the root pointer."""
        return f"{self._index_name}/{self.HEADER_BLOB}"

    def set_postings_blob(self, blob_name: str) -> None:
        """Record which blob the stored postings offsets refer to."""
        self._postings_blob = blob_name

    # -- build ---------------------------------------------------------------------

    def build(self, term_pointers: dict[str, BinPointer]) -> None:
        """Persist a B-tree over ``term_pointers`` (term → postings pointer).

        Pages are written bottom-up: leaves first, then each interior level,
        so child references can use final byte offsets.
        """
        terms = sorted(term_pointers)
        blob = bytearray()

        def write_page(page: dict) -> _PageRef:
            encoded = json.dumps(page, separators=(",", ":")).encode("utf-8")
            ref = _PageRef(offset=len(blob), length=len(encoded))
            blob.extend(encoded)
            return ref

        # Leaf level: sorted runs of (term, postings offset, postings length).
        level_refs: list[_PageRef] = []
        level_keys: list[str] = []
        for start in range(0, max(len(terms), 1), self._fanout):
            chunk = terms[start : start + self._fanout]
            page = {
                "leaf": True,
                "entries": [
                    [term, term_pointers[term].offset, term_pointers[term].length]
                    for term in chunk
                ],
            }
            level_refs.append(write_page(page))
            level_keys.append(chunk[0] if chunk else "")

        # Interior levels until a single root remains.
        while len(level_refs) > 1:
            next_refs: list[_PageRef] = []
            next_keys: list[str] = []
            for start in range(0, len(level_refs), self._fanout):
                child_refs = level_refs[start : start + self._fanout]
                child_keys = level_keys[start : start + self._fanout]
                page = {
                    "leaf": False,
                    "keys": child_keys,
                    "children": [[ref.offset, ref.length] for ref in child_refs],
                }
                next_refs.append(write_page(page))
                next_keys.append(child_keys[0])
            level_refs = next_refs
            level_keys = next_keys

        root = level_refs[0]
        header = {"root": [root.offset, root.length], "num_terms": len(terms)}
        self._store.put(self.pages_blob, bytes(blob))
        self._store.put(self.header_blob, json.dumps(header).encode("utf-8"))

    # -- query ---------------------------------------------------------------------

    def initialize(self, latency: LatencyBreakdown | None = None) -> None:
        """Read the header blob (one round-trip) and reset the page cache."""
        data, record = timed_single_read(self._store, self.header_blob, 0, None)
        if latency is not None:
            latency.add_lookup(record.total_ms, record.wait_ms, record.download_ms, record.nbytes)
        header = json.loads(data.decode("utf-8"))
        self._root = _PageRef(offset=header["root"][0], length=header["root"][1])
        self._cache.clear()
        self._cache_used = 0

    def lookup(self, term: str, latency: LatencyBreakdown) -> BinPointer | None:
        """Traverse root → leaf; uncached pages cost one round-trip each."""
        if self._root is None:
            raise RuntimeError("BTreeIndex.initialize() must be called before lookup()")
        ref = self._root
        while True:
            page = self._read_page(ref, latency)
            if page["leaf"]:
                for entry_term, offset, length in page["entries"]:
                    if entry_term == term:
                        return BinPointer(blob=self._postings_blob, offset=offset, length=length)
                return None
            keys = page["keys"]
            children = page["children"]
            child_index = 0
            for index in range(1, len(keys)):
                if term >= keys[index]:
                    child_index = index
                else:
                    break
            ref = _PageRef(offset=children[child_index][0], length=children[child_index][1])

    # -- page cache -------------------------------------------------------------------

    def _read_page(self, ref: _PageRef, latency: LatencyBreakdown) -> dict:
        cached = self._cache.get(ref.offset)
        if cached is not None:
            self._cache.move_to_end(ref.offset)
            return cached
        data, record = timed_single_read(self._store, self.pages_blob, ref.offset, ref.length)
        latency.add_lookup(record.total_ms, record.wait_ms, record.download_ms, record.nbytes)
        page = json.loads(data.decode("utf-8"))
        self._cache[ref.offset] = page
        self._cache_used += ref.length
        while self._cache_used > self._cache_bytes and len(self._cache) > 1:
            _, evicted = self._cache.popitem(last=False)
            self._cache_used -= len(json.dumps(evicted, separators=(",", ":")).encode("utf-8"))
        return page
