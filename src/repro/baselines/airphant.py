"""Airphant wrapped in the common benchmark engine interface."""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import SearchEngine
from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder, BuiltIndex
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer
from repro.search.replication import HedgingPolicy
from repro.search.results import LatencyBreakdown, SearchResult
from repro.search.searcher import AirphantSearcher
from repro.storage.base import ObjectStore


class AirphantEngine(SearchEngine):
    """Airphant (IoU Sketch) as a benchmark engine."""

    name = "Airphant"

    def __init__(
        self,
        store: ObjectStore,
        index_name: str = "airphant-index",
        tokenizer: Tokenizer | None = None,
        max_concurrency: int = 32,
        config: SketchConfig | None = None,
        hedging: HedgingPolicy | None = None,
        query_cache_size: int = 0,
    ) -> None:
        super().__init__(store, index_name, tokenizer, max_concurrency)
        self._config = config if config is not None else SketchConfig()
        self._hedging = hedging
        self._query_cache_size = query_cache_size
        self._built: BuiltIndex | None = None
        self._searcher: AirphantSearcher | None = None

    @property
    def config(self) -> SketchConfig:
        """The sketch configuration used at build time."""
        return self._config

    @property
    def built_index(self) -> BuiltIndex | None:
        """Handle to the built index (``None`` before :meth:`build`)."""
        return self._built

    # -- lifecycle -------------------------------------------------------------------

    def build(self, documents: Sequence[Document]) -> None:
        builder = AirphantBuilder(self._store, config=self._config, tokenizer=self._tokenizer)
        self._built = builder.build_from_documents(documents, index_name=self._index_name)

    def initialize(self) -> float:
        self._searcher = AirphantSearcher(
            self._store,
            index_name=self._index_name,
            tokenizer=self._tokenizer,
            max_concurrency=self._fetcher.max_concurrency,
            hedging=self._hedging,
            top_k_delta=self._config.top_k_delta,
            query_cache_size=self._query_cache_size,
        )
        return self._searcher.initialize()

    # -- querying ---------------------------------------------------------------------

    def lookup_postings(self, word: str) -> tuple[list[Posting], LatencyBreakdown]:
        return self._require_searcher().lookup_postings(word)

    def search(self, query: str, top_k: int | None = None) -> SearchResult:
        return self._require_searcher().search(query, top_k=top_k)

    def _require_searcher(self) -> AirphantSearcher:
        if self._searcher is None:
            raise RuntimeError("engine is not initialized; call initialize() first")
        return self._searcher
