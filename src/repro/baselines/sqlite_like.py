"""SQLite-like baseline: exact inverted index + paged B-tree term index.

Mirrors the paper's SQLite baseline: a two-column (keyword, postings)
dictionary indexed by a B-tree whose database file is mounted on cloud
storage.  Interior pages are cached; lookups pay one round-trip per uncached
page plus one read for the postings list.  Document retrieval reuses the same
routine as Airphant, exactly as in the paper.
"""

from __future__ import annotations

from repro.baselines.btree import BTreeIndex
from repro.baselines.hierarchical import HierarchicalEngine
from repro.parsing.tokenizer import Tokenizer
from repro.storage.base import ObjectStore


class SQLiteLikeEngine(HierarchicalEngine):
    """Inverted index with a B-tree term dictionary on cloud storage."""

    name = "SQLite"

    #: SQLite's default page-cache budget in this simulation.
    DEFAULT_CACHE_BYTES = 256 * 1024

    def __init__(
        self,
        store: ObjectStore,
        index_name: str = "sqlite-index",
        tokenizer: Tokenizer | None = None,
        max_concurrency: int = 32,
        fanout: int = 64,
        cache_bytes: int | None = None,
    ) -> None:
        self._fanout = fanout
        self._cache_bytes = cache_bytes if cache_bytes is not None else self.DEFAULT_CACHE_BYTES
        super().__init__(store, index_name, tokenizer, max_concurrency)

    def _make_term_index(self) -> BTreeIndex:
        return BTreeIndex(
            self._store, self._index_name, fanout=self._fanout, cache_bytes=self._cache_bytes
        )
