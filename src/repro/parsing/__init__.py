"""Corpus and document parsing.

Airphant's Builder unwraps cloud-stored blobs into documents (a
*corpus-document parser*) and extracts keywords from each document (a
*document-word parser*).  Both are user-configurable; this package ships the
defaults used in the paper's experiments: line-delimited corpora and a
whitespace analyzer.
"""

from repro.parsing.corpus import (
    CorpusParser,
    LineDelimitedCorpusParser,
    WholeBlobCorpusParser,
    parse_corpus,
)
from repro.parsing.documents import Document, DocumentRef, Posting
from repro.parsing.tokenizer import (
    SimpleAnalyzer,
    Tokenizer,
    WhitespaceAnalyzer,
)

__all__ = [
    "CorpusParser",
    "Document",
    "DocumentRef",
    "LineDelimitedCorpusParser",
    "Posting",
    "SimpleAnalyzer",
    "Tokenizer",
    "WhitespaceAnalyzer",
    "WholeBlobCorpusParser",
    "parse_corpus",
]
