"""Document and posting data types.

A *posting* in Airphant is not just a document id: because documents live in
cloud storage and are fetched directly with range reads, each posting records
``(blob name, byte offset, byte length)``.  This lets the Searcher retrieve a
document's raw bytes in a single request without any directory lookups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.base import RangeRead


@dataclass(frozen=True, order=True)
class DocumentRef:
    """Location of a document's bytes within cloud storage."""

    blob: str
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise ValueError("offset and length must be non-negative")

    def to_range_read(self) -> RangeRead:
        """The range read that retrieves this document's content."""
        return RangeRead(blob=self.blob, offset=self.offset, length=self.length)


# A posting *is* a document reference; the alias keeps the paper's vocabulary.
Posting = DocumentRef


@dataclass(frozen=True)
class Document:
    """A parsed document: its storage location plus its raw text."""

    ref: DocumentRef
    text: str

    @property
    def blob(self) -> str:
        """Blob containing this document."""
        return self.ref.blob

    @property
    def offset(self) -> int:
        """Byte offset of this document within its blob."""
        return self.ref.offset

    @property
    def length(self) -> int:
        """Byte length of this document within its blob."""
        return self.ref.length
