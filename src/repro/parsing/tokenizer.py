"""Document-word parsers (analyzers).

The paper benchmarks all systems with whitespace analysis (Lucene's
``WhitespaceAnalyzer`` / Elasticsearch's ``whitespace`` analyzer), so exact
keyword matching behaves identically across engines.  :class:`SimpleAnalyzer`
additionally lowercases and strips punctuation, which is convenient for the
Cranfield-style examples.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod


class Tokenizer(ABC):
    """Extracts searchable keywords from a document's text."""

    @abstractmethod
    def tokenize(self, text: str) -> list[str]:
        """Return the list of keywords in ``text`` (duplicates preserved)."""

    def distinct_terms(self, text: str) -> set[str]:
        """Return the set of distinct keywords in ``text``."""
        return set(self.tokenize(text))


class WhitespaceAnalyzer(Tokenizer):
    """Splits on whitespace only; matches the analyzers used in the paper."""

    def tokenize(self, text: str) -> list[str]:
        return text.split()


class SimpleAnalyzer(Tokenizer):
    """Lowercases, then splits on any non-alphanumeric run.

    Closer to what a default Lucene ``StandardAnalyzer`` produces; useful for
    natural-language corpora such as Cranfield abstracts.
    """

    _TOKEN_PATTERN = re.compile(r"[a-z0-9]+")

    def __init__(self, min_length: int = 1):
        if min_length < 1:
            raise ValueError("min_length must be at least 1")
        self._min_length = min_length

    def tokenize(self, text: str) -> list[str]:
        tokens = self._TOKEN_PATTERN.findall(text.lower())
        if self._min_length == 1:
            return tokens
        return [token for token in tokens if len(token) >= self._min_length]
