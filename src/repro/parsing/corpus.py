"""Corpus-document parsers.

A corpus in Airphant is a set of blobs in cloud storage.  A corpus-document
parser turns those blobs into :class:`~repro.parsing.documents.Document`
objects whose :class:`~repro.parsing.documents.DocumentRef` records the byte
range of each document so it can later be fetched directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.parsing.documents import Document, DocumentRef
from repro.storage.base import ObjectStore


class CorpusParser(ABC):
    """Splits corpus blobs into documents with byte-range references."""

    @abstractmethod
    def parse_blob(self, blob_name: str, data: bytes) -> Iterator[Document]:
        """Yield the documents contained in one blob."""

    def parse(self, store: ObjectStore, blob_names: Iterable[str]) -> Iterator[Document]:
        """Yield the documents contained in each named blob of ``store``."""
        for blob_name in blob_names:
            yield from self.parse_blob(blob_name, store.get(blob_name))


class LineDelimitedCorpusParser(CorpusParser):
    """One document per line; the paper's default for log corpora.

    Byte offsets and lengths are computed against the raw blob bytes so that
    a posting's range read returns exactly the document line (without the
    trailing newline).
    """

    def __init__(self, encoding: str = "utf-8", skip_empty: bool = True):
        self._encoding = encoding
        self._skip_empty = skip_empty

    def parse_blob(self, blob_name: str, data: bytes) -> Iterator[Document]:
        offset = 0
        for raw_line in data.split(b"\n"):
            length = len(raw_line)
            if length > 0 or not self._skip_empty:
                text = raw_line.decode(self._encoding)
                if text or not self._skip_empty:
                    ref = DocumentRef(blob=blob_name, offset=offset, length=length)
                    yield Document(ref=ref, text=text)
            offset += length + 1  # account for the newline separator


class WholeBlobCorpusParser(CorpusParser):
    """Each blob is a single document (e.g., one file per abstract)."""

    def __init__(self, encoding: str = "utf-8"):
        self._encoding = encoding

    def parse_blob(self, blob_name: str, data: bytes) -> Iterator[Document]:
        ref = DocumentRef(blob=blob_name, offset=0, length=len(data))
        yield Document(ref=ref, text=data.decode(self._encoding))


def parse_corpus(
    store: ObjectStore,
    blob_names: Iterable[str],
    parser: CorpusParser | None = None,
) -> list[Document]:
    """Parse all documents of a corpus into a list.

    ``parser`` defaults to :class:`LineDelimitedCorpusParser`, the layout used
    by every corpus in the paper's evaluation.
    """
    if parser is None:
        parser = LineDelimitedCorpusParser()
    return list(parser.parse(store, blob_names))
