"""Node health tracking: periodic probes, mark-down / mark-up with backoff.

The router must not burn its latency budget on nodes that are known-dead,
and must notice when they come back.  :class:`HealthTracker` keeps one
:class:`NodeHealth` record per peer and feeds two signals into it:

* **background probes** — a daemon thread GETs each peer's ``/healthz``
  every ``probe_interval_s``; any HTTP answer counts as alive (a node
  reporting ``degraded`` can still answer its shards — that is the same
  liveness contract the endpoint itself promises);
* **query outcomes** — the router reports per-node successes and failures,
  so a dead node is marked down by the very first query that trips over
  it, without waiting for the next probe tick.

A marked-down node is retried with exponential backoff (doubling from
``backoff_ms`` up to ``max_backoff_ms``): between retry deadlines neither
probes nor routing touch it, so a dead peer costs one timeout per backoff
window instead of one per query.  Any success — probe or query — marks the
node back up immediately.

Everything is injectable (probe function, clock) so tests can drive
mark-down/mark-up deterministically without sockets or sleeps.
"""

from __future__ import annotations

import threading
import time
import urllib.error
import urllib.request
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.observability import NULL_REGISTRY, MetricsRegistry


def http_probe(url: str, timeout_s: float) -> None:
    """Default probe: GET ``{url}/healthz``; raises on any failure."""
    with urllib.request.urlopen(f"{url}/healthz", timeout=timeout_s) as response:
        response.read()


@dataclass
class NodeHealth:
    """Mutable health record of one peer node."""

    url: str
    healthy: bool = True
    consecutive_failures: int = 0
    #: Monotonic timestamps (``None`` before the first event).
    last_probe: float | None = None
    last_ok: float | None = None
    #: Monotonic deadline before which a marked-down node is not retried.
    retry_at: float = 0.0
    last_error: str | None = field(default=None, repr=False)

    def summary(self, now: float) -> dict[str, Any]:
        """JSON-ready state (ages in seconds, ``None`` when never seen)."""
        entry: dict[str, Any] = {
            "healthy": self.healthy,
            "consecutive_failures": self.consecutive_failures,
            "last_probe_age_s": (
                round(now - self.last_probe, 3) if self.last_probe is not None else None
            ),
            "last_ok_age_s": (
                round(now - self.last_ok, 3) if self.last_ok is not None else None
            ),
        }
        if not self.healthy:
            entry["retry_in_s"] = round(max(0.0, self.retry_at - now), 3)
            if self.last_error:
                entry["last_error"] = self.last_error
        return entry


class HealthTracker:
    """Tracks liveness of a fixed peer set for the query router.

    Thread-safe: the probe thread, the router's worker threads, and
    ``/healthz`` rendering all read and write records under one lock.
    """

    def __init__(
        self,
        peers: Iterable[str],
        probe_interval_s: float = 5.0,
        probe_timeout_s: float = 2.0,
        backoff_ms: float = 500.0,
        max_backoff_ms: float = 30_000.0,
        probe: Callable[[str, float], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if probe_interval_s < 0:
            raise ValueError("probe_interval_s must be non-negative")
        if probe_timeout_s <= 0:
            raise ValueError("probe_timeout_s must be positive")
        if backoff_ms <= 0 or max_backoff_ms < backoff_ms:
            raise ValueError("need 0 < backoff_ms <= max_backoff_ms")
        self._nodes = {url: NodeHealth(url=url) for url in dict.fromkeys(peers)}
        if not self._nodes:
            raise ValueError("HealthTracker needs at least one peer")
        self._probe_interval_s = probe_interval_s
        self._probe_timeout_s = probe_timeout_s
        self._backoff_ms = backoff_ms
        self._max_backoff_ms = max_backoff_ms
        self._probe = probe if probe is not None else http_probe
        self._clock = clock
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._probes_metric = self._metrics.counter(
            "airphant_cluster_probes_total",
            "Peer health probes, by outcome",
            label_names=("outcome",),
        )
        self._transitions_metric = self._metrics.counter(
            "airphant_cluster_transitions_total",
            "Peer mark-down / mark-up transitions",
            label_names=("direction",),
        )
        # Weakly bound, like the facade's occupancy gauges: the registry
        # must not keep a closed tracker (and its probe thread) alive.
        tracker_ref = weakref.ref(self)
        self._metrics.gauge(
            "airphant_cluster_peer_nodes", "Peer nodes the router knows about"
        ).set_function(
            lambda: len(t._nodes) if (t := tracker_ref()) is not None else 0
        )
        self._metrics.gauge(
            "airphant_cluster_live_nodes", "Peer nodes currently considered live"
        ).set_function(
            lambda: len(t.live_nodes()) if (t := tracker_ref()) is not None else 0
        )

    # -- lifecycle ---------------------------------------------------------------

    @property
    def peers(self) -> tuple[str, ...]:
        """Every tracked peer URL."""
        return tuple(self._nodes)

    def start(self) -> None:
        """Start the background probe thread (no-op when interval is 0)."""
        if self._probe_interval_s <= 0 or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="airphant-health-probe", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop the probe thread (idempotent)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self._probe_interval_s + self._probe_timeout_s + 1.0)

    def _run(self) -> None:
        while not self._stop.wait(self._probe_interval_s):
            self.probe_once()

    # -- probing -----------------------------------------------------------------

    def probe_once(self) -> None:
        """Probe every peer that is due (live, or past its backoff deadline)."""
        now = self._clock()
        with self._lock:
            due = [
                node.url
                for node in self._nodes.values()
                if node.healthy or now >= node.retry_at
            ]
        for url in due:
            try:
                self._probe(url, self._probe_timeout_s)
            except Exception as error:  # noqa: BLE001 - any failure marks down
                self._probes_metric.inc(outcome="failure")
                self.record_failure(url, f"probe: {error}")
            else:
                self._probes_metric.inc(outcome="success")
                self.record_success(url)
            with self._lock:
                node = self._nodes.get(url)
                if node is not None:
                    node.last_probe = self._clock()

    # -- signals -----------------------------------------------------------------

    def record_success(self, url: str) -> None:
        """A node answered (probe or routed query): mark it up."""
        with self._lock:
            node = self._nodes.get(url)
            if node is None:
                return
            if not node.healthy:
                self._transitions_metric.inc(direction="up")
            node.healthy = True
            node.consecutive_failures = 0
            node.retry_at = 0.0
            node.last_ok = self._clock()
            node.last_error = None

    def record_failure(self, url: str, error: str) -> None:
        """A node failed us: mark it down (or extend its backoff)."""
        with self._lock:
            node = self._nodes.get(url)
            if node is None:
                return
            if node.healthy:
                self._transitions_metric.inc(direction="down")
            node.healthy = False
            node.consecutive_failures += 1
            backoff_ms = min(
                self._backoff_ms * (2 ** (node.consecutive_failures - 1)),
                self._max_backoff_ms,
            )
            node.retry_at = self._clock() + backoff_ms / 1000.0
            node.last_error = error

    # -- routing input -----------------------------------------------------------

    def is_live(self, url: str) -> bool:
        """Whether routing should try ``url`` now (up, or due for a retry)."""
        with self._lock:
            node = self._nodes.get(url)
            if node is None:
                return False
            return node.healthy or self._clock() >= node.retry_at

    def live_nodes(self) -> list[str]:
        """Peers currently marked healthy (backoff retries not included)."""
        with self._lock:
            return [url for url, node in self._nodes.items() if node.healthy]

    def ordered(self, candidates: Sequence[str]) -> list[str]:
        """``candidates`` reordered for routing: usable nodes first.

        Keeps the replica order within each class, so the consistent-hash
        owner stays first among the live replicas; known-down nodes (still
        inside their backoff window) go last as a final resort — a fully
        dead replica set should still be *tried* rather than skipped.
        """
        usable = [url for url in candidates if self.is_live(url)]
        rest = [url for url in candidates if url not in usable]
        return usable + rest

    def summary(self) -> dict[str, Any]:
        """JSON-ready health block (``/healthz``'s ``cluster.nodes``)."""
        now = self._clock()
        with self._lock:
            nodes = {url: node.summary(now) for url, node in self._nodes.items()}
            live = [url for url, node in self._nodes.items() if node.healthy]
            down = [url for url in self._nodes if url not in live]
        return {
            "peers": len(nodes),
            "live": len(live),
            "marked_down": down,
            "nodes": nodes,
        }
