"""The scatter-gather query router of the scale-out tier.

:class:`QueryRouter` turns one :class:`~repro.service.api.SearchRequest`
into per-node shard-subset requests, fans them out over HTTP, and merges
the partial answers back into a single typed
:class:`~repro.service.api.SearchResponse`:

* **scatter** — the consistent-hash topology assigns every shard ordinal
  an ordered replica set; ordinals sharing the same (health-ordered)
  replica sequence travel together as one node request carrying
  ``shards=[...]``.  Unsharded members ride with ordinal 0, so each piece
  of the index is answered exactly once.
* **resilience** — each node request has a wall-clock bound
  (``shard_timeout_s``); a failed or timed-out node is marked down in the
  health tracker and the group fails over to the next replica, with up to
  ``node_retries`` extra passes over the replica set.  With
  ``node_hedge_ms`` set, a request still unanswered after the delay is
  *duplicated* to the next replica and the first answer wins — the
  storage layer's hedged-read defense (Section IV-G /
  :class:`~repro.storage.resilient.ResilientStore`) applied one level up,
  across nodes instead of requests.
* **gather** — surviving answers merge exactly like a single node would:
  documents are de-duplicated by ``(blob, offset, length)`` and sorted in
  posting order (partitions are disjoint, so this reproduces the
  single-node result byte for byte); candidate and false-positive counts
  sum; simulated latency charges the max across nodes (they proceed in
  parallel) while bytes and round trips sum.  Shards whose every replica
  failed appear as :class:`~repro.service.api.ShardErrorInfo` entries on a
  ``partial: true`` response instead of failing the query; only a query
  no shard could answer raises (``503 cluster_unavailable``).

The router is transport-agnostic: the default transport speaks JSON over
``urllib``, tests inject an in-process one.  A node answering with a 4xx
body (bad query, unknown index) fails the whole query with that same typed
error — a *request* defect is not a node failure and must not fail over.
"""

from __future__ import annotations

import inspect
import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.cluster.health import HealthTracker
from repro.cluster.topology import ClusterTopology
from repro.observability import NULL_REGISTRY, MetricsRegistry
from repro.observability.tracing import (
    PARENT_SPAN_HEADER,
    TRACE_ID_HEADER,
    Span,
    attach,
    current_span,
    span,
)
from repro.service.api import (
    DocumentHit,
    ErrorInfo,
    LatencyInfo,
    SearchRequest,
    SearchResponse,
    ServiceError,
    ShardErrorInfo,
)

#: How a router reaches a node: ``(base_url, path, json_payload, timeout_s)``
#: → decoded JSON.  ``payload=None`` means GET.  Implementations raise
#: :class:`NodeQueryError` for node-level failures (unreachable, timeout,
#: 5xx) and :class:`~repro.service.api.ServiceError` for definitive 4xx
#: answers.  A transport *may* accept a keyword-only ``headers`` mapping;
#: the router detects support by signature and uses it to propagate trace
#: context to peers (transports without the parameter simply don't carry
#: trace headers — routing is unaffected).
Transport = Callable[[str, str, Mapping[str, Any] | None, float], Any]


class NodeQueryError(Exception):
    """A node failed to answer (failover-able, unlike a typed 4xx)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def http_transport(
    url: str,
    path: str,
    payload: Mapping[str, Any] | None,
    timeout_s: float,
    headers: Mapping[str, str] | None = None,
) -> Any:
    """Default JSON-over-HTTP transport (stdlib ``urllib`` only)."""
    request_headers = {"Content-Type": "application/json"}
    if headers:
        request_headers.update(headers)
    request = urllib.request.Request(
        f"{url}{path}",
        data=None if payload is None else json.dumps(payload).encode("utf-8"),
        headers=request_headers,
        method="GET" if payload is None else "POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        body = error.read()
        if 400 <= error.code < 500:
            # The node answered definitively: the request is at fault, not
            # the node.  Re-raise the node's own typed error.
            try:
                info = ErrorInfo.from_json(body)
            except (ValueError, KeyError):
                info = ErrorInfo(status=error.code, error="bad_request", message=str(error))
            raise ServiceError(info.status, info.error, info.message) from error
        raise NodeQueryError("node_error", f"{url} answered {error.code}") from error
    except TimeoutError as error:
        raise NodeQueryError("node_timeout", f"{url} timed out after {timeout_s}s") from error
    except (urllib.error.URLError, OSError) as error:
        reason = getattr(error, "reason", error)
        if isinstance(reason, TimeoutError) or "timed out" in str(reason):
            raise NodeQueryError(
                "node_timeout", f"{url} timed out after {timeout_s}s"
            ) from error
        raise NodeQueryError("node_unreachable", f"{url}: {reason}") from error
    except (ValueError, json.JSONDecodeError) as error:
        raise NodeQueryError("node_error", f"{url} answered non-JSON: {error}") from error


@dataclass(frozen=True)
class RoutePlan:
    """The scatter plan of one routed query (exposed for tests / /cluster)."""

    index: str
    num_shards: int
    #: Health-ordered candidate nodes → the ordinals they are asked for.
    groups: tuple[tuple[tuple[str, ...], tuple[int, ...]], ...]


class QueryRouter:
    """Scatter-gathers search requests over the cluster's searcher nodes."""

    def __init__(
        self,
        peers: Iterable[str],
        replication_factor: int = 2,
        shard_timeout_s: float = 5.0,
        node_hedge_ms: float = 0.0,
        node_retries: int = 1,
        probe_interval_s: float = 5.0,
        vnodes: int = 64,
        transport: Transport | None = None,
        health: HealthTracker | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if shard_timeout_s <= 0:
            raise ValueError("shard_timeout_s must be positive")
        if node_hedge_ms < 0:
            raise ValueError("node_hedge_ms must be non-negative")
        if node_retries < 0:
            raise ValueError("node_retries must be non-negative")
        self._topology = ClusterTopology(
            peers, replication_factor=replication_factor, vnodes=vnodes
        )
        self._shard_timeout_s = shard_timeout_s
        self._node_hedge_ms = node_hedge_ms
        self._node_retries = node_retries
        self._transport: Transport = transport if transport is not None else http_transport
        # Trace headers are an optional transport capability: carry them
        # only when the transport's signature declares a ``headers``
        # parameter (older 4-arg transports keep working unchanged).
        try:
            self._transport_headers = (
                "headers" in inspect.signature(self._transport).parameters
            )
        except (TypeError, ValueError):
            self._transport_headers = False
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        if health is not None:
            self._health = health
            self._owns_health = False
        else:
            self._health = HealthTracker(
                self._topology.peers,
                probe_interval_s=probe_interval_s,
                probe_timeout_s=min(shard_timeout_s, 2.0),
                probe=self._probe,
                metrics=self._metrics,
            )
            self._owns_health = True
            self._health.start()
        # Shard counts are immutable per build; cache them so steady-state
        # routing costs zero extra round trips.  Invalidated on 404 replans.
        self._num_shards: dict[str, int] = {}
        self._num_shards_lock = threading.Lock()
        # Scatter pool: wide enough for a full fan-out; hedge duplicates run
        # on their own pool so they can never starve the primaries that
        # spawned them.
        workers = max(8, 2 * len(self._topology.peers))
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="airphant-router"
        )
        self._hedge_pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="airphant-router-hedge"
        )

        self._requests_metric = self._metrics.counter(
            "airphant_router_requests_total",
            "Routed queries, by outcome (ok / partial / error)",
            label_names=("outcome",),
        )
        self._seconds_metric = self._metrics.histogram(
            "airphant_router_seconds", "End-to-end wall-clock routed query latency"
        )
        self._node_requests_metric = self._metrics.counter(
            "airphant_router_node_requests_total",
            "Per-node shard-subset requests, by node and outcome",
            label_names=("node", "outcome"),
        )
        self._failovers_metric = self._metrics.counter(
            "airphant_router_failovers_total",
            "Shard groups retried on a different replica after a node failure",
        )
        self._hedges_metric = self._metrics.counter(
            "airphant_router_hedges_total",
            "Shard-subset requests duplicated to a backup replica (node hedging)",
        )
        self._shard_errors_metric = self._metrics.counter(
            "airphant_router_shard_errors_total",
            "Shards left unanswered after all replicas failed",
        )

    def _probe(self, url: str, timeout_s: float) -> None:
        """Health probe through the router's own transport."""
        self._transport(url, "/healthz", None, timeout_s)

    # -- lifecycle ---------------------------------------------------------------

    @property
    def topology(self) -> ClusterTopology:
        """The shard→node placement."""
        return self._topology

    @property
    def health(self) -> HealthTracker:
        """The peer health tracker feeding routing decisions."""
        return self._health

    def close(self) -> None:
        """Stop probing and release the scatter pools (idempotent)."""
        if self._owns_health:
            self._health.close()
        self._pool.shutdown(wait=False)
        self._hedge_pool.shutdown(wait=False)

    def __enter__(self) -> "QueryRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- planning ----------------------------------------------------------------

    def _resolve_num_shards(self, index: str) -> int:
        with self._num_shards_lock:
            cached = self._num_shards.get(index)
        if cached is not None:
            return cached
        errors: list[str] = []
        for node in self._health.ordered(self._topology.peers):
            try:
                info = self._transport(
                    node, f"/indexes/{index}", None, self._shard_timeout_s
                )
            except NodeQueryError as error:
                self._health.record_failure(node, str(error))
                errors.append(f"{node}: {error}")
                continue
            self._health.record_success(node)
            num_shards = max(1, int(info.get("num_shards", 1)))
            with self._num_shards_lock:
                self._num_shards[index] = num_shards
            return num_shards
        raise ServiceError(
            503,
            "cluster_unavailable",
            f"no node could describe index {index!r}: {'; '.join(errors)}",
        )

    def invalidate(self, index: str | None = None) -> None:
        """Drop cached shard counts (all of them when ``index`` is None)."""
        with self._num_shards_lock:
            if index is None:
                self._num_shards.clear()
            else:
                self._num_shards.pop(index, None)

    def plan(self, index: str, num_shards: int) -> RoutePlan:
        """Group shard ordinals by their health-ordered replica sequence.

        Ordinals sharing the same candidate sequence travel as one node
        request; distinct sequences scatter independently so one slow or
        dead owner only degrades its own shards.
        """
        assignments = self._topology.assignments(index, num_shards)
        groups: dict[tuple[str, ...], list[int]] = {}
        for ordinal in range(num_shards):
            candidates = tuple(self._health.ordered(assignments[ordinal]))
            groups.setdefault(candidates, []).append(ordinal)
        return RoutePlan(
            index=index,
            num_shards=num_shards,
            groups=tuple(
                (candidates, tuple(ordinals)) for candidates, ordinals in groups.items()
            ),
        )

    # -- routing -----------------------------------------------------------------

    def route(self, request: SearchRequest) -> SearchResponse:
        """Answer ``request`` by scatter-gathering over the cluster."""
        if request.shards is not None:
            raise ServiceError(
                400,
                "bad_request",
                "routed requests must not pin shards; send shard subsets to a node directly",
            )
        started = time.perf_counter()
        try:
            response = self._route(request)
        except ServiceError as error:
            self._requests_metric.inc(
                outcome="error" if error.status >= 500 else "rejected"
            )
            raise
        self._requests_metric.inc(outcome="partial" if response.partial else "ok")
        self._seconds_metric.observe(time.perf_counter() - started)
        return response

    def _route(self, request: SearchRequest) -> SearchResponse:
        num_shards = self._resolve_num_shards(request.index)
        plan = self.plan(request.index, num_shards)
        with span(
            "router.route",
            index=request.index,
            shards=num_shards,
            groups=len(plan.groups),
        ):
            # Pool threads do not inherit contextvars; re-attach the ambient
            # span so each group's node spans land under this route span.
            parent = current_span()

            def query_group(
                candidates: tuple[str, ...], ordinals: tuple[int, ...]
            ) -> SearchResponse:
                with attach(parent):
                    return self._query_group(request, candidates, ordinals)

            futures = {
                self._pool.submit(query_group, candidates, ordinals): (
                    candidates,
                    ordinals,
                )
                for candidates, ordinals in plan.groups
            }
            responses: list[SearchResponse] = []
            shard_errors: list[ShardErrorInfo] = []
            definitive: ServiceError | None = None
            for future in futures:
                candidates, ordinals = futures[future]
                try:
                    responses.append(future.result())
                except ServiceError as error:
                    # A typed 4xx from any node condemns the whole request
                    # (same query everywhere — the others would reject it too).
                    definitive = definitive or error
                except NodeQueryError as error:
                    self._shard_errors_metric.inc(len(ordinals))
                    shard_errors.extend(
                        ShardErrorInfo(
                            shard=ordinal,
                            node=candidates[-1] if candidates else "",
                            error=error.code,
                            message=str(error),
                        )
                        for ordinal in ordinals
                    )
            if definitive is not None:
                raise definitive
            if not responses:
                detail = "; ".join(
                    f"shard {e.shard} via {e.node}: {e.message}"
                    for e in shard_errors[:4]
                )
                raise ServiceError(
                    503, "cluster_unavailable", f"every shard failed: {detail}"
                )
            return self._merge(request, responses, shard_errors)

    def _query_group(
        self,
        request: SearchRequest,
        candidates: tuple[str, ...],
        ordinals: tuple[int, ...],
    ) -> SearchResponse:
        """One group's answer, with failover, retries, and optional hedging.

        Tries the health-ordered candidates in sequence (``node_retries``
        extra passes), marking each outcome in the health tracker.  With
        hedging on, the first attempt races the primary against a
        delay-started backup.  Raises the last :class:`NodeQueryError`
        when every attempt fails.
        """
        if not candidates:
            raise NodeQueryError("no_replicas", "no replica assigned")
        if self._node_hedge_ms > 0 and len(candidates) > 1:
            try:
                return self._query_hedged(request, candidates, ordinals)
            except NodeQueryError as error:
                last_error = error
                remaining = list(candidates[2:])
        else:
            last_error = None
            remaining = list(candidates)
        attempts = remaining + list(candidates) * self._node_retries
        first = last_error is None
        for node in attempts:
            if not first:
                self._failovers_metric.inc()
            first = False
            try:
                response = self._query_node(request, node, ordinals)
            except NodeQueryError as error:
                last_error = error
                continue
            return response
        assert last_error is not None
        raise last_error

    def _query_hedged(
        self,
        request: SearchRequest,
        candidates: tuple[str, ...],
        ordinals: tuple[int, ...],
    ) -> SearchResponse:
        """Race the primary against a backup started ``node_hedge_ms`` later."""
        parent = current_span()

        def query_node(node: str) -> SearchResponse:
            with attach(parent):
                return self._query_node(request, node, ordinals)

        primary = self._hedge_pool.submit(query_node, candidates[0])
        done, _ = wait([primary], timeout=self._node_hedge_ms / 1000.0)
        if done:
            return primary.result()  # raises the primary's NodeQueryError
        self._hedges_metric.inc()
        backup = self._hedge_pool.submit(query_node, candidates[1])
        pending = {primary, backup}
        last_error: NodeQueryError | None = None
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    return future.result()
                except NodeQueryError as error:
                    last_error = error
                # ServiceError (typed 4xx) propagates out of the loop.
        assert last_error is not None
        raise last_error

    def _query_node(
        self, request: SearchRequest, node: str, ordinals: tuple[int, ...]
    ) -> SearchResponse:
        """POST one shard-subset request to ``node`` and record the outcome."""
        payload = request.to_dict()
        payload["shards"] = list(ordinals)
        with span("router.node", node=node, shards=list(ordinals)) as node_span:
            headers: dict[str, str] | None = None
            trace_id = getattr(node_span, "trace_id", None)
            if trace_id is not None and self._transport_headers:
                # Ask the peer to trace its share of the query under our
                # trace id; its response carries the sub-tree to graft.
                headers = {
                    TRACE_ID_HEADER: trace_id,
                    PARENT_SPAN_HEADER: node_span.span_id,
                }
            try:
                if headers is not None:
                    body = self._transport(
                        node, "/search", payload, self._shard_timeout_s, headers=headers
                    )
                else:
                    body = self._transport(node, "/search", payload, self._shard_timeout_s)
            except NodeQueryError as error:
                node_span.set(error=error.code)
                self._node_requests_metric.inc(node=node, outcome="failure")
                self._health.record_failure(node, str(error))
                raise
            except ServiceError:
                # The node is alive and answered; the request is at fault.
                self._node_requests_metric.inc(node=node, outcome="rejected")
                self._health.record_success(node)
                raise
            self._node_requests_metric.inc(node=node, outcome="ok")
            self._health.record_success(node)
            peer_trace = body.pop("trace", None) if isinstance(body, dict) else None
            if isinstance(peer_trace, Mapping) and "spans" in peer_trace:
                try:
                    node_span.graft(Span.from_dict(peer_trace["spans"]))
                except (KeyError, TypeError, ValueError):
                    pass  # a malformed peer trace must never fail the query
            try:
                return SearchResponse.from_dict(body)
            except (KeyError, TypeError, ValueError) as error:
                raise NodeQueryError(
                    "node_error", f"{node} answered a malformed response: {error}"
                ) from error

    # -- merging -----------------------------------------------------------------

    def _merge(
        self,
        request: SearchRequest,
        responses: list[SearchResponse],
        shard_errors: list[ShardErrorInfo],
    ) -> SearchResponse:
        """Union the per-node answers back into one response.

        Shard partitions are disjoint, so documents de-duplicate by their
        storage reference and sort back into the global posting order —
        the exact order a single node produces.  Latency merges like
        :class:`~repro.search.multi.MultiIndexSearcher`: nodes proceed in
        parallel (max) while bytes and round trips are real work (sum).
        """
        seen: set[tuple[str, int, int]] = set()
        documents: list[DocumentHit] = []
        for response in responses:
            for document in response.documents:
                ref = (document.blob, document.offset, document.length)
                if ref not in seen:
                    seen.add(ref)
                    documents.append(document)
        if request.mode == "topk_bm25":
            # Ranked gather: every node scored with the same corpus-wide
            # statistics, so merging the per-node top-k lists best-first
            # (posting order breaks ties) reproduces the single-node ranked
            # list exactly.
            documents.sort(
                key=lambda d: (-(d.score or 0.0), d.blob, d.offset, d.length)
            )
        else:
            documents.sort(key=lambda d: (d.blob, d.offset, d.length))
        if request.top_k is not None:
            documents = documents[: request.top_k]
        latency = LatencyInfo(
            lookup_ms=max(r.latency.lookup_ms for r in responses),
            retrieval_ms=max(r.latency.retrieval_ms for r in responses),
            wait_ms=max(r.latency.wait_ms for r in responses),
            download_ms=sum(r.latency.download_ms for r in responses),
            bytes_fetched=sum(r.latency.bytes_fetched for r in responses),
            round_trips=sum(r.latency.round_trips for r in responses),
        )
        return SearchResponse(
            query=request.query,
            index=request.index,
            mode=request.mode,
            documents=tuple(documents),
            num_candidates=sum(r.num_candidates for r in responses),
            false_positive_count=sum(r.false_positive_count for r in responses),
            latency=latency,
            partial=bool(shard_errors),
            shard_errors=tuple(
                sorted(shard_errors, key=lambda error: error.shard)
            ),
        )

    # -- inspection --------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """JSON-ready cluster view (the ``GET /cluster`` payload)."""
        with self._num_shards_lock:
            known = sorted(self._num_shards.items())
        return {
            "topology": self._topology.describe(indexes=known),
            "health": self._health.summary(),
            "router": {
                "shard_timeout_s": self._shard_timeout_s,
                "node_hedge_ms": self._node_hedge_ms,
                "node_retries": self._node_retries,
            },
        }

    def summary(self) -> dict[str, Any]:
        """Compact health block for ``/healthz``'s ``cluster`` entry."""
        health = self._health.summary()
        return {
            "enabled": True,
            "peers": health["peers"],
            "live": health["live"],
            "marked_down": health["marked_down"],
            "nodes": health["nodes"],
        }
