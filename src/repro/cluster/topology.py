"""Cluster topology: consistent-hash shard → node placement.

A topology is a pure, deterministic function from the peer list to shard
assignments — no coordination service, no stored state.  Every router and
node computes the same :class:`~repro.search.replication.HashRing`
independently from the same peer list, so they all agree on which node owns
which shard (and who its failover replicas are) without ever talking to
each other about it.  Membership churn keeps placement stable: adding or
removing one node only moves an expected ``1/n`` of the shard keys.

Shards are identified by ``(index, ordinal)``; the corresponding ring key
is ``{index}/shard-{ordinal:04d}``, matching the shard blob layout, so a
key's placement is stable across topology instances and processes.
Unsharded state (plain indexes, deltas, live memtables) rides with
ordinal 0: whichever node owns shard 0 answers it.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.search.replication import HashRing, place_replicas


class ClusterTopology:
    """Deterministic shard→node placement over a fixed peer list.

    Parameters
    ----------
    peers:
        Base URLs of the member nodes (order-insensitive; duplicates are
        dropped).
    replication_factor:
        Distinct nodes per shard: the first is the owner, the rest are the
        failover / hedge replicas, capped at the member count.
    vnodes:
        Virtual ring points per node (balance knob of :class:`HashRing`).
    """

    def __init__(
        self,
        peers: Iterable[str],
        replication_factor: int = 2,
        vnodes: int = 64,
    ) -> None:
        if replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        self._ring = HashRing(peers, vnodes=vnodes)
        self._replication_factor = replication_factor

    @property
    def peers(self) -> tuple[str, ...]:
        """The member node URLs."""
        return self._ring.nodes

    @property
    def replication_factor(self) -> int:
        """Requested distinct replicas per shard (capped at the peer count)."""
        return self._replication_factor

    @property
    def ring(self) -> HashRing:
        """The underlying consistent-hash ring."""
        return self._ring

    def __len__(self) -> int:
        return len(self._ring)

    @staticmethod
    def shard_key(index: str, ordinal: int) -> str:
        """The ring key of one shard (mirrors the shard blob prefix)."""
        return f"{index}/shard-{ordinal:04d}"

    def replicas(self, index: str, ordinal: int) -> list[str]:
        """Ordered replica set for one shard: owner first, failovers after."""
        return self._ring.replicas_for(
            self.shard_key(index, ordinal), self._replication_factor
        )

    def assignments(self, index: str, num_shards: int) -> dict[int, list[str]]:
        """Ordinal → ordered replica set for every shard of ``index``."""
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        keys = [self.shard_key(index, ordinal) for ordinal in range(num_shards)]
        placement = place_replicas(keys, self._ring, self._replication_factor)
        return {ordinal: placement[keys[ordinal]] for ordinal in range(num_shards)}

    def with_peer(self, peer: str) -> "ClusterTopology":
        """The topology after ``peer`` joins (no-op if already a member)."""
        return ClusterTopology(
            [*self._ring.nodes, peer],
            replication_factor=self._replication_factor,
            vnodes=self._ring.vnodes,
        )

    def without_peer(self, peer: str) -> "ClusterTopology":
        """The topology after ``peer`` leaves (``ValueError`` on the last)."""
        remaining = [node for node in self._ring.nodes if node != peer]
        return ClusterTopology(
            remaining,
            replication_factor=self._replication_factor,
            vnodes=self._ring.vnodes,
        )

    def describe(self, indexes: Sequence[tuple[str, int]] = ()) -> dict[str, Any]:
        """JSON-ready summary (the ``GET /cluster`` topology block).

        ``indexes`` optionally names ``(index, num_shards)`` pairs whose
        concrete shard assignments should be included.
        """
        payload: dict[str, Any] = {
            "peers": list(self._ring.nodes),
            "replication_factor": self._replication_factor,
            "vnodes": self._ring.vnodes,
        }
        if indexes:
            payload["assignments"] = {
                index: {
                    str(ordinal): nodes
                    for ordinal, nodes in self.assignments(index, num_shards).items()
                }
                for index, num_shards in indexes
            }
        return payload
