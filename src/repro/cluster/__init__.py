"""Scale-out query tier: consistent-hash topology, health, and routing.

Airphant's premise is elastic compute over shared cloud storage: searcher
nodes are stateless (all index state lives in the object store), so a query
tier can grow and shrink freely.  This package adds the missing serving
layer on top of the single-node service:

* :mod:`~repro.cluster.topology` — which node answers which shard, via the
  consistent-hash placement math of :mod:`repro.search.replication`;
* :mod:`~repro.cluster.health` — background ``/healthz`` probes with
  mark-down / mark-up and backoff, feeding routing decisions;
* :mod:`~repro.cluster.router` — the scatter-gather
  :class:`~repro.cluster.router.QueryRouter`: per-shard fan-out over HTTP,
  node-level failover and hedged replica retries, and a partial-result
  merge that degrades (``partial: true`` plus per-shard error detail)
  instead of failing the query.

Every node runs the same binary: ``airphant serve --peers`` turns the
standalone service into a cluster member that both answers shard subsets
and routes whole queries.
"""

from repro.cluster.health import HealthTracker, NodeHealth
from repro.cluster.router import QueryRouter, RoutePlan
from repro.cluster.topology import ClusterTopology

__all__ = [
    "ClusterTopology",
    "HealthTracker",
    "NodeHealth",
    "QueryRouter",
    "RoutePlan",
]
