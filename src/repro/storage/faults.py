"""Wall-clock fault injection for exercising the resilience layer.

:class:`~repro.storage.simulated.SimulatedCloudStore` models latency on a
*virtual* clock — perfect for the paper's figures, useless for exercising
machinery that reacts to real elapsed time (retries, timeouts, hedged
reads).  :class:`FlakyStore` is the wall-clock counterpart: it wraps any
backend and injects

* **transient errors** — reads raise
  :class:`~repro.storage.base.TransientStoreError` with probability
  ``error_rate`` (what :class:`~repro.storage.resilient.ResilientStore`
  retries away);
* **slow replicas** — reads really ``sleep`` for ``slow_ms`` with
  probability ``slow_rate`` (what hedged duplicate reads race past).

Faults are drawn from a private seeded RNG, so a single-threaded replay is
deterministic; under concurrency the *rates* hold but the placement varies.
Tests needing exact placement use :meth:`script` to enqueue forced outcomes
that are consumed before the RNG is consulted.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Callable, Iterable

from repro.storage.base import ObjectStore, TransientStoreError


class FlakyStore(ObjectStore):
    """Fault-injecting :class:`ObjectStore` wrapper (real sleeps, real errors).

    Parameters
    ----------
    backend:
        Store holding the actual bytes.
    error_rate:
        Probability that a read raises :class:`TransientStoreError`.
    slow_rate:
        Probability that a read first sleeps for ``slow_ms`` (a "slow
        replica" straggler).
    slow_ms:
        Wall-clock delay of an injected straggler, in milliseconds.
    seed:
        Seed of the private fault RNG.
    sleep:
        Injection point for tests (default ``time.sleep``).

    Only reads (``get`` / ``get_range``) are fault-injected; metadata and
    write operations pass through untouched, keeping builds and fixture
    setup deterministic.
    """

    def __init__(
        self,
        backend: ObjectStore,
        error_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_ms: float = 50.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")
        if not 0.0 <= slow_rate <= 1.0:
            raise ValueError("slow_rate must be in [0, 1]")
        if slow_ms < 0:
            raise ValueError("slow_ms must be non-negative")
        self._backend = backend
        self.error_rate = error_rate
        self.slow_rate = slow_rate
        self.slow_ms = slow_ms
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._scripted: deque[str] = deque()
        self._lock = threading.Lock()
        #: Transient errors raised so far.
        self.injected_errors = 0
        #: Straggler delays injected so far.
        self.injected_slow = 0

    @property
    def backend(self) -> ObjectStore:
        """The wrapped store holding the actual bytes."""
        return self._backend

    def script(self, outcomes: Iterable[str]) -> None:
        """Enqueue forced outcomes for upcoming reads.

        Parameters
        ----------
        outcomes:
            A sequence of ``"error"``, ``"slow"``, or ``"ok"`` consumed one
            per read (in read order) *before* the RNG is consulted — the
            deterministic handle tests use to place faults exactly.
        """
        allowed = {"error", "slow", "ok"}
        with self._lock:
            for outcome in outcomes:
                if outcome not in allowed:
                    raise ValueError(f"unknown scripted outcome {outcome!r}")
                self._scripted.append(outcome)

    def _inject(self, operation: str) -> None:
        """Apply one fault decision (scripted first, then probabilistic)."""
        with self._lock:
            if self._scripted:
                outcome = self._scripted.popleft()
            else:
                roll_error = self._rng.random() < self.error_rate
                roll_slow = self._rng.random() < self.slow_rate
                outcome = "error" if roll_error else ("slow" if roll_slow else "ok")
            if outcome == "error":
                self.injected_errors += 1
            elif outcome == "slow":
                self.injected_slow += 1
        if outcome == "error":
            raise TransientStoreError(f"injected fault in {operation}")
        if outcome == "slow":
            self._sleep(self.slow_ms / 1000.0)

    # -- ObjectStore interface ---------------------------------------------------

    def put(self, name: str, data: bytes) -> None:
        """Store ``data`` as blob ``name`` (never fault-injected)."""
        self._backend.put(name, data)

    def get(self, name: str) -> bytes:
        """Return blob ``name``, possibly after an injected fault."""
        self._inject(f"get {name!r}")
        return self._backend.get(name)

    def get_range(self, name: str, offset: int, length: int | None = None) -> bytes:
        """Return a byte range of ``name``, possibly after an injected fault."""
        self._inject(f"get_range {name!r}")
        return self._backend.get_range(name, offset, length)

    def size(self, name: str) -> int:
        """Return the size of blob ``name`` (never fault-injected)."""
        return self._backend.size(name)

    def exists(self, name: str) -> bool:
        """Whether blob ``name`` exists (never fault-injected)."""
        return self._backend.exists(name)

    def delete(self, name: str) -> None:
        """Delete blob ``name`` (never fault-injected)."""
        self._backend.delete(name)

    def list_blobs(self, prefix: str = "") -> list[str]:
        """Sorted blob names under ``prefix`` (never fault-injected)."""
        return self._backend.list_blobs(prefix)

    def close(self) -> None:
        """Close this wrapper's pipeline and the wrapped store's."""
        super().close()
        self._backend.close()
