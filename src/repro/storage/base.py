"""Abstract object-store interface.

Cloud object stores (S3, GCS, Azure Blob) expose a flat namespace of named
blobs with whole-object PUT/GET plus byte-range GET.  Airphant only needs
those operations: superposts are packed into a single blob and fetched with
range reads, and documents are addressed by ``(blob, offset, length)``
postings.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable

#: Guards lazy creation of each store's ``read_many`` pipeline (stores don't
#: define ``__init__``, so there is no per-instance lock to use instead).
_READ_MANY_LOCK = threading.Lock()


class StoreError(Exception):
    """Base class of every error an :class:`ObjectStore` raises on purpose.

    Callers that want one except-clause for "the storage layer failed" catch
    this; the subclasses distinguish *what kind* of failure it was, which
    drives the retry policy of :class:`~repro.storage.resilient.ResilientStore`.
    """


class BlobNotFoundError(StoreError, KeyError):
    """Raised when a named blob does not exist in the store.

    A *definitive* answer from the store, not a failure to reach it — it is
    therefore never retried (subclassing ``KeyError`` keeps pre-existing
    ``except KeyError`` callers working).
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"blob not found: {self.name!r}"


class TransientStoreError(StoreError):
    """A request that failed for a (probably) temporary reason.

    Network resets, timeouts, HTTP 5xx answers, and injected faults all map
    to this type; retrying the identical request may well succeed.
    :class:`~repro.storage.resilient.ResilientStore` retries exactly this
    class (plus ``OSError``) and nothing else.
    """


class ReadOnlyStoreError(StoreError):
    """A write (``put``/``delete``) against a backend that cannot accept it.

    Raised by :class:`~repro.storage.httpstore.HTTPRangeStore` when the
    remote server rejects the mutation (plain static file servers speak GET /
    HEAD only).  Never retried: the store answered, the answer was "no".
    """


class StoreAccessError(StoreError):
    """The store definitively refused the request (HTTP 401/403).

    Missing or wrong credentials, an expired token, a private bucket — the
    backend is healthy and answered authoritatively, so retrying the
    identical request cannot help.  Never retried.
    """


@dataclass(frozen=True)
class RangeRead:
    """A byte-range read request against a single blob.

    ``length`` of ``None`` means "read to the end of the blob", matching the
    open-ended ``Range: bytes=offset-`` header of HTTP range requests.
    """

    blob: str
    offset: int = 0
    length: int | None = None

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"offset must be non-negative, got {self.offset}")
        if self.length is not None and self.length < 0:
            raise ValueError(f"length must be non-negative, got {self.length}")


class ObjectStore(ABC):
    """Minimal blob-store interface shared by all backends.

    Concrete implementations must be safe for concurrent reads from multiple
    threads; writes are assumed to happen in a single-threaded build phase
    (the paper's Builder runs offline).
    """

    @abstractmethod
    def put(self, name: str, data: bytes) -> None:
        """Create or overwrite the blob ``name`` with ``data``."""

    @abstractmethod
    def get(self, name: str) -> bytes:
        """Return the full content of blob ``name``.

        Raises :class:`BlobNotFoundError` if it does not exist.
        """

    @abstractmethod
    def get_range(self, name: str, offset: int, length: int | None = None) -> bytes:
        """Return ``length`` bytes of blob ``name`` starting at ``offset``.

        Reads past the end of the blob are truncated (like HTTP range GET).
        """

    @abstractmethod
    def size(self, name: str) -> int:
        """Return the size in bytes of blob ``name``."""

    @abstractmethod
    def exists(self, name: str) -> bool:
        """Return whether blob ``name`` exists."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Remove blob ``name`` if it exists (idempotent)."""

    @abstractmethod
    def list_blobs(self, prefix: str = "") -> list[str]:
        """Return the sorted names of all blobs starting with ``prefix``."""

    # Convenience helpers shared by every backend -------------------------------

    def read(self, request: RangeRead) -> bytes:
        """Execute a single :class:`RangeRead`.

        Returns
        -------
        The requested bytes (truncated at end-of-blob, like
        :meth:`get_range`).
        """
        return self.get_range(request.blob, request.offset, request.length)

    def read_many(self, requests: Iterable[RangeRead]) -> list[bytes]:
        """Execute several range reads as one batched, pipeline-aware fetch.

        The requests are routed through a per-store
        :class:`~repro.storage.pipeline.ReadPipeline` (deduplicating and
        coalescing adjacent/overlapping ranges) over a long-lived
        :class:`~repro.storage.parallel.ParallelFetcher`, so callers get
        batch semantics without wiring up either object themselves.

        Timing semantics for simulated stores: the whole call is charged as a
        *single concurrent batch* (one logical round trip whose wait time is
        the slowest first-byte latency per concurrency wave), not as
        dependent back-to-back reads.  Callers modelling a *sequential*
        access pattern must use
        :meth:`~repro.storage.simulated.SimulatedCloudStore.timed_sequential`
        instead.

        Returns
        -------
        One payload per request, in request order.
        """
        requests = list(requests)
        if not requests:
            return []
        return self._batch_pipeline().fetch(requests).payloads

    def _batch_pipeline(self):
        """The lazily-created pipeline backing :meth:`read_many`.

        Cached per store so repeated calls reuse one fetcher pool; the
        fetcher shuts its pool down via a finalizer when the store is
        collected, so nothing requires an explicit close.
        """
        # Imported lazily: the pipeline modules depend on this one.
        from repro.storage.pipeline import ReadPipeline

        with _READ_MANY_LOCK:
            pipeline = getattr(self, "_read_many_pipeline", None)
            if pipeline is None:
                pipeline = ReadPipeline.for_store(self)
                self._read_many_pipeline = pipeline
            return pipeline

    def close(self) -> None:
        """Release the lazily-created ``read_many`` pipeline, if any.

        Shuts down the pipeline's fetcher thread pool *now* instead of
        waiting for the store to be garbage-collected.  Non-poisoning and
        idempotent: the next :meth:`read_many` call transparently builds a
        fresh pipeline, so closing a store that is still shared is safe.
        Wrapper stores (simulated, resilient, flaky) extend this to close
        their inner store as well.
        """
        with _READ_MANY_LOCK:
            pipeline = self.__dict__.pop("_read_many_pipeline", None)
        if pipeline is not None:
            pipeline.close()

    def __enter__(self) -> "ObjectStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def total_bytes(self, prefix: str = "") -> int:
        """Total stored bytes under ``prefix`` (index storage-size metric).

        Returns
        -------
        The sum of :meth:`size` over every blob :meth:`list_blobs` reports
        under ``prefix`` — 0 on backends that cannot enumerate blobs (see
        :meth:`~repro.storage.httpstore.HTTPRangeStore.list_blobs`).
        """
        return sum(self.size(name) for name in self.list_blobs(prefix))
