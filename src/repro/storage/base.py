"""Abstract object-store interface.

Cloud object stores (S3, GCS, Azure Blob) expose a flat namespace of named
blobs with whole-object PUT/GET plus byte-range GET.  Airphant only needs
those operations: superposts are packed into a single blob and fetched with
range reads, and documents are addressed by ``(blob, offset, length)``
postings.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable

#: Guards lazy creation of each store's ``read_many`` pipeline (stores don't
#: define ``__init__``, so there is no per-instance lock to use instead).
_READ_MANY_LOCK = threading.Lock()


class BlobNotFoundError(KeyError):
    """Raised when a named blob does not exist in the store."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"blob not found: {self.name!r}"


@dataclass(frozen=True)
class RangeRead:
    """A byte-range read request against a single blob.

    ``length`` of ``None`` means "read to the end of the blob", matching the
    open-ended ``Range: bytes=offset-`` header of HTTP range requests.
    """

    blob: str
    offset: int = 0
    length: int | None = None

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"offset must be non-negative, got {self.offset}")
        if self.length is not None and self.length < 0:
            raise ValueError(f"length must be non-negative, got {self.length}")


class ObjectStore(ABC):
    """Minimal blob-store interface shared by all backends.

    Concrete implementations must be safe for concurrent reads from multiple
    threads; writes are assumed to happen in a single-threaded build phase
    (the paper's Builder runs offline).
    """

    @abstractmethod
    def put(self, name: str, data: bytes) -> None:
        """Create or overwrite the blob ``name`` with ``data``."""

    @abstractmethod
    def get(self, name: str) -> bytes:
        """Return the full content of blob ``name``.

        Raises :class:`BlobNotFoundError` if it does not exist.
        """

    @abstractmethod
    def get_range(self, name: str, offset: int, length: int | None = None) -> bytes:
        """Return ``length`` bytes of blob ``name`` starting at ``offset``.

        Reads past the end of the blob are truncated (like HTTP range GET).
        """

    @abstractmethod
    def size(self, name: str) -> int:
        """Return the size in bytes of blob ``name``."""

    @abstractmethod
    def exists(self, name: str) -> bool:
        """Return whether blob ``name`` exists."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Remove blob ``name`` if it exists (idempotent)."""

    @abstractmethod
    def list_blobs(self, prefix: str = "") -> list[str]:
        """Return the sorted names of all blobs starting with ``prefix``."""

    # Convenience helpers shared by every backend -------------------------------

    def read(self, request: RangeRead) -> bytes:
        """Execute a single :class:`RangeRead`."""
        return self.get_range(request.blob, request.offset, request.length)

    def read_many(self, requests: Iterable[RangeRead]) -> list[bytes]:
        """Execute several range reads as one batched, pipeline-aware fetch.

        The requests are routed through a per-store
        :class:`~repro.storage.pipeline.ReadPipeline` (deduplicating and
        coalescing adjacent/overlapping ranges) over a long-lived
        :class:`~repro.storage.parallel.ParallelFetcher`, so callers get
        batch semantics without wiring up either object themselves.

        Timing semantics for simulated stores: the whole call is charged as a
        *single concurrent batch* (one logical round trip whose wait time is
        the slowest first-byte latency per concurrency wave), not as
        dependent back-to-back reads.  Callers modelling a *sequential*
        access pattern must use
        :meth:`~repro.storage.simulated.SimulatedCloudStore.timed_sequential`
        instead.
        """
        requests = list(requests)
        if not requests:
            return []
        return self._batch_pipeline().fetch(requests).payloads

    def _batch_pipeline(self):
        """The lazily-created pipeline backing :meth:`read_many`.

        Cached per store so repeated calls reuse one fetcher pool; the
        fetcher shuts its pool down via a finalizer when the store is
        collected, so nothing requires an explicit close.
        """
        # Imported lazily: the pipeline modules depend on this one.
        from repro.storage.pipeline import ReadPipeline

        with _READ_MANY_LOCK:
            pipeline = getattr(self, "_read_many_pipeline", None)
            if pipeline is None:
                pipeline = ReadPipeline.for_store(self)
                self._read_many_pipeline = pipeline
            return pipeline

    def total_bytes(self, prefix: str = "") -> int:
        """Total stored bytes under ``prefix`` (index storage-size metric)."""
        return sum(self.size(name) for name in self.list_blobs(prefix))
