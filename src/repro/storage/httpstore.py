"""HTTP(S) object-store backend speaking standard byte-range requests.

Airphant's whole read path needs nothing beyond whole-blob GET and byte-range
GET, which *any* HTTP server provides: blob names map to URL paths under a
base URL, ranges travel in the standard ``Range: bytes=start-end`` header.
:class:`HTTPRangeStore` implements the :class:`~repro.storage.base.ObjectStore`
interface over exactly that protocol with the stdlib ``urllib`` only, so an
index exported to any static file server (``python -m http.server``, nginx,
a CDN bucket website endpoint) is directly searchable with
``airphant search --store http://host:port``.

Semantics notes:

* Servers that ignore ``Range`` (Python's own ``http.server`` among them)
  answer ``200`` with the full body; the store slices the requested window
  out client-side, so callers observe byte-identical results either way.
* Reads past end-of-blob truncate (HTTP ``416`` maps to ``b""``), matching
  the local and in-memory backends.
* The protocol has no portable listing operation.  :meth:`list_blobs` first
  tries the optional *listing manifest* (a well-known ``manifest.json``
  blob written at build time with ``airphant build --listing``; see
  :mod:`repro.storage.listing`) and answers from it — which makes catalog
  discovery work against any static file server.  Without the manifest it
  returns ``[]``; point queries (``exists``/``size``/``get``) always work,
  which is what opening and searching a *named* index needs.  Use the
  S3-compatible adapter (:mod:`repro.storage.s3`) when live discovery
  matters.
* Network failures and ``5xx`` answers raise
  :class:`~repro.storage.base.TransientStoreError`, so wrapping in a
  :class:`~repro.storage.resilient.ResilientStore` makes them retryable.
"""

from __future__ import annotations

import time
import urllib.error
import urllib.request
from email.message import Message
from urllib.parse import quote

from repro.observability import MetricsRegistry, get_registry
from repro.storage.base import (
    BlobNotFoundError,
    ObjectStore,
    ReadOnlyStoreError,
    StoreAccessError,
    TransientStoreError,
)

#: HTTP status codes that mean "this server will not accept writes".
_READ_ONLY_STATUSES = frozenset({405, 501})
#: HTTP status codes that mean "you are not allowed" — definitive, never
#: retried, and (on writes) distinct from "this server has no write support".
_ACCESS_DENIED_STATUSES = frozenset({401, 403})


class HTTPRangeStore(ObjectStore):
    """Read-oriented :class:`ObjectStore` over plain HTTP range requests.

    Parameters
    ----------
    base_url:
        URL prefix blob names are appended to (``http://host:port`` or
        ``https://host/prefix``); a trailing slash is optional.
    timeout_s:
        Socket timeout applied to every request, in seconds.
    metrics:
        Registry request counts (by method and status) and wall-clock
        request latency are recorded into; defaults to the process-wide
        registry (:func:`repro.observability.get_registry`).

    Writes (``put``/``delete``) are attempted as HTTP ``PUT``/``DELETE`` —
    WebDAV-style servers accept them — and raise
    :class:`~repro.storage.base.ReadOnlyStoreError` when the server refuses.
    """

    #: ``backend`` label value of this store's registry metrics (the S3
    #: adapter overrides it so its traffic is distinguishable).
    _METRICS_BACKEND = "http"

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 10.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ValueError(f"base_url must be http(s)://, got {base_url!r}")
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self._base_url = base_url.rstrip("/")
        self._timeout_s = timeout_s
        #: ``(fetched_at, decoded listing or None)`` — see :meth:`_listing`.
        self._listing_cache: tuple[float, dict[str, int] | None] | None = None
        registry = metrics if metrics is not None else get_registry()
        self._requests_metric = registry.counter(
            "airphant_backend_requests_total",
            "HTTP requests issued to real storage backends",
            label_names=("backend", "method", "status"),
        )
        self._latency_metric = registry.histogram(
            "airphant_backend_request_seconds",
            "Wall-clock latency of backend HTTP requests",
            label_names=("backend", "method"),
        )

    @property
    def base_url(self) -> str:
        """URL prefix every blob name is resolved against."""
        return self._base_url

    @property
    def timeout_s(self) -> float:
        """Per-request socket timeout in seconds."""
        return self._timeout_s

    # -- request plumbing --------------------------------------------------------

    def blob_url(self, name: str) -> str:
        """Return the full URL of blob ``name`` (slashes kept as path separators)."""
        if not name or name.startswith("/") or ".." in name.split("/"):
            raise ValueError(f"invalid blob name: {name!r}")
        return f"{self._base_url}/{quote(name, safe='/')}"

    def _headers(self, method: str, url: str, body: bytes | None) -> dict[str, str]:
        """Extra request headers; subclasses add auth (e.g. AWS SigV4) here."""
        return {}

    def _request(
        self,
        method: str,
        url: str,
        name: str,
        headers: dict[str, str] | None = None,
        body: bytes | None = None,
    ) -> tuple[int, Message, bytes]:
        """Issue one HTTP request, translating failures to store errors.

        Returns
        -------
        ``(status, response_headers, response_body)``.  ``404`` raises
        :class:`BlobNotFoundError` and ``401``/``403`` raise
        :class:`StoreAccessError` (both definitive, never retried);
        ``405``/``501`` on writes raise :class:`ReadOnlyStoreError`;
        ``416`` is returned to the caller (range handling); everything else
        — ``5xx``, timeouts, connection errors — raises
        :class:`TransientStoreError`.
        """
        merged = dict(headers or {})
        merged.update(self._headers(method, url, body))
        request = urllib.request.Request(url, data=body, headers=merged, method=method)
        started = time.perf_counter()
        try:
            with urllib.request.urlopen(request, timeout=self._timeout_s) as response:
                payload = response.read()
                self._record(method, str(response.status), started)
                return response.status, response.headers, payload
        except urllib.error.HTTPError as error:
            self._record(method, str(error.code), started)
            payload = b""
            try:
                payload = error.read()
            except OSError:  # pragma: no cover - read after broken pipe
                pass
            if error.code == 404:
                raise BlobNotFoundError(name) from None
            if error.code == 416:
                return error.code, error.headers or Message(), payload
            if error.code in _ACCESS_DENIED_STATUSES:
                raise StoreAccessError(
                    f"{method} {url} denied with HTTP {error.code} "
                    "(check credentials / bucket policy)"
                ) from error
            if method in ("PUT", "DELETE") and error.code in _READ_ONLY_STATUSES:
                # Checked before the 5xx rule: a 501 "Unsupported method" on
                # a write is a definitive "this server is read-only", not a
                # transient failure worth retrying.
                raise ReadOnlyStoreError(
                    f"server rejected {method} {url} with HTTP {error.code}; "
                    "this backend is read-only"
                ) from error
            raise TransientStoreError(
                f"{method} {url} failed with HTTP {error.code}"
            ) from error
        except (urllib.error.URLError, TimeoutError, ConnectionError) as error:
            self._record(method, "error", started)
            raise TransientStoreError(f"{method} {url} failed: {error}") from error

    def _record(self, method: str, status: str, started: float) -> None:
        """Account one backend request (count by status + wall-clock latency)."""
        backend = self._METRICS_BACKEND
        self._requests_metric.inc(backend=backend, method=method, status=status)
        self._latency_metric.observe(
            time.perf_counter() - started, backend=backend, method=method
        )

    # -- ObjectStore interface ---------------------------------------------------

    def put(self, name: str, data: bytes) -> None:
        """Upload ``data`` as blob ``name`` via HTTP ``PUT``.

        Raises :class:`ReadOnlyStoreError` when the server does not accept
        uploads (the common case for static file servers).
        """
        self._request("PUT", self.blob_url(name), name, body=bytes(data))

    def get(self, name: str) -> bytes:
        """Return the full body of blob ``name`` (GET)."""
        _, _, body = self._request("GET", self.blob_url(name), name)
        return body

    def get_range(self, name: str, offset: int, length: int | None = None) -> bytes:
        """Return ``length`` bytes of ``name`` from ``offset`` via a Range GET.

        Sends ``Range: bytes=offset-`` (or ``offset-(offset+length-1)``);
        a ``206`` answer is used as-is, a ``200`` answer (server ignored the
        header) is sliced client-side, and a ``416`` (range entirely past the
        end) truncates to ``b""`` — matching local-store semantics exactly.
        """
        if length == 0:
            return b""
        if length is None:
            range_header = f"bytes={offset}-"
        else:
            range_header = f"bytes={offset}-{offset + length - 1}"
        status, _, body = self._request(
            "GET", self.blob_url(name), name, headers={"Range": range_header}
        )
        if status == 206:
            return body
        if status == 416:
            return b""
        # Full-content answer from a server without range support.
        if length is None:
            return body[offset:]
        return body[offset : offset + length]

    def size(self, name: str) -> int:
        """Return the blob's ``Content-Length``, probed with a ``HEAD`` request."""
        _, headers, _ = self._request("HEAD", self.blob_url(name), name)
        content_length = headers.get("Content-Length")
        if content_length is None:
            # Fall back to downloading the body (rare: chunked-only servers).
            return len(self.get(name))
        return int(content_length)

    def exists(self, name: str) -> bool:
        """Whether blob ``name`` answers a ``HEAD`` request (404 → ``False``)."""
        try:
            self._request("HEAD", self.blob_url(name), name)
        except BlobNotFoundError:
            return False
        return True

    def delete(self, name: str) -> None:
        """Delete blob ``name`` via HTTP ``DELETE`` (missing blobs are a no-op).

        Raises :class:`ReadOnlyStoreError` when the server refuses deletes.
        """
        try:
            self._request("DELETE", self.blob_url(name), name)
        except BlobNotFoundError:
            pass

    #: How long a fetched listing manifest is reused before re-downloading.
    #: One catalog operation (GET /indexes = one list_blobs + one
    #: total_bytes per index) issues many listing reads back to back; the
    #: short TTL collapses them into one download while keeping staleness
    #: bounded for refreshed exports.
    _LISTING_TTL_S = 5.0

    def _listing(self) -> dict[str, int] | None:
        """The export's listing manifest as ``{blob: size}``, if published.

        Cached for :attr:`_LISTING_TTL_S` seconds (absence included);
        absent or unparsable manifests degrade to ``None``.
        """
        from repro.storage.listing import LISTING_BLOB, decode_listing

        cached = self._listing_cache
        now = time.monotonic()
        if cached is not None and now - cached[0] < self._LISTING_TTL_S:
            return cached[1]
        try:
            listing: dict[str, int] | None = decode_listing(self.get(LISTING_BLOB))
        except BlobNotFoundError:
            listing = None
        except ValueError:
            # Some unrelated manifest.json answered; treat as "no listing".
            listing = None
        self._listing_cache = (now, listing)
        return listing

    def list_blobs(self, prefix: str = "") -> list[str]:
        """Blob names from the listing manifest (``[]`` when not published).

        Plain HTTP has no portable listing operation; exports that publish
        the optional manifest (``airphant build --listing``) get full
        catalog discovery (``GET /indexes``), everything else degrades to
        the old behaviour: no entries, but opening and searching an index
        by name works fully (it only needs ``exists``/``get``/``get_range``).
        Backends with real listings (local, memory, S3) are unaffected.
        """
        listing = self._listing()
        if listing is None:
            return []
        return sorted(name for name in listing if name.startswith(prefix))

    def total_bytes(self, prefix: str = "") -> int:
        """Summed blob sizes under ``prefix``, from the listing manifest.

        The manifest records sizes, so this needs one GET instead of one
        HEAD per blob.  Reports 0 when no manifest is published.
        """
        listing = self._listing()
        if listing is None:
            return 0
        return sum(size for name, size in listing.items() if name.startswith(prefix))
