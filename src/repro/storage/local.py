"""Local-filesystem object store backend.

Maps blob names to files under a root directory, the way ``gcsfuse`` exposes
a Cloud Storage bucket as a directory in the paper's experimental setup.
Blob names may contain ``/`` which become sub-directories.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.storage.base import BlobNotFoundError, ObjectStore


class LocalObjectStore(ObjectStore):
    """Filesystem-backed :class:`ObjectStore` rooted at ``root``.

    Parameters
    ----------
    root:
        Directory acting as the bucket; created (with parents) if missing.

    Implements the abstract interface of
    :class:`~repro.storage.base.ObjectStore` exactly (see the base class for
    Args/Returns): range reads seek + truncate at end-of-file, missing blobs
    raise :class:`BlobNotFoundError`, ``delete`` is idempotent, and blob
    names containing ``/`` become sub-directories (names escaping the root —
    absolute or ``..`` — are rejected with ``ValueError``).  Latency is
    whatever the filesystem provides; wrap in
    :class:`~repro.storage.simulated.SimulatedCloudStore` to model network
    timing on top.
    """

    def __init__(self, root: str | os.PathLike[str]):
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        """Directory under which blobs are stored."""
        return self._root

    def _path(self, name: str) -> Path:
        if not name or name.startswith("/") or ".." in Path(name).parts:
            raise ValueError(f"invalid blob name: {name!r}")
        return self._root / name

    def put(self, name: str, data: bytes) -> None:
        path = self._path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(bytes(data))

    def get(self, name: str) -> bytes:
        path = self._path(name)
        if not path.is_file():
            raise BlobNotFoundError(name)
        return path.read_bytes()

    def get_range(self, name: str, offset: int, length: int | None = None) -> bytes:
        path = self._path(name)
        if not path.is_file():
            raise BlobNotFoundError(name)
        with path.open("rb") as handle:
            handle.seek(offset)
            if length is None:
                return handle.read()
            return handle.read(length)

    def size(self, name: str) -> int:
        path = self._path(name)
        if not path.is_file():
            raise BlobNotFoundError(name)
        return path.stat().st_size

    def exists(self, name: str) -> bool:
        return self._path(name).is_file()

    def delete(self, name: str) -> None:
        path = self._path(name)
        if path.is_file():
            path.unlink()

    def list_blobs(self, prefix: str = "") -> list[str]:
        names = []
        for path in self._root.rglob("*"):
            if path.is_file():
                name = path.relative_to(self._root).as_posix()
                if name.startswith(prefix):
                    names.append(name)
        return sorted(names)
