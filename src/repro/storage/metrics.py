"""Per-request and aggregate metrics for simulated storage traffic.

The paper's latency-breakdown study (Figures 8 and 11) splits every search
into *wait time* (time spent blocked on the network before bytes arrive) and
*download time* (time spent receiving bytes).  The simulator produces both
quantities directly for every request, so the breakdown experiments simply
aggregate these records.

:class:`StorageMetrics` also mirrors its totals into the unified
:class:`~repro.observability.MetricsRegistry` (``airphant_sim_*`` counters),
so the paper figures and live serving share one accounting path — the
simulated round-trip counts show up on the same ``/metrics`` page as the
real backends' request latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability import MirroredStats, get_registry

#: Registry counters one StorageMetrics mirrors into: name -> help.
_SIM_COUNTERS: dict[str, str] = {
    "airphant_sim_requests_total": "Simulated storage requests recorded",
    "airphant_sim_round_trips_total": "Logical round trips charged on the virtual clock",
    "airphant_sim_bytes_total": "Bytes transferred by simulated requests",
    "airphant_sim_wait_ms_total": "Summed first-byte wait time of simulated requests (ms)",
    "airphant_sim_download_ms_total": "Summed transfer time of simulated requests (ms)",
}


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one simulated storage request."""

    blob: str
    nbytes: int
    wait_ms: float
    download_ms: float

    @property
    def total_ms(self) -> float:
        """End-to-end latency of this request."""
        return self.wait_ms + self.download_ms


@dataclass(frozen=True)
class BatchRecord:
    """Timing of one *batch* of concurrent requests.

    ``wait_ms`` is the slowest first-byte latency in the batch (requests do
    not block each other) and ``download_ms`` accounts for shared-bandwidth
    transfer of all payloads.
    """

    requests: tuple[RequestRecord, ...]
    wait_ms: float
    download_ms: float

    @property
    def total_ms(self) -> float:
        """End-to-end latency of the batch."""
        return self.wait_ms + self.download_ms

    @property
    def nbytes(self) -> int:
        """Total bytes transferred by the batch."""
        return sum(record.nbytes for record in self.requests)


@dataclass
class StorageMetrics(MirroredStats):
    """Accumulates request records for one engine / one experiment.

    Recording is thread-safe (batches arrive from fetcher pool threads) and
    every record is mirrored as ``airphant_sim_*`` counter increments into
    the bound registry — the process-wide one unless
    :meth:`~repro.observability.MirroredStats.bind` says otherwise.  The
    mirror is batch-shaped (one round trip covers many requests), so
    :meth:`_mirror` replaces the base class's per-field ``add`` path.
    """

    #: Keyed by metric name (the mirror aggregates whole batches, so the
    #: table maps each counter to itself rather than to a field).
    _COUNTER_TABLE = {name: (name, help) for name, help in _SIM_COUNTERS.items()}

    records: list[RequestRecord] = field(default_factory=list)
    round_trips: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        self.bind(get_registry())

    def _mirror(self, requests: tuple[RequestRecord, ...] | list[RequestRecord]) -> None:
        counters = self._counters
        if counters is None or not requests:
            return
        counters["airphant_sim_requests_total"].inc(len(requests))
        counters["airphant_sim_round_trips_total"].inc(1)
        counters["airphant_sim_bytes_total"].inc(sum(r.nbytes for r in requests))
        counters["airphant_sim_wait_ms_total"].inc(sum(r.wait_ms for r in requests))
        counters["airphant_sim_download_ms_total"].inc(sum(r.download_ms for r in requests))

    def record(self, record: RequestRecord) -> None:
        """Add a single request (counts as one round-trip)."""
        with self._lock:
            self.records.append(record)
            self.round_trips += 1
        self._mirror([record])

    def record_batch(self, batch: BatchRecord) -> None:
        """Add a concurrent batch (counts as one *logical* round-trip)."""
        with self._lock:
            self.records.extend(batch.requests)
            self.round_trips += 1
        self._mirror(batch.requests)

    def reset(self) -> None:
        """Clear all accumulated records (registry counters stay monotonic)."""
        with self._lock:
            self.records.clear()
            self.round_trips = 0

    @property
    def total_bytes(self) -> int:
        """Total bytes fetched."""
        return sum(record.nbytes for record in self.records)

    @property
    def total_wait_ms(self) -> float:
        """Sum of first-byte wait times across all requests."""
        return sum(record.wait_ms for record in self.records)

    @property
    def total_download_ms(self) -> float:
        """Sum of transfer times across all requests."""
        return sum(record.download_ms for record in self.records)

    @property
    def request_count(self) -> int:
        """Number of individual requests issued."""
        return len(self.records)
