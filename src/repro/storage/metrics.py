"""Per-request and aggregate metrics for simulated storage traffic.

The paper's latency-breakdown study (Figures 8 and 11) splits every search
into *wait time* (time spent blocked on the network before bytes arrive) and
*download time* (time spent receiving bytes).  The simulator produces both
quantities directly for every request, so the breakdown experiments simply
aggregate these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one simulated storage request."""

    blob: str
    nbytes: int
    wait_ms: float
    download_ms: float

    @property
    def total_ms(self) -> float:
        """End-to-end latency of this request."""
        return self.wait_ms + self.download_ms


@dataclass(frozen=True)
class BatchRecord:
    """Timing of one *batch* of concurrent requests.

    ``wait_ms`` is the slowest first-byte latency in the batch (requests do
    not block each other) and ``download_ms`` accounts for shared-bandwidth
    transfer of all payloads.
    """

    requests: tuple[RequestRecord, ...]
    wait_ms: float
    download_ms: float

    @property
    def total_ms(self) -> float:
        """End-to-end latency of the batch."""
        return self.wait_ms + self.download_ms

    @property
    def nbytes(self) -> int:
        """Total bytes transferred by the batch."""
        return sum(record.nbytes for record in self.requests)


@dataclass
class StorageMetrics:
    """Accumulates request records for one engine / one experiment."""

    records: list[RequestRecord] = field(default_factory=list)
    round_trips: int = 0

    def record(self, record: RequestRecord) -> None:
        """Add a single request (counts as one round-trip)."""
        self.records.append(record)
        self.round_trips += 1

    def record_batch(self, batch: BatchRecord) -> None:
        """Add a concurrent batch (counts as one *logical* round-trip)."""
        self.records.extend(batch.requests)
        self.round_trips += 1

    def reset(self) -> None:
        """Clear all accumulated records."""
        self.records.clear()
        self.round_trips = 0

    @property
    def total_bytes(self) -> int:
        """Total bytes fetched."""
        return sum(record.nbytes for record in self.records)

    @property
    def total_wait_ms(self) -> float:
        """Sum of first-byte wait times across all requests."""
        return sum(record.wait_ms for record in self.records)

    @property
    def total_download_ms(self) -> float:
        """Sum of transfer times across all requests."""
        return sum(record.download_ms for record in self.records)

    @property
    def request_count(self) -> int:
        """Number of individual requests issued."""
        return len(self.records)
