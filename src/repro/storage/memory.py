"""In-memory object store backend.

Used for unit tests and as the backing store of
:class:`~repro.storage.simulated.SimulatedCloudStore` when experiments should
not touch the local filesystem.
"""

from __future__ import annotations

import threading

from repro.storage.base import BlobNotFoundError, ObjectStore


class InMemoryObjectStore(ObjectStore):
    """Dictionary-backed :class:`ObjectStore`.

    Thread-safe for the access pattern Airphant uses (concurrent reads,
    single-writer builds).  Every operation implements the abstract
    interface of :class:`~repro.storage.base.ObjectStore` exactly (see the
    base class for Args/Returns): range reads truncate at end-of-blob,
    ``get``/``size`` raise :class:`BlobNotFoundError` for missing blobs,
    ``delete`` is idempotent, and ``list_blobs`` returns sorted names.
    Reads take no time at all — pair with
    :class:`~repro.storage.simulated.SimulatedCloudStore` for virtual-clock
    latencies or :class:`~repro.storage.faults.FlakyStore` for wall-clock
    fault injection.
    """

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def put(self, name: str, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"blob data must be bytes-like, got {type(data).__name__}")
        with self._lock:
            self._blobs[name] = bytes(data)

    def get(self, name: str) -> bytes:
        try:
            return self._blobs[name]
        except KeyError:
            raise BlobNotFoundError(name) from None

    def get_range(self, name: str, offset: int, length: int | None = None) -> bytes:
        data = self.get(name)
        if length is None:
            return data[offset:]
        return data[offset : offset + length]

    def size(self, name: str) -> int:
        return len(self.get(name))

    def exists(self, name: str) -> bool:
        return name in self._blobs

    def delete(self, name: str) -> None:
        with self._lock:
            self._blobs.pop(name, None)

    def list_blobs(self, prefix: str = "") -> list[str]:
        return sorted(name for name in self._blobs if name.startswith(prefix))
