"""Network latency model for simulated cloud storage.

The paper's Figure 2 shows an *affine* relationship between the number of
bytes fetched and end-to-end retrieval latency: a roughly constant
first-byte latency (~50 ms within region) until about 2 MB, after which the
transfer time (bytes / bandwidth) dominates and latency grows linearly.

:class:`AffineLatencyModel` reproduces that curve:

``latency(nbytes) = first_byte + nbytes / bandwidth``

with lognormal jitter on the first-byte component and an optional heavy-tail
straggler mode (Section IV-G motivates hedged requests with occasional very
slow reads).  :class:`RegionProfile` scales the first-byte latency for the
cross-region experiments (Figures 7, 12, 13).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: Bytes per megabyte, used when expressing bandwidth in MB/s.
_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class RegionProfile:
    """Relative network distance between compute and storage.

    ``rtt_multiplier`` scales the base first-byte latency; ``name`` matches
    the GCP regions used in the paper.
    """

    name: str
    rtt_multiplier: float

    def __post_init__(self) -> None:
        if self.rtt_multiplier <= 0:
            raise ValueError("rtt_multiplier must be positive")


#: Region profiles mirroring the paper's setup: the storage bucket lives in the
#: US multi-region; VMs run in Iowa, London, and Singapore.  Multipliers are
#: chosen to match the observed 3-8x latency inflation across regions.
REGION_PROFILES: dict[str, RegionProfile] = {
    "us-central1": RegionProfile("us-central1", 1.0),
    "europe-west2": RegionProfile("europe-west2", 3.0),
    "asia-southeast1": RegionProfile("asia-southeast1", 7.0),
}


@dataclass
class AffineLatencyModel:
    """Affine latency model with jitter and long-tail stragglers.

    Parameters
    ----------
    first_byte_ms:
        Mean time-to-first-byte of a request within region, in milliseconds.
        The paper observes roughly 50 ms against GCS.
    bandwidth_mb_per_s:
        Per-request sustained transfer bandwidth.
    aggregate_bandwidth_mb_per_s:
        Total bandwidth available to the VM.  Parallel batches share this,
        which reproduces the bandwidth contention the paper reports when the
        number of layers grows.
    jitter_sigma:
        Sigma of the lognormal multiplicative jitter applied to the
        first-byte latency (0 disables jitter).
    straggler_probability:
        Probability that a request is a straggler.
    straggler_multiplier:
        First-byte latency multiplier applied to stragglers.
    region:
        One of :data:`REGION_PROFILES` (or a custom profile).
    seed:
        Seed for the model's private random generator, so simulated latencies
        are reproducible.
    """

    first_byte_ms: float = 50.0
    bandwidth_mb_per_s: float = 40.0
    aggregate_bandwidth_mb_per_s: float = 250.0
    jitter_sigma: float = 0.15
    straggler_probability: float = 0.0
    straggler_multiplier: float = 10.0
    region: RegionProfile = field(default_factory=lambda: REGION_PROFILES["us-central1"])
    seed: int = 0

    def __post_init__(self) -> None:
        if self.first_byte_ms < 0:
            raise ValueError("first_byte_ms must be non-negative")
        if self.bandwidth_mb_per_s <= 0 or self.aggregate_bandwidth_mb_per_s <= 0:
            raise ValueError("bandwidths must be positive")
        if not 0.0 <= self.straggler_probability <= 1.0:
            raise ValueError("straggler_probability must be in [0, 1]")
        if isinstance(self.region, str):
            object.__setattr__(self, "region", REGION_PROFILES[self.region])
        self._rng = np.random.default_rng(self.seed)

    # -- individual request components ---------------------------------------

    def sample_first_byte_ms(self) -> float:
        """Sample the time-to-first-byte (wait time) of one request in ms.

        Returns
        -------
        The base first-byte latency scaled by the region multiplier, with
        lognormal jitter applied and (with probability
        ``straggler_probability``) the straggler multiplier.  Draws from the
        model's private seeded RNG, so sequences are reproducible.
        """
        base = self.first_byte_ms * self.region.rtt_multiplier
        if self.jitter_sigma > 0:
            base *= float(self._rng.lognormal(mean=0.0, sigma=self.jitter_sigma))
        if self.straggler_probability > 0 and self._rng.random() < self.straggler_probability:
            base *= self.straggler_multiplier
        return base

    def transfer_ms(self, nbytes: int) -> float:
        """Deterministic transfer (download) time of ``nbytes`` in ms.

        Returns
        -------
        ``nbytes / bandwidth`` at the per-request bandwidth (0 for empty
        payloads); jitter applies only to the first-byte component.
        """
        if nbytes <= 0:
            return 0.0
        return nbytes / (self.bandwidth_mb_per_s * _MB) * 1000.0

    def expected_latency_ms(self, nbytes: int) -> float:
        """Expected single-request latency without jitter, for analysis."""
        lognormal_mean = math.exp(0.5 * self.jitter_sigma**2) if self.jitter_sigma > 0 else 1.0
        straggler_mean = (
            1.0
            + self.straggler_probability * (self.straggler_multiplier - 1.0)
        )
        wait = self.first_byte_ms * self.region.rtt_multiplier * lognormal_mean * straggler_mean
        return wait + self.transfer_ms(nbytes)

    # -- batch semantics ------------------------------------------------------

    def batch_transfer_ms(self, sizes: list[int]) -> float:
        """Download time of a concurrent batch of requests.

        Each request streams at the per-request bandwidth, but the sum of all
        streams cannot exceed the aggregate VM bandwidth, so large parallel
        batches contend for bandwidth (the effect visible in Figure 10c).
        """
        if not sizes:
            return 0.0
        per_request = max(self.transfer_ms(size) for size in sizes)
        aggregate_limited = (
            sum(sizes) / (self.aggregate_bandwidth_mb_per_s * _MB) * 1000.0
        )
        return max(per_request, aggregate_limited)

    def with_region(self, region: str | RegionProfile) -> "AffineLatencyModel":
        """Return a copy of this model targeting a different region."""
        profile = REGION_PROFILES[region] if isinstance(region, str) else region
        return AffineLatencyModel(
            first_byte_ms=self.first_byte_ms,
            bandwidth_mb_per_s=self.bandwidth_mb_per_s,
            aggregate_bandwidth_mb_per_s=self.aggregate_bandwidth_mb_per_s,
            jitter_sigma=self.jitter_sigma,
            straggler_probability=self.straggler_probability,
            straggler_multiplier=self.straggler_multiplier,
            region=profile,
            seed=self.seed,
        )
