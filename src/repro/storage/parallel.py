"""Batched parallel fetches against an object store.

IoU Sketch's key systems idea is replacing *dependent sequential* reads with
a *single batch of concurrent* reads.  :class:`ParallelFetcher` is the
primitive that executes such a batch.  Against a
:class:`~repro.storage.simulated.SimulatedCloudStore` the timing follows the
batch semantics of the latency model; against a real backend it simply runs
the requests on a thread pool.
"""

from __future__ import annotations

import os
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.observability.tracing import attach, current_span
from repro.storage.base import ObjectStore, RangeRead
from repro.storage.metrics import BatchRecord, RequestRecord
from repro.storage.simulated import SimulatedCloudStore


def _shutdown_pool(pool: ThreadPoolExecutor, owner_pid: int) -> None:
    """Finalizer target: shut ``pool`` down, but only in the owning process.

    After ``os.fork()`` the child inherits the executor object but none of
    its worker threads; shutting it down there would try to join threads
    that never existed in the child.  The pid guard makes the finalizer a
    no-op everywhere except the process that created the pool.
    """
    if os.getpid() == owner_pid:
        pool.shutdown(wait=False)


@dataclass(frozen=True)
class FetchResult:
    """Payloads plus the timing of the batch that fetched them."""

    payloads: list[bytes]
    batch: BatchRecord

    @property
    def total_ms(self) -> float:
        """Simulated wall-clock latency of the batch."""
        return self.batch.total_ms


class ParallelFetcher:
    """Issues batches of range reads with bounded concurrency.

    Parameters
    ----------
    store:
        Object store to read from.
    max_concurrency:
        Maximum number of in-flight requests (the paper uses 32 download
        threads).
    hedge_extra:
        When positive, the fetcher is allowed to drop the ``hedge_extra``
        slowest requests of a batch and still return (used by the built-in
        replication mechanism of Section IV-G: issue L⁺ requests, wait for L).
    """

    def __init__(
        self,
        store: ObjectStore,
        max_concurrency: int = 32,
        hedge_extra: int = 0,
    ) -> None:
        if max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        if hedge_extra < 0:
            raise ValueError("hedge_extra must be non-negative")
        self._store = store
        self._max_concurrency = max_concurrency
        self._hedge_extra = hedge_extra
        # One long-lived pool shared by every batch (created on first use):
        # spinning up a fresh ThreadPoolExecutor per batch costs thread
        # creation on the query hot path and defeats OS-level thread reuse.
        self._pool: ThreadPoolExecutor | None = None
        self._pool_pid: int = 0
        self._pool_finalizer: weakref.finalize | None = None
        self._pool_lock = threading.Lock()

    @property
    def max_concurrency(self) -> int:
        """Maximum number of concurrent requests per batch."""
        return self._max_concurrency

    def scale_concurrency(self, minimum: int) -> None:
        """Raise the concurrency ceiling to at least ``minimum`` (never lower).

        A sharded index multiplies every lookup wave's request count by the
        shard count; with a fixed ceiling those batches spill into extra
        concurrency waves and per-shard overhead stacks instead of
        amortizing.  Callers that know their fan-out (the sharded searcher
        at initialize time) widen the ceiling up front.  An existing thread
        pool is discarded so the next threaded batch builds one at the new
        width; simulated batches pick the new ceiling up immediately.
        """
        if minimum <= self._max_concurrency:
            return
        with self._pool_lock:
            if minimum <= self._max_concurrency:
                return
            self._max_concurrency = minimum
            pool, self._pool = self._pool, None
            owner_pid, self._pool_pid = self._pool_pid, 0
            finalizer, self._pool_finalizer = self._pool_finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if pool is not None and owner_pid == os.getpid():
            pool.shutdown(wait=False)

    def close(self) -> None:
        """Shut down the current thread pool (idempotent, fork-safe).

        Closing releases the worker threads *now*; it does not poison the
        fetcher — a later threaded fetch transparently creates a fresh pool,
        so closing is safe even while another thread still holds this
        fetcher (e.g. a catalog invalidating a searcher mid-query).
        Double-close is a no-op.  In a process forked while the pool was
        alive, the inherited pool's threads do not exist, so close drops the
        reference without attempting a shutdown (and the pool's finalizer is
        likewise pid-guarded).  Simulated batches never touch the pool.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            owner_pid = self._pool_pid
            finalizer, self._pool_finalizer = self._pool_finalizer, None
        if finalizer is not None:
            # The pool is shut down explicitly below; detach so the
            # finalizer does not linger until garbage collection.
            finalizer.detach()
        if pool is not None and owner_pid == os.getpid():
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelFetcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        """Return the live thread pool, creating (or re-creating) it lazily.

        A pool inherited across ``os.fork()`` is unusable in the child (its
        worker threads live only in the parent), so a pid mismatch discards
        the stale reference and builds a fresh pool.
        """
        with self._pool_lock:
            if self._pool is not None and self._pool_pid != os.getpid():
                # Forked child: the inherited pool has no threads here.
                # Drop it without shutdown and start over.
                if self._pool_finalizer is not None:
                    self._pool_finalizer.detach()
                    self._pool_finalizer = None
                self._pool = None
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_concurrency,
                    thread_name_prefix="airphant-fetch",
                )
                self._pool_pid = os.getpid()
                # Owners that never call close() (or drop the fetcher in a
                # reference cycle) must not strand idle worker threads until
                # interpreter exit: shut the pool down when the fetcher is
                # collected.  The callback references only the pool (and the
                # owning pid), so it cannot keep the fetcher or its store
                # alive, and it no-ops in forked children.
                self._pool_finalizer = weakref.finalize(
                    self, _shutdown_pool, self._pool, self._pool_pid
                )
            return self._pool

    def fetch(self, requests: list[RangeRead]) -> FetchResult:
        """Fetch all ``requests`` as one concurrent batch.

        Parameters
        ----------
        requests:
            Independent range reads; they are issued concurrently (bounded by
            ``max_concurrency``), never sequentially.

        Returns
        -------
        A :class:`FetchResult` with one payload per request, in request
        order, plus the batch timing.  Against a
        :class:`~repro.storage.simulated.SimulatedCloudStore` the timing is
        the virtual-clock batch cost (max first-byte wait per concurrency
        wave + shared-bandwidth transfer); against real backends the
        requests run on the thread pool and the recorded timing is zero
        (wall-clock timing is the caller's job).
        """
        if not requests:
            empty = BatchRecord(requests=(), wait_ms=0.0, download_ms=0.0)
            return FetchResult(payloads=[], batch=empty)
        if isinstance(self._store, SimulatedCloudStore):
            return self._fetch_simulated(requests)
        return self._fetch_threaded(requests)

    def fetch_hedged(self, requests: list[RangeRead], required: int) -> FetchResult:
        """Fetch ``requests`` but only charge for the ``required`` fastest.

        Models the L⁺ replication strategy: all requests are issued, the
        result of the slowest ``len(requests) - required`` is discarded, and
        latency is determined by the ``required``-th fastest completion.  The
        *payloads* of the dropped requests are replaced by ``None`` markers so
        callers know which layers to skip.

        Only meaningful against a :class:`SimulatedCloudStore` (hedging
        reasons about per-request latencies, which only the simulator
        reports); on real backends this falls back to a plain :meth:`fetch`.

        Returns
        -------
        A :class:`FetchResult` whose payload list still has one entry per
        request — dropped stragglers are ``None`` — and whose batch record
        contains only the kept requests.
        """
        if required <= 0:
            raise ValueError("required must be positive")
        if required > len(requests):
            required = len(requests)
        if not isinstance(self._store, SimulatedCloudStore):
            # Without a latency model there is nothing to hedge; fall back.
            return self.fetch(requests)

        store = self._store
        payloads: list[bytes | None] = []
        records: list[RequestRecord] = []
        for request in requests:
            data, record = store.timed_read(request)
            payloads.append(data)
            records.append(record)
        # Keep the `required` fastest requests; drop the rest.
        order = sorted(range(len(records)), key=lambda i: records[i].total_ms)
        kept = set(order[:required])
        ambient = current_span()
        if ambient is not None:
            ambient.child(
                "fetch.hedged",
                requests=len(requests),
                required=required,
                dropped=len(requests) - len(kept),
            ).finish()
        kept_records = [records[i] for i in sorted(kept)]
        for index in range(len(payloads)):
            if index not in kept:
                payloads[index] = None
        wait_ms = max(record.wait_ms for record in kept_records)
        download_ms = store.latency_model.batch_transfer_ms(
            [record.nbytes for record in kept_records]
        )
        batch = BatchRecord(
            requests=tuple(kept_records), wait_ms=wait_ms, download_ms=download_ms
        )
        return FetchResult(payloads=payloads, batch=batch)  # type: ignore[arg-type]

    # -- strategies --------------------------------------------------------------

    def _fetch_simulated(self, requests: list[RangeRead]) -> FetchResult:
        payloads, batch = self._store.timed_batch(  # type: ignore[union-attr]
            requests, max_concurrency=self._max_concurrency
        )
        return FetchResult(payloads=payloads, batch=batch)

    def _fetch_threaded(self, requests: list[RangeRead]) -> FetchResult:
        # Pool threads do not inherit contextvars from the submitter, so the
        # active trace span (if any) is captured here and re-attached inside
        # each worker — store-level attempt spans then nest under the right
        # request instead of vanishing.
        parent = current_span()
        if parent is None:
            reader = self._store.read
        else:

            def reader(request: RangeRead) -> bytes:
                with attach(parent):
                    return self._store.read(request)

        try:
            payloads = list(self._ensure_pool().map(reader, requests))
        except RuntimeError as error:
            # close() raced this fetch and shut the pool down between
            # _ensure_pool() and submission.  Range reads are idempotent, so
            # retry the batch once on a fresh pool; any other RuntimeError
            # (e.g. from the store itself) propagates untouched.
            if "shutdown" not in str(error):
                raise
            payloads = list(self._ensure_pool().map(reader, requests))
        records = tuple(
            RequestRecord(blob=request.blob, nbytes=len(data), wait_ms=0.0, download_ms=0.0)
            for request, data in zip(requests, payloads)
        )
        batch = BatchRecord(requests=records, wait_ms=0.0, download_ms=0.0)
        return FetchResult(payloads=payloads, batch=batch)
