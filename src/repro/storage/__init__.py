"""Object-storage substrate used by Airphant and all baselines.

The paper persists everything (documents, superposts, index metadata) on cloud
object storage (GCS / S3).  This package provides:

* :class:`~repro.storage.base.ObjectStore` — the abstract blob interface with
  random-range reads, mirroring the byte-range GET supported by all major
  cloud vendors — plus the typed error taxonomy (:class:`BlobNotFoundError`,
  :class:`TransientStoreError`, :class:`ReadOnlyStoreError`) the resilience
  layer keys off.
* Concrete backends: :class:`~repro.storage.memory.InMemoryObjectStore`,
  :class:`~repro.storage.local.LocalObjectStore`,
  :class:`~repro.storage.httpstore.HTTPRangeStore` (standard ``Range``
  requests against any static file server, stdlib ``urllib`` only), and
  :class:`~repro.storage.s3.S3ObjectStore` (path-style S3-compatible
  endpoints, unsigned or SigV4-signed from ``AWS_*`` env credentials).
* :func:`~repro.storage.registry.open_store` — the URI-scheme registry
  (``mem://``, ``file://``, ``sim://``, ``http(s)://``, ``s3://``) that
  resolves any backend string to a store; third parties extend it with
  :func:`~repro.storage.registry.register_scheme`.
* :class:`~repro.storage.resilient.ResilientStore` — bounded retries with
  exponential backoff + jitter, per-request timeouts, and hedged duplicate
  reads after an adaptive latency percentile, wrapping any backend.
* :class:`~repro.storage.simulated.SimulatedCloudStore` — wraps any backend
  with the affine latency model of the paper's Figure 2 on a *virtual* clock
  (first-byte latency + transfer time), optional long-tail stragglers, and
  per-region round-trip times; :class:`~repro.storage.faults.FlakyStore` is
  its *wall-clock* counterpart, injecting real delays and transient errors
  to exercise the resilience layer.
* :class:`~repro.storage.parallel.ParallelFetcher` — issues a *batch* of range
  reads concurrently, the primitive that IoU Sketch relies on.
* :class:`~repro.storage.pipeline.ReadPipeline` — sits between callers and the
  fetcher, deduplicating identical ranges, coalescing adjacent/overlapping
  ones into fewer larger requests, and serving repeats from a bounded LRU
  block cache.  All of this composes: a pipeline over a resilient store over
  an HTTP backend coalesces, caches, retries, and hedges remote range reads.
"""

from repro.storage.base import (
    BlobNotFoundError,
    ObjectStore,
    RangeRead,
    ReadOnlyStoreError,
    StoreAccessError,
    StoreError,
    TransientStoreError,
)
from repro.storage.faults import FlakyStore
from repro.storage.httpstore import HTTPRangeStore
from repro.storage.latency import AffineLatencyModel, RegionProfile, REGION_PROFILES
from repro.storage.listing import LISTING_BLOB, write_listing
from repro.storage.local import LocalObjectStore
from repro.storage.memory import InMemoryObjectStore
from repro.storage.metrics import RequestRecord, StorageMetrics
from repro.storage.parallel import ParallelFetcher
from repro.storage.pipeline import PipelineStats, ReadPipeline
from repro.storage.registry import (
    StoreURIError,
    open_store,
    register_scheme,
    registered_schemes,
)
from repro.storage.resilient import (
    ResilienceStats,
    ResilientStore,
    RetriesExhaustedError,
    StoreTimeoutError,
)
from repro.storage.s3 import S3Credentials, S3ObjectStore
from repro.storage.simulated import SimulatedCloudStore

__all__ = [
    "AffineLatencyModel",
    "BlobNotFoundError",
    "FlakyStore",
    "HTTPRangeStore",
    "InMemoryObjectStore",
    "LISTING_BLOB",
    "LocalObjectStore",
    "ObjectStore",
    "ParallelFetcher",
    "PipelineStats",
    "RangeRead",
    "ReadOnlyStoreError",
    "ReadPipeline",
    "REGION_PROFILES",
    "RegionProfile",
    "RequestRecord",
    "ResilienceStats",
    "ResilientStore",
    "RetriesExhaustedError",
    "S3Credentials",
    "S3ObjectStore",
    "SimulatedCloudStore",
    "StorageMetrics",
    "StoreAccessError",
    "StoreError",
    "StoreTimeoutError",
    "StoreURIError",
    "TransientStoreError",
    "open_store",
    "write_listing",
    "register_scheme",
    "registered_schemes",
]
